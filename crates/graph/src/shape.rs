//! Shape classification of canonical graphs (Section 6.1, Table 4 / Table 9).
//!
//! The classifier recognises the shape taxonomy of the paper: single edge,
//! chain, chain set, star, tree, forest, cycle, flower and flower set
//! (Definition 6.1). The classes are not mutually exclusive (every chain is a
//! tree, every tree is a flower, …); [`ShapeReport`] records membership in
//! each class so the cumulative Table 4 roll-up can be reproduced, and
//! [`ShapeReport::primary`] names the most specific class for convenience.

use crate::graph::CanonicalGraph;
use serde::{Deserialize, Serialize};

/// Membership of one query graph in each shape class of the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShapeReport {
    /// Exactly one edge between two nodes.
    pub single_edge: bool,
    /// The graph is a chain (path graph), including single edges.
    pub chain: bool,
    /// Every connected component is a chain (or an isolated node).
    pub chain_set: bool,
    /// The graph is a star: a tree with exactly one node of degree ≥ 3.
    pub star: bool,
    /// The graph is a tree (connected and acyclic).
    pub tree: bool,
    /// Every connected component is a tree.
    pub forest: bool,
    /// The graph is a single cycle.
    pub cycle: bool,
    /// The graph is a flower (Definition 6.1).
    pub flower: bool,
    /// Every connected component is a flower.
    pub flower_set: bool,
    /// The graph is empty (no edges) — bodies with zero graph-relevant
    /// triples; counted separately so shares can exclude them if desired.
    pub empty: bool,
}

/// The most specific shape name, used for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ShapeClass {
    /// No edges at all.
    Empty,
    /// A single edge.
    SingleEdge,
    /// A chain with at least two edges.
    Chain,
    /// A disjoint union of chains (not itself a chain).
    ChainSet,
    /// A star.
    Star,
    /// A tree that is neither a chain nor a star.
    Tree,
    /// A forest that is not a tree.
    Forest,
    /// A single cycle.
    Cycle,
    /// A flower that is not a forest or cycle.
    Flower,
    /// A flower set that is not a single flower.
    FlowerSet,
    /// None of the above (cyclic, not flower-like).
    Other,
}

impl ShapeReport {
    /// Classifies a canonical graph.
    ///
    /// The connected components and their degree statistics are computed once
    /// and shared by every class predicate; only cyclic components fall back
    /// to the (induced-subgraph) flower-centre search. Query graphs are
    /// overwhelmingly acyclic, so the common case allocates nothing beyond
    /// the component lists.
    pub fn classify(g: &CanonicalGraph) -> ShapeReport {
        let mut r = ShapeReport::default();
        let edge_total = g.edge_count();
        if edge_total == 0 {
            r.empty = true;
            // By convention the empty graph is a chain set / forest / flower
            // set (all components — there are none — satisfy the predicates).
            r.chain_set = true;
            r.forest = true;
            r.flower_set = true;
            return r;
        }
        let components = g.connected_components();
        let connected = components.len() == 1;

        // Per-component structure: node count, edge count (every edge stays
        // inside its component, so degrees sum to twice the edge count),
        // degree extremes.
        struct CompStats {
            nodes: usize,
            edges: usize,
            max_degree: usize,
            min_degree: usize,
        }
        let stats: Vec<CompStats> = components
            .iter()
            .map(|c| {
                let mut degree_sum = 0;
                let mut max_degree = 0;
                let mut min_degree = usize::MAX;
                for &v in c {
                    let d = g.degree(v);
                    degree_sum += d;
                    max_degree = max_degree.max(d);
                    min_degree = min_degree.min(d);
                }
                CompStats {
                    nodes: c.len(),
                    edges: degree_sum / 2,
                    max_degree,
                    min_degree,
                }
            })
            .collect();
        // A component is acyclic iff |E| = |V| − 1 (it is connected).
        let acyclic = |s: &CompStats| s.edges < s.nodes;
        let all_acyclic = stats.iter().all(acyclic);

        r.single_edge = edge_total == 1 && g.node_count() == 2;
        r.chain = connected && all_acyclic && stats[0].max_degree <= 2;
        r.chain_set = stats
            .iter()
            .all(|s| s.nodes == 1 || (acyclic(s) && s.max_degree <= 2));
        r.tree = connected && all_acyclic;
        r.star = r.tree && g.adj.iter().filter(|a| a.len() >= 3).count() == 1;
        r.forest = all_acyclic;
        r.cycle = connected
            && stats[0].nodes >= 3
            && stats[0].min_degree == 2
            && stats[0].max_degree == 2
            && stats[0].edges == stats[0].nodes;
        // Acyclic (components) are flowers by definition; only cyclic ones
        // need the centre search.
        r.flower =
            connected && (all_acyclic || (0..g.node_count()).any(|x| is_flower_with_center(g, x)));
        r.flower_set = components
            .iter()
            .zip(&stats)
            .all(|(c, s)| acyclic(s) || is_flower(&g.induced(c)));
        r
    }

    /// The most specific class this graph belongs to.
    pub fn primary(&self) -> ShapeClass {
        if self.empty {
            ShapeClass::Empty
        } else if self.single_edge {
            ShapeClass::SingleEdge
        } else if self.chain {
            ShapeClass::Chain
        } else if self.star {
            ShapeClass::Star
        } else if self.tree {
            ShapeClass::Tree
        } else if self.chain_set {
            ShapeClass::ChainSet
        } else if self.forest {
            ShapeClass::Forest
        } else if self.cycle {
            ShapeClass::Cycle
        } else if self.flower {
            ShapeClass::Flower
        } else if self.flower_set {
            ShapeClass::FlowerSet
        } else {
            ShapeClass::Other
        }
    }
}

/// True if the (connected) graph is a flower: there is a node `x` such that
/// every connected component of `G − x`, together with `x`, is either a tree
/// or a petal with source `x` (Definition 6.1). Trees and single nodes are
/// flowers (with only stamens/stems and no petals).
fn is_flower(g: &CanonicalGraph) -> bool {
    if !g.is_connected() {
        return false;
    }
    if !g.has_cycle() {
        // Pure trees are flowers (chains are stamens, other trees are stems).
        return true;
    }
    // A plain cycle is a petal on its own; any of its nodes can be the centre.
    (0..g.node_count()).any(|x| is_flower_with_center(g, x))
}

fn is_flower_with_center(g: &CanonicalGraph, x: usize) -> bool {
    let residual = g.without_node(x);
    // Indices in `residual` map back to original indices (all nodes except x,
    // in order). Build that mapping.
    let original: Vec<usize> = (0..g.node_count()).filter(|&u| u != x).collect();
    for comp in residual.connected_components() {
        // The attachment = component ∪ {x}, induced in the original graph.
        let mut nodes: Vec<usize> = comp.iter().map(|&i| original[i]).collect();
        nodes.push(x);
        let attachment = g.induced(&nodes);
        let centre_in_attachment = nodes.len() - 1; // x was pushed last
        if attachment.has_cycle() && !is_petal(&attachment, centre_in_attachment) {
            return false;
        }
        // Acyclic attachments are stamens (chains) or stems (trees): always OK.
    }
    true
}

/// True if `g` (connected, containing `source`) is a petal with source
/// `source`: a set of at least two internally node-disjoint paths from
/// `source` to a common target. Structurally: minimum degree ≥ 2 and every
/// node except `source` and at most one target has degree exactly 2.
fn is_petal(g: &CanonicalGraph, source: usize) -> bool {
    if !g.is_connected() || g.node_count() < 3 {
        return false;
    }
    if g.adj.iter().any(|a| a.len() < 2) {
        return false;
    }
    let high: Vec<usize> = (0..g.node_count())
        .filter(|&v| g.adj[v].len() >= 3)
        .collect();
    match high.len() {
        0 => true, // a plain cycle
        1 => high[0] == source,
        2 => high.contains(&source),
        _ => false,
    }
}

/// Cumulative shape statistics over a set of query graphs (one column of
/// Table 4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShapeTally {
    /// Queries whose graph is a single edge.
    pub single_edge: u64,
    /// Chains.
    pub chain: u64,
    /// Chain sets.
    pub chain_set: u64,
    /// Stars.
    pub star: u64,
    /// Trees.
    pub tree: u64,
    /// Forests.
    pub forest: u64,
    /// Cycles.
    pub cycle: u64,
    /// Flowers.
    pub flower: u64,
    /// Flower sets.
    pub flower_set: u64,
    /// Queries with treewidth ≤ 2.
    pub treewidth_le2: u64,
    /// Queries with treewidth exactly 3.
    pub treewidth_3: u64,
    /// Queries with treewidth 4 or more (not observed in the paper's corpus).
    pub treewidth_ge4: u64,
    /// Total queries classified.
    pub total: u64,
}

impl ShapeTally {
    /// Creates an empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one classified query (shape report plus its treewidth).
    pub fn add(&mut self, shape: &ShapeReport, treewidth: usize) {
        self.total += 1;
        if shape.single_edge {
            self.single_edge += 1;
        }
        if shape.chain {
            self.chain += 1;
        }
        if shape.chain_set {
            self.chain_set += 1;
        }
        if shape.star {
            self.star += 1;
        }
        if shape.tree {
            self.tree += 1;
        }
        if shape.forest {
            self.forest += 1;
        }
        if shape.cycle {
            self.cycle += 1;
        }
        if shape.flower {
            self.flower += 1;
        }
        if shape.flower_set {
            self.flower_set += 1;
        }
        match treewidth {
            0..=2 => self.treewidth_le2 += 1,
            3 => self.treewidth_3 += 1,
            _ => self.treewidth_ge4 += 1,
        }
    }

    /// Merges another tally.
    pub fn merge(&mut self, other: &ShapeTally) {
        self.single_edge += other.single_edge;
        self.chain += other.chain;
        self.chain_set += other.chain_set;
        self.star += other.star;
        self.tree += other.tree;
        self.forest += other.forest;
        self.cycle += other.cycle;
        self.flower += other.flower;
        self.flower_set += other.flower_set;
        self.treewidth_le2 += other.treewidth_le2;
        self.treewidth_3 += other.treewidth_3;
        self.treewidth_ge4 += other.treewidth_ge4;
        self.total += other.total;
    }

    /// Multiplies every counter by `times`: a tally built from one
    /// [`ShapeTally::add`] and then scaled equals `times` repeated adds of
    /// the same shape/treewidth pair. Used by the fused engine's
    /// occurrence-weighted fold.
    pub fn scale(&mut self, times: u64) {
        self.single_edge *= times;
        self.chain *= times;
        self.chain_set *= times;
        self.star *= times;
        self.tree *= times;
        self.forest *= times;
        self.cycle *= times;
        self.flower *= times;
        self.flower_set *= times;
        self.treewidth_le2 *= times;
        self.treewidth_3 *= times;
        self.treewidth_ge4 *= times;
        self.total *= times;
    }

    /// The Table-4 rows as `(label, count, share)` in the paper's order.
    pub fn rows(&self) -> Vec<(&'static str, u64, f64)> {
        let total = self.total.max(1) as f64;
        [
            ("single edge", self.single_edge),
            ("chain", self.chain),
            ("chain set", self.chain_set),
            ("star", self.star),
            ("tree", self.tree),
            ("forest", self.forest),
            ("cycle", self.cycle),
            ("flower", self.flower),
            ("flower set", self.flower_set),
            ("treewidth <= 2", self.treewidth_le2),
            ("treewidth = 3", self.treewidth_3),
            ("total", self.total),
        ]
        .into_iter()
        .map(|(l, v)| (l, v, v as f64 / total))
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphMode;
    use sparqlog_parser::ast::{Term, TriplePattern};

    fn graph(edges: &[(&str, &str)]) -> CanonicalGraph {
        let triples: Vec<TriplePattern> = edges
            .iter()
            .map(|(s, o)| TriplePattern::new(Term::var(*s), Term::iri("p"), Term::var(*o)))
            .collect();
        CanonicalGraph::from_triples(&triples, &[], GraphMode::WithConstants).unwrap()
    }

    #[test]
    fn single_edge_is_also_chain_tree_forest_flower() {
        let r = ShapeReport::classify(&graph(&[("x", "y")]));
        assert!(r.single_edge && r.chain && r.chain_set && r.tree && r.forest);
        assert!(r.flower && r.flower_set);
        assert!(!r.star && !r.cycle);
        assert_eq!(r.primary(), ShapeClass::SingleEdge);
    }

    #[test]
    fn chain_of_three_edges() {
        let r = ShapeReport::classify(&graph(&[("a", "b"), ("b", "c"), ("c", "d")]));
        assert!(!r.single_edge && r.chain && r.tree);
        assert_eq!(r.primary(), ShapeClass::Chain);
    }

    #[test]
    fn chain_set_of_two_chains() {
        let r = ShapeReport::classify(&graph(&[("a", "b"), ("c", "d")]));
        assert!(!r.chain && r.chain_set && !r.tree && r.forest);
        assert_eq!(r.primary(), ShapeClass::ChainSet);
    }

    #[test]
    fn star_with_three_leaves() {
        let r = ShapeReport::classify(&graph(&[("c", "l1"), ("c", "l2"), ("c", "l3")]));
        assert!(r.star && r.tree && !r.chain);
        assert_eq!(r.primary(), ShapeClass::Star);
    }

    #[test]
    fn proper_tree_is_not_star_or_chain() {
        // Two branch nodes of degree 3.
        let r = ShapeReport::classify(&graph(&[
            ("a", "b"),
            ("a", "c"),
            ("a", "d"),
            ("d", "e"),
            ("d", "f"),
        ]));
        assert!(r.tree && !r.star && !r.chain);
        assert_eq!(r.primary(), ShapeClass::Tree);
    }

    #[test]
    fn cycle_is_flower_but_not_tree() {
        let r = ShapeReport::classify(&graph(&[("a", "b"), ("b", "c"), ("c", "a")]));
        assert!(r.cycle && !r.tree && !r.forest);
        assert!(r.flower && r.flower_set);
        assert_eq!(r.primary(), ShapeClass::Cycle);
    }

    #[test]
    fn flower_with_petal_and_stamens() {
        // Centre x with: a petal (two paths x-a-t and x-b-t), one stamen
        // (chain x-s1-s2) and a stem (tree branching at x via m).
        let r = ShapeReport::classify(&graph(&[
            ("x", "a"),
            ("a", "t"),
            ("x", "b"),
            ("b", "t"),
            ("x", "s1"),
            ("s1", "s2"),
            ("x", "m"),
            ("m", "u"),
            ("m", "v"),
        ]));
        assert!(r.flower && r.flower_set);
        assert!(!r.forest && !r.cycle);
        assert_eq!(r.primary(), ShapeClass::Flower);
    }

    #[test]
    fn petal_with_three_paths() {
        // Three internally disjoint paths from x to t (like the Figure 6 petal
        // that uses three paths).
        let r = ShapeReport::classify(&graph(&[
            ("x", "a"),
            ("a", "t"),
            ("x", "b"),
            ("b", "t"),
            ("x", "c"),
            ("c", "t"),
        ]));
        assert!(r.flower);
        assert!(!r.cycle);
    }

    #[test]
    fn flower_set_of_cycle_and_chain() {
        let r = ShapeReport::classify(&graph(&[
            ("a", "b"),
            ("b", "c"),
            ("c", "a"),
            ("p", "q"),
            ("q", "r"),
        ]));
        assert!(!r.flower && r.flower_set);
        assert!(!r.forest);
        assert_eq!(r.primary(), ShapeClass::FlowerSet);
    }

    #[test]
    fn two_disjoint_cycles_sharing_nothing_not_flower_but_flower_set() {
        let r = ShapeReport::classify(&graph(&[
            ("a", "b"),
            ("b", "c"),
            ("c", "a"),
            ("d", "e"),
            ("e", "f"),
            ("f", "d"),
        ]));
        assert!(!r.flower);
        assert!(r.flower_set);
    }

    #[test]
    fn two_cycles_sharing_one_node_is_flower() {
        let r = ShapeReport::classify(&graph(&[
            ("x", "a"),
            ("a", "b"),
            ("b", "x"),
            ("x", "c"),
            ("c", "d"),
            ("d", "x"),
        ]));
        assert!(r.flower);
    }

    #[test]
    fn k4_is_not_a_flower() {
        let r = ShapeReport::classify(&graph(&[
            ("a", "b"),
            ("a", "c"),
            ("a", "d"),
            ("b", "c"),
            ("b", "d"),
            ("c", "d"),
        ]));
        assert!(!r.flower && !r.flower_set && !r.forest);
        assert_eq!(r.primary(), ShapeClass::Other);
    }

    #[test]
    fn empty_graph_classification() {
        let g = CanonicalGraph::default();
        let r = ShapeReport::classify(&g);
        assert!(r.empty && r.forest && r.flower_set);
        assert_eq!(r.primary(), ShapeClass::Empty);
    }

    #[test]
    fn tally_is_cumulative_like_table4() {
        let mut t = ShapeTally::new();
        t.add(&ShapeReport::classify(&graph(&[("x", "y")])), 1);
        t.add(
            &ShapeReport::classify(&graph(&[("a", "b"), ("b", "c"), ("c", "a")])),
            2,
        );
        assert_eq!(t.total, 2);
        assert_eq!(t.single_edge, 1);
        assert_eq!(t.flower_set, 2);
        assert_eq!(t.treewidth_le2, 2);
        let rows = t.rows();
        assert_eq!(rows.last().unwrap().1, 2);
    }
}
