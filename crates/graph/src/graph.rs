//! The canonical (undirected) graph of a graph pattern (Section 5 of the
//! paper).
//!
//! For a pattern `P` without variables in predicate position, the canonical
//! graph has an edge `{x, y}` for every triple pattern `(x, ℓ, y)` with
//! constant predicate `ℓ`, and its nodes are the subjects and objects of
//! those triples. Nodes can be variables, blank nodes *or constants*; the
//! paper additionally re-runs its analysis with constants excluded, which is
//! supported through [`GraphMode`].
//!
//! Filters of the form `?x = ?y` collapse the two nodes (footnote 20).

use serde::{Deserialize, Serialize};
use sparqlog_parser::ast::{Term, TriplePattern};
use sparqlog_parser::intern::{Interner, Symbol};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Whether constants (IRIs and literals in subject/object position) become
/// graph nodes, or only variables and blank nodes do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GraphMode {
    /// Constants are nodes too (the default canonical graph of the paper).
    WithConstants,
    /// Only variables and blank nodes are nodes; triples whose subject or
    /// object is a constant contribute no edge for that endpoint (a triple
    /// `(?x, p, c)` yields the singleton edge `{?x}`; a fully constant triple
    /// is ignored). Used for the Section 6.1 "excluding constants" rerun.
    VariablesOnly,
}

/// An undirected simple graph with optional parallel-edge and self-loop
/// accounting, as produced from a SPARQL graph pattern.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CanonicalGraph {
    /// Node labels (canonical representative after `?x = ?y` collapsing).
    pub labels: Vec<String>,
    /// Adjacency sets over node indices (no self entries).
    pub adj: Vec<BTreeSet<usize>>,
    /// Number of self-loop edges encountered (triples with identical
    /// endpoints after collapsing, e.g. `?x p ?x`).
    pub self_loops: usize,
    /// Number of triples that mapped onto an already-present edge
    /// (parallel edges in the multigraph view).
    pub parallel_edges: usize,
    /// Number of triples that contributed no edge at all (e.g. fully-constant
    /// triples in [`GraphMode::VariablesOnly`]).
    pub skipped_triples: usize,
}

impl CanonicalGraph {
    /// Builds the canonical graph of a set of triple patterns.
    ///
    /// `equalities` lists variable pairs equated by simple `?x = ?y` filters;
    /// each pair is collapsed into one node. Triple patterns with a variable
    /// predicate are rejected by returning `None` (such queries must be
    /// analysed through their hypergraph instead, see Section 5 / Example
    /// 5.1 of the paper).
    pub fn from_triples(
        triples: &[TriplePattern],
        equalities: &[(String, String)],
        mode: GraphMode,
    ) -> Option<CanonicalGraph> {
        let refs: Vec<&TriplePattern> = triples.iter().collect();
        CanonicalGraph::from_triple_refs(&refs, equalities, mode)
    }

    /// [`CanonicalGraph::from_triples`] over borrowed triples — the form the
    /// single-pass pipeline uses, where the triples are borrowed from a
    /// pattern tree instead of being cloned.
    pub fn from_triple_refs(
        triples: &[&TriplePattern],
        equalities: &[(String, String)],
        mode: GraphMode,
    ) -> Option<CanonicalGraph> {
        if triples.iter().any(|t| t.predicate.is_var()) {
            return None;
        }
        let mut uf = UnionFind::from_equalities(equalities);
        let mut builder = GraphBuilder::new(mode);
        for t in triples {
            builder.add_triple(t, &mut uf);
        }
        Some(builder.graph)
    }

    /// Builds the canonical graph in **both** modes in a single pass over the
    /// triples: the with-constants graph (shape, treewidth, girth) and the
    /// variables-only graph (the Section 6.1 "excluding constants" rerun).
    /// This is the one canonical-graph construction of the single-pass
    /// pipeline. Returns `None` when a predicate is a variable, exactly like
    /// [`CanonicalGraph::from_triples`].
    pub fn from_triples_both(
        triples: &[&TriplePattern],
        equalities: &[(String, String)],
    ) -> Option<(CanonicalGraph, CanonicalGraph)> {
        if triples.iter().any(|t| t.predicate.is_var()) {
            return None;
        }
        let mut uf = UnionFind::from_equalities(equalities);
        let mut with_constants = GraphBuilder::new(GraphMode::WithConstants);
        let mut vars_only = GraphBuilder::new(GraphMode::VariablesOnly);
        for t in triples {
            with_constants.add_triple(t, &mut uf);
            vars_only.add_triple(t, &mut uf);
        }
        Some((with_constants.graph, vars_only.graph))
    }

    /// [`CanonicalGraph::from_triples_both`] on an interned-term diet: node
    /// identity, the `?x = ?y` union-find and the node index all work over
    /// `u32` [`Symbol`]s from the caller's [`Interner`] instead of rendered
    /// label strings, so each term occurrence costs an integer lookup rather
    /// than a `String` allocation plus a string-keyed map probe. A node's
    /// label string is rendered exactly once, at its first occurrence, which
    /// keeps the produced graphs byte-identical to the string path (proven by
    /// the differential tests).
    ///
    /// The interner is typically the calling analysis worker's long-lived
    /// table, so IRIs and variable names repeated across queries are stored
    /// once per worker.
    pub fn from_triples_both_interned(
        triples: &[&TriplePattern],
        equalities: &[(String, String)],
        interner: &mut Interner,
    ) -> Option<(CanonicalGraph, CanonicalGraph)> {
        if triples.iter().any(|t| t.predicate.is_var()) {
            return None;
        }
        let mut uf = SymbolUnionFind::default();
        for (a, b) in equalities {
            let (a, b) = (interner.intern(a), interner.intern(b));
            uf.union(a, b);
        }
        let mut with_constants = InternedGraphBuilder::new(GraphMode::WithConstants);
        let mut vars_only = InternedGraphBuilder::new(GraphMode::VariablesOnly);
        for t in triples {
            with_constants.add_triple(t, &mut uf, interner);
            vars_only.add_triple(t, &mut uf, interner);
        }
        Some((with_constants.graph, vars_only.graph))
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of (simple, undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(|a| a.len()).sum::<usize>() / 2
    }

    /// The degree of a node.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// The connected components, each given as a sorted list of node indices.
    pub fn connected_components(&self) -> Vec<Vec<usize>> {
        let n = self.node_count();
        let mut seen = vec![false; n];
        let mut components = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut stack = vec![start];
            let mut comp = Vec::new();
            seen[start] = true;
            while let Some(v) = stack.pop() {
                comp.push(v);
                for &w in &self.adj[v] {
                    if !seen[w] {
                        seen[w] = true;
                        stack.push(w);
                    }
                }
            }
            comp.sort_unstable();
            components.push(comp);
        }
        components
    }

    /// True if the graph is connected (the empty graph counts as connected).
    pub fn is_connected(&self) -> bool {
        self.connected_components().len() <= 1
    }

    /// Returns the subgraph induced by `nodes` (labels are preserved).
    pub fn induced(&self, nodes: &[usize]) -> CanonicalGraph {
        let set: BTreeSet<usize> = nodes.iter().copied().collect();
        let mut map = BTreeMap::new();
        let mut out = CanonicalGraph::default();
        for &v in nodes {
            map.insert(v, out.labels.len());
            out.labels.push(self.labels[v].clone());
            out.adj.push(BTreeSet::new());
        }
        for &v in nodes {
            for &w in &self.adj[v] {
                if set.contains(&w) {
                    let a = map[&v];
                    let b = map[&w];
                    out.adj[a].insert(b);
                    out.adj[b].insert(a);
                }
            }
        }
        out
    }

    /// Removes a node, returning the residual graph (used by the flower
    /// classifier and the treewidth ≤ 2 reduction).
    pub fn without_node(&self, v: usize) -> CanonicalGraph {
        let keep: Vec<usize> = (0..self.node_count()).filter(|&u| u != v).collect();
        self.induced(&keep)
    }

    /// True if the graph contains at least one cycle.
    pub fn has_cycle(&self) -> bool {
        // A graph is acyclic iff every component has |E| = |V| - 1.
        for comp in self.connected_components() {
            let edges: usize = comp
                .iter()
                .map(|&v| self.adj[v].iter().filter(|w| comp.contains(w)).count())
                .sum::<usize>()
                / 2;
            if edges >= comp.len() {
                return true;
            }
        }
        false
    }

    /// The length of the shortest cycle (girth), or `None` if acyclic.
    /// Self-loops and parallel edges are *not* considered (they arise from
    /// multi-edges in the multigraph view and are reported separately).
    pub fn girth(&self) -> Option<usize> {
        let n = self.node_count();
        let mut best: Option<usize> = None;
        for start in 0..n {
            // BFS from start; a non-tree edge closing back gives a cycle.
            let mut dist = vec![usize::MAX; n];
            let mut parent = vec![usize::MAX; n];
            dist[start] = 0;
            let mut queue = std::collections::VecDeque::from([start]);
            while let Some(v) = queue.pop_front() {
                for &w in &self.adj[v] {
                    if dist[w] == usize::MAX {
                        dist[w] = dist[v] + 1;
                        parent[w] = v;
                        queue.push_back(w);
                    } else if parent[v] != w {
                        let cycle_len = dist[v] + dist[w] + 1;
                        best = Some(best.map_or(cycle_len, |b| b.min(cycle_len)));
                    }
                }
            }
        }
        best
    }
}

/// Incremental construction of one [`CanonicalGraph`] under a fixed
/// [`GraphMode`]; kept separate from the entry points so one triple scan can
/// feed several builders.
#[derive(Debug)]
struct GraphBuilder {
    graph: CanonicalGraph,
    index: BTreeMap<String, usize>,
    mode: GraphMode,
}

impl GraphBuilder {
    fn new(mode: GraphMode) -> GraphBuilder {
        GraphBuilder {
            graph: CanonicalGraph::default(),
            index: BTreeMap::new(),
            mode,
        }
    }

    fn node_of(&mut self, term: &Term, uf: &mut UnionFind) -> Option<usize> {
        let label = match term {
            Term::Var(v) => uf.find(&format!("?{v}")),
            Term::BlankNode(b) => format!("_:{b}"),
            Term::Iri(_) | Term::Literal { .. } => {
                if self.mode == GraphMode::VariablesOnly {
                    return None;
                }
                term.to_string()
            }
        };
        Some(*self.index.entry(label.clone()).or_insert_with(|| {
            self.graph.labels.push(label);
            self.graph.adj.push(BTreeSet::new());
            self.graph.labels.len() - 1
        }))
    }

    fn add_triple(&mut self, t: &TriplePattern, uf: &mut UnionFind) {
        let s = self.node_of(&t.subject, uf);
        let o = self.node_of(&t.object, uf);
        let graph = &mut self.graph;
        match (s, o) {
            (Some(a), Some(b)) if a == b => graph.self_loops += 1,
            (Some(a), Some(b)) => {
                if graph.adj[a].contains(&b) {
                    graph.parallel_edges += 1;
                } else {
                    graph.adj[a].insert(b);
                    graph.adj[b].insert(a);
                }
            }
            (Some(_), None) | (None, Some(_)) => graph.self_loops += 1,
            (None, None) => graph.skipped_triples += 1,
        }
    }
}

/// Node identity under the interned construction: which graph node a term
/// maps to, as symbols of the active [`Interner`]. Variables carry their
/// union-find **root** symbol so `?x = ?y` pairs collapse to one key; the
/// enum discriminant keeps `?x`, `_:x` and constants distinct the way the
/// rendered labels (`"?x"` / `"_:x"` / `"<x>"`) did on the string path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum NodeKey {
    Var(Symbol),
    Blank(Symbol),
    Iri(Symbol),
    Literal(Symbol, Option<Symbol>, Option<Symbol>),
}

/// Incremental construction of one [`CanonicalGraph`] whose node index is
/// keyed by [`NodeKey`] symbols instead of rendered label strings. Labels
/// are materialized once per distinct node, on first occurrence, in exactly
/// the format of the string-keyed [`GraphBuilder`].
#[derive(Debug)]
struct InternedGraphBuilder {
    graph: CanonicalGraph,
    index: HashMap<NodeKey, usize>,
    mode: GraphMode,
}

impl InternedGraphBuilder {
    fn new(mode: GraphMode) -> InternedGraphBuilder {
        InternedGraphBuilder {
            graph: CanonicalGraph::default(),
            index: HashMap::new(),
            mode,
        }
    }

    fn node_of(
        &mut self,
        term: &Term,
        uf: &mut SymbolUnionFind,
        interner: &mut Interner,
    ) -> Option<usize> {
        let key = match term {
            Term::Var(v) => NodeKey::Var(uf.find(interner.intern(v))),
            Term::BlankNode(b) => NodeKey::Blank(interner.intern(b)),
            Term::Iri(i) => {
                if self.mode == GraphMode::VariablesOnly {
                    return None;
                }
                NodeKey::Iri(interner.intern(i))
            }
            Term::Literal {
                lexical,
                datatype,
                lang,
            } => {
                if self.mode == GraphMode::VariablesOnly {
                    return None;
                }
                NodeKey::Literal(
                    interner.intern(lexical),
                    datatype.as_deref().map(|d| interner.intern(d)),
                    lang.as_deref().map(|l| interner.intern(l)),
                )
            }
        };
        Some(match self.index.get(&key) {
            Some(&node) => node,
            None => {
                // First occurrence: render the label exactly as the
                // string-keyed builder would have.
                let label = match key {
                    NodeKey::Var(root) => format!("?{}", interner.resolve(root)),
                    NodeKey::Blank(b) => format!("_:{}", interner.resolve(b)),
                    NodeKey::Iri(_) | NodeKey::Literal(..) => term.to_string(),
                };
                let node = self.graph.labels.len();
                self.graph.labels.push(label);
                self.graph.adj.push(BTreeSet::new());
                self.index.insert(key, node);
                node
            }
        })
    }

    fn add_triple(&mut self, t: &TriplePattern, uf: &mut SymbolUnionFind, interner: &mut Interner) {
        let s = self.node_of(&t.subject, uf, interner);
        let o = self.node_of(&t.object, uf, interner);
        let graph = &mut self.graph;
        match (s, o) {
            (Some(a), Some(b)) if a == b => graph.self_loops += 1,
            (Some(a), Some(b)) => {
                if graph.adj[a].contains(&b) {
                    graph.parallel_edges += 1;
                } else {
                    graph.adj[a].insert(b);
                    graph.adj[b].insert(a);
                }
            }
            (Some(_), None) | (None, Some(_)) => graph.self_loops += 1,
            (None, None) => graph.skipped_triples += 1,
        }
    }
}

/// A union-find over interned variable symbols — the integer-ops counterpart
/// of [`UnionFind`], with the same root-selection order (`union(a, b)` keeps
/// `a`'s root), so the collapsed labels match the string path exactly.
#[derive(Debug, Default)]
struct SymbolUnionFind {
    parent: HashMap<Symbol, Symbol>,
}

impl SymbolUnionFind {
    fn find(&mut self, key: Symbol) -> Symbol {
        let parent = match self.parent.get(&key) {
            None => return key,
            Some(&p) => p,
        };
        if parent == key {
            return parent;
        }
        let root = self.find(parent);
        self.parent.insert(key, root);
        root
    }

    fn union(&mut self, a: Symbol, b: Symbol) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent.insert(rb, ra);
        }
    }
}

/// A tiny union-find over string keys used for `?x = ?y` collapsing.
#[derive(Debug, Default)]
struct UnionFind {
    parent: BTreeMap<String, String>,
}

impl UnionFind {
    /// Builds the union-find for a set of `?x = ?y` equality pairs.
    fn from_equalities(equalities: &[(String, String)]) -> UnionFind {
        let mut uf = UnionFind::default();
        for (a, b) in equalities {
            uf.union(&format!("?{a}"), &format!("?{b}"));
        }
        uf
    }

    fn find(&mut self, key: &str) -> String {
        let parent = match self.parent.get(key) {
            None => return key.to_string(),
            Some(p) => p.clone(),
        };
        if parent == key {
            return parent;
        }
        let root = self.find(&parent);
        self.parent.insert(key.to_string(), root.clone());
        root
    }

    fn union(&mut self, a: &str, b: &str) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent.insert(rb, ra);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparqlog_parser::ast::Term;

    fn t(s: &str, p: &str, o: &str) -> TriplePattern {
        let term = |x: &str| {
            if let Some(v) = x.strip_prefix('?') {
                Term::var(v)
            } else {
                Term::iri(x)
            }
        };
        TriplePattern::new(term(s), Term::iri(p), term(o))
    }

    #[test]
    fn builds_chain_graph() {
        let triples = [
            t("?x1", "a", "?x2"),
            t("?x2", "b", "?x3"),
            t("?x3", "c", "?x4"),
        ];
        let g = CanonicalGraph::from_triples(&triples, &[], GraphMode::WithConstants).unwrap();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert!(!g.has_cycle());
        assert!(g.is_connected());
        assert_eq!(g.girth(), None);
    }

    #[test]
    fn variable_predicate_is_rejected() {
        let triples = [TriplePattern::new(
            Term::var("x"),
            Term::var("p"),
            Term::var("y"),
        )];
        assert!(CanonicalGraph::from_triples(&triples, &[], GraphMode::WithConstants).is_none());
    }

    #[test]
    fn constants_become_nodes_only_with_constants_mode() {
        let triples = [t("?x", "p", "c1"), t("?x", "q", "c2")];
        let with = CanonicalGraph::from_triples(&triples, &[], GraphMode::WithConstants).unwrap();
        assert_eq!(with.node_count(), 3);
        assert_eq!(with.edge_count(), 2);
        let without =
            CanonicalGraph::from_triples(&triples, &[], GraphMode::VariablesOnly).unwrap();
        assert_eq!(without.node_count(), 1);
        assert_eq!(without.edge_count(), 0);
        assert_eq!(without.self_loops, 2);
    }

    #[test]
    fn cycle_detection_and_girth() {
        let triples = [
            t("?a", "p", "?b"),
            t("?b", "p", "?c"),
            t("?c", "p", "?d"),
            t("?d", "p", "?a"),
        ];
        let g = CanonicalGraph::from_triples(&triples, &[], GraphMode::WithConstants).unwrap();
        assert!(g.has_cycle());
        assert_eq!(g.girth(), Some(4));
    }

    #[test]
    fn equality_filter_collapses_nodes() {
        // ?x p ?y . ?z q ?w with FILTER(?y = ?z) becomes a chain of length 2.
        let triples = [t("?x", "p", "?y"), t("?z", "q", "?w")];
        let g = CanonicalGraph::from_triples(
            &triples,
            &[("y".to_string(), "z".to_string())],
            GraphMode::WithConstants,
        )
        .unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!(g.is_connected());
    }

    #[test]
    fn parallel_edges_and_self_loops_are_counted() {
        let triples = [t("?x", "p", "?y"), t("?x", "q", "?y"), t("?x", "r", "?x")];
        let g = CanonicalGraph::from_triples(&triples, &[], GraphMode::WithConstants).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.parallel_edges, 1);
        assert_eq!(g.self_loops, 1);
    }

    #[test]
    fn components_and_induced_subgraphs() {
        let triples = [t("?a", "p", "?b"), t("?c", "p", "?d")];
        let g = CanonicalGraph::from_triples(&triples, &[], GraphMode::WithConstants).unwrap();
        let comps = g.connected_components();
        assert_eq!(comps.len(), 2);
        let sub = g.induced(&comps[0]);
        assert_eq!(sub.node_count(), 2);
        assert_eq!(sub.edge_count(), 1);
        assert!(!g.is_connected());
    }

    #[test]
    fn interned_construction_matches_string_construction() {
        let lit = TriplePattern::new(
            Term::var("x"),
            Term::iri("http://p"),
            Term::Literal {
                lexical: "v".to_string(),
                datatype: Some("http://dt".to_string()),
                lang: None,
            },
        );
        type Case = (Vec<TriplePattern>, Vec<(String, String)>);
        let cases: Vec<Case> = vec![
            (
                vec![
                    t("?a", "p", "?b"),
                    t("?b", "p", "?c"),
                    t("?c", "p", "?d"),
                    t("?d", "p", "?a"),
                ],
                vec![],
            ),
            (
                vec![t("?x", "p", "?y"), t("?z", "q", "?w")],
                vec![("y".to_string(), "z".to_string())],
            ),
            (
                vec![t("?x", "p", "c1"), t("?x", "q", "c2"), t("?x", "r", "?x")],
                vec![],
            ),
            (
                vec![
                    TriplePattern::new(
                        Term::BlankNode("b".to_string()),
                        Term::iri("http://p"),
                        Term::var("x"),
                    ),
                    lit,
                ],
                vec![],
            ),
        ];
        let mut interner = Interner::new();
        for (triples, equalities) in cases {
            let refs: Vec<&TriplePattern> = triples.iter().collect();
            let reference = CanonicalGraph::from_triples_both(&refs, &equalities).unwrap();
            // The interner is reused across cases, as an analysis worker
            // reuses it across queries.
            let interned =
                CanonicalGraph::from_triples_both_interned(&refs, &equalities, &mut interner)
                    .unwrap();
            assert_eq!(reference, interned);
        }
        assert!(interner.stats().hits > 0);
    }

    #[test]
    fn interned_construction_rejects_variable_predicates() {
        let triples = [TriplePattern::new(
            Term::var("x"),
            Term::var("p"),
            Term::var("y"),
        )];
        let refs: Vec<&TriplePattern> = triples.iter().collect();
        let mut interner = Interner::new();
        assert!(CanonicalGraph::from_triples_both_interned(&refs, &[], &mut interner).is_none());
    }

    #[test]
    fn girth_of_triangle_with_tail() {
        let triples = [
            t("?a", "p", "?b"),
            t("?b", "p", "?c"),
            t("?c", "p", "?a"),
            t("?c", "p", "?d"),
            t("?d", "p", "?e"),
        ];
        let g = CanonicalGraph::from_triples(&triples, &[], GraphMode::WithConstants).unwrap();
        assert_eq!(g.girth(), Some(3));
    }
}
