//! # sparqlog-graph
//!
//! Canonical graph / hypergraph construction, shape classification, treewidth
//! and generalized hypertree width for SPARQL queries — the structural
//! machinery behind Sections 5 and 6 of *"An Analytical Study of Large SPARQL
//! Query Logs"* (Bonifati–Martens–Timm, VLDB 2017).
//!
//! * [`graph`] — the canonical undirected graph of a pattern, with
//!   `?x = ?y` collapsing and a constants-excluded mode.
//! * [`shape`] — the shape taxonomy (single edge, chain, star, tree, forest,
//!   cycle, flower, flower set) and the cumulative Table-4 tally.
//! * [`treewidth`](mod@crate::treewidth) — exact treewidth for query-sized
//!   graphs.
//! * [`hypergraph`] — the canonical hypergraph (for variable predicates).
//! * [`hypertree`] — generalized hypertree width (det-k-decomp style).
//! * [`analyze`] — the per-query [`StructuralReport`] combining everything.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod graph;
pub mod hypergraph;
pub mod hypertree;
pub mod shape;
pub mod treewidth;

pub use analyze::StructuralReport;
pub use graph::{CanonicalGraph, GraphMode};
pub use hypergraph::Hypergraph;
pub use hypertree::{generalized_hypertree_width, HypertreeWidth};
pub use shape::{ShapeClass, ShapeReport, ShapeTally};
pub use treewidth::{treewidth, Treewidth};
