//! # sparqlog-bench
//!
//! The benchmark harness of the `sparqlog` workspace. It contains
//!
//! * one **binary per table / figure** of the paper (in `src/bin/`), each of
//!   which regenerates the corresponding rows from a synthetic corpus or from
//!   the engine experiment, and
//! * **criterion micro-benchmarks** (in `benches/`) for the hot kernels:
//!   parsing, shape classification, hypertree decomposition, the two join
//!   engines, Levenshtein distance and corpus synthesis.
//!
//! This library crate hosts the shared plumbing: command-line options and the
//! corpus construction used by all harness binaries.

// `forbid` everywhere except when the `alloc-stats` feature compiles the
// counting global allocator in `alloc_stats` (a `GlobalAlloc` impl is
// inherently unsafe); the rest of the crate stays `deny`-checked.
#![cfg_attr(not(feature = "alloc-stats"), forbid(unsafe_code))]
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc_stats;
pub mod gate;

use sparqlog_core::analysis::{
    AnalysisStats, CachePolicy, CorpusAnalysis, EngineOptions, Population,
};
use sparqlog_core::corpus::{
    analyze_streams, ingest_all_materializing, ingest_streams, FileLogReader, IngestedLog,
    LogReader, MemoryLogReader, RawLog,
};
use sparqlog_synth::{generate_corpus, CorpusConfig};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Common options for the harness binaries, parsed from the command line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HarnessOptions {
    /// Corpus scale factor relative to the real Table-1 sizes.
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
    /// Analyse the valid population (with duplicates) instead of the unique
    /// one — reproduces the appendix variants (Tables 7–9, Figures 8–10).
    pub valid_population: bool,
    /// Cap on entries per dataset (0 = none).
    pub cap: u64,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions {
            scale: 2e-5,
            seed: 42,
            valid_population: false,
            cap: 0,
        }
    }
}

impl HarnessOptions {
    /// Parses options from `std::env::args`. Recognised flags:
    /// `--scale <f64>`, `--seed <u64>`, `--cap <u64>`, `--valid`.
    pub fn from_args() -> HarnessOptions {
        let mut opts = HarnessOptions::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        opts.scale = v;
                    }
                    i += 1;
                }
                "--seed" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        opts.seed = v;
                    }
                    i += 1;
                }
                "--cap" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        opts.cap = v;
                    }
                    i += 1;
                }
                "--valid" => opts.valid_population = true,
                _ => {}
            }
            i += 1;
        }
        opts
    }

    /// The population selected by the options.
    pub fn population(&self) -> Population {
        if self.valid_population {
            Population::Valid
        } else {
            Population::Unique
        }
    }
}

/// Generates the synthetic corpus as raw logs (the materializing input).
pub fn raw_corpus(opts: &HarnessOptions) -> Vec<RawLog> {
    let corpus = generate_corpus(CorpusConfig {
        scale: opts.scale,
        seed: opts.seed,
        max_entries_per_dataset: opts.cap,
    });
    corpus
        .logs
        .into_iter()
        .map(|l| RawLog::new(l.dataset.label(), l.entries))
        .collect()
}

/// Wraps raw logs in [`MemoryLogReader`]s: the entries are moved into the
/// readers and drained batch by batch, so the raw corpus is never duplicated
/// and shrinks as the pipeline progresses.
pub fn corpus_readers(raw: Vec<RawLog>) -> Vec<Box<dyn LogReader + 'static>> {
    raw.into_iter()
        .map(|log| {
            Box::new(MemoryLogReader::new(log.label, log.entries)) as Box<dyn LogReader + 'static>
        })
        .collect()
}

/// Writes a duplicate-heavy corpus to one temp log file per dataset — each
/// log's entries tiled `tile` times, so every query occurs at least that
/// often, matching the duplication regime the source paper reports for real
/// logs. Returns `(label, path)` pairs plus the total entry count. Shared by
/// the file-streaming ablations (`ablation_fused`, `ablation_shard`).
pub fn write_corpus_files(
    opts: &HarnessOptions,
    dir: &Path,
    tile: usize,
) -> (Vec<(String, PathBuf)>, u64) {
    let mut files = Vec::new();
    let mut total = 0u64;
    for (index, log) in raw_corpus(opts).into_iter().enumerate() {
        // Labels are display strings (may contain `/` or spaces); the file
        // name only needs to be unique — the label rides in the reader.
        let stem: String = log
            .label
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        let path = dir.join(format!("{index:02}-{stem}.log"));
        let file = std::fs::File::create(&path).expect("create temp log file");
        let mut writer = std::io::BufWriter::new(file);
        for _ in 0..tile {
            for entry in &log.entries {
                // Synthesized queries are single-line; keep the invariant
                // explicit for one-entry-per-line streaming.
                debug_assert!(!entry.contains('\n'));
                writeln!(writer, "{entry}").expect("write temp log line");
            }
        }
        writer.flush().expect("flush temp log");
        total += (log.entries.len() * tile) as u64;
        files.push((log.label, path));
    }
    (files, total)
}

/// Opens [`FileLogReader`]s over the `(label, path)` pairs produced by
/// [`write_corpus_files`].
pub fn open_file_readers(files: &[(String, PathBuf)]) -> Vec<Box<dyn LogReader + 'static>> {
    files
        .iter()
        .map(|(label, path)| {
            Box::new(FileLogReader::open(label.clone(), path).expect("open temp log"))
                as Box<dyn LogReader + 'static>
        })
        .collect()
}

/// Generates the synthetic corpus and ingests it through the staged
/// streaming path (ASTs retained in [`IngestedLog::valid_queries`]) — the
/// input of the staged analysis engine and the `ablation_*` baselines.
pub fn build_corpus(opts: &HarnessOptions) -> Vec<IngestedLog> {
    ingest_streams(corpus_readers(raw_corpus(opts))).expect("in-memory ingestion cannot fail")
}

/// Generates the synthetic corpus and ingests it through the materializing
/// reference path (full `RawLog` residency, canonical strings built and then
/// hashed) — the baseline `ablation_streaming` measures against.
pub fn build_corpus_materializing(opts: &HarnessOptions) -> Vec<IngestedLog> {
    ingest_all_materializing(&raw_corpus(opts))
}

/// Generates, ingests and analyses the synthetic corpus in one call — the
/// entry point shared by most harness binaries. Runs on the **fused**
/// ingest→analyze engine: each batch is analysed as it parses and no query
/// AST outlives its batch (the staged path survives in [`build_corpus`] +
/// [`CorpusAnalysis::analyze_stats`] as the differential baseline).
pub fn analyzed_corpus(opts: &HarnessOptions) -> CorpusAnalysis {
    analyzed_corpus_stats(opts).0
}

/// [`analyzed_corpus`] returning the run's cache / interner counters too, so
/// harness binaries can print the [`stats_banner`] under their headline.
///
/// The fused engine structurally requires its fingerprint-keyed memo table,
/// so the documented `SPARQLOG_ANALYSIS_CACHE=0` differential toggle cannot
/// disable caching *inside* it; instead it drops the whole harness back to
/// the staged pipeline with the cache off — the uncached reference the
/// toggle has always meant.
pub fn analyzed_corpus_stats(opts: &HarnessOptions) -> (CorpusAnalysis, AnalysisStats) {
    if !CachePolicy::Auto.enabled() {
        let logs = build_corpus(opts);
        return CorpusAnalysis::analyze_stats(&logs, opts.population(), EngineOptions::default());
    }
    let fused = analyze_streams(corpus_readers(raw_corpus(opts)), opts.population())
        .expect("in-memory streams cannot fail");
    (fused.corpus, fused.stats)
}

/// Prints the standard harness banner describing the run.
pub fn banner(what: &str, opts: &HarnessOptions) {
    println!("== sparqlog :: {what} ==");
    println!(
        "synthetic corpus, scale {:.0e} of Table-1 sizes, seed {}, population: {}, workers: {}",
        opts.scale,
        opts.seed,
        if opts.valid_population {
            "Valid (with duplicates)"
        } else {
            "Unique"
        },
        sparqlog_core::default_workers()
    );
    println!();
}

/// Renders the analysis-run counters as a banner line: what the
/// fingerprint-keyed analysis cache absorbed and what the per-worker term
/// interners saved.
pub fn stats_banner(stats: &AnalysisStats) -> String {
    let mut out = String::new();
    match &stats.cache {
        Some(cache) => {
            out.push_str(&format!(
                "analysis cache: {} hits / {} misses ({:.1}% hit rate), {} distinct forms",
                cache.hits,
                cache.misses,
                cache.hit_rate() * 100.0,
                cache.distinct,
            ));
        }
        None => out.push_str("analysis cache: disabled"),
    }
    let interner = &stats.interner;
    out.push_str(&format!(
        "\nterm interner: {} lookups, {:.1}% hits, {} string bytes saved ({} stored)",
        interner.lookups,
        interner.hit_rate() * 100.0,
        interner.bytes_saved,
        interner.bytes_interned,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_build_a_small_corpus() {
        let opts = HarnessOptions {
            scale: 1e-6,
            cap: 50,
            ..HarnessOptions::default()
        };
        let logs = build_corpus(&opts);
        assert_eq!(logs.len(), 13);
        assert!(logs.iter().all(|l| l.counts.total > 0));
    }

    #[test]
    fn analysis_runs_end_to_end() {
        let opts = HarnessOptions {
            scale: 1e-6,
            cap: 40,
            ..HarnessOptions::default()
        };
        let corpus = analyzed_corpus(&opts);
        assert_eq!(corpus.datasets.len(), 13);
        assert!(corpus.combined.keywords.total_queries > 0);
    }

    #[test]
    fn population_flag_switches_population() {
        let unique = HarnessOptions::default();
        let valid = HarnessOptions {
            valid_population: true,
            ..HarnessOptions::default()
        };
        assert_eq!(unique.population(), Population::Unique);
        assert_eq!(valid.population(), Population::Valid);
    }
}
