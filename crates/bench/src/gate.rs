//! The shared report-divergence gate of the `ablation_*` binaries.
//!
//! Every ablation harness doubles as a CI differential gate: it proves two
//! analysis paths produce **byte-identical** corpus reports and exits
//! non-zero otherwise. The byte-compare / first-difference excerpt /
//! exit-1 plumbing used to be copy-pasted per binary; [`DivergenceGate`]
//! centralizes it so every gate reports divergences the same way (including
//! an excerpt of the first differing line, which the copies never printed).

/// Collects divergences across a harness run and turns them into the
/// process exit status.
///
/// ```
/// use sparqlog_bench::gate::DivergenceGate;
///
/// let mut gate = DivergenceGate::new();
/// assert!(gate.compare("same", "report\n", "report\n"));
/// assert!(gate.require(1 + 1 == 2, "arithmetic still works"));
/// assert!(gate.is_clean());
/// // gate.finish("all paths agree");  // prints OK, or exits 1 on divergence
/// ```
#[derive(Debug, Default)]
pub struct DivergenceGate {
    divergences: u32,
}

/// How many characters of each differing line the excerpt shows.
const EXCERPT_CHARS: usize = 160;

fn excerpt(line: &str) -> String {
    if line.len() <= EXCERPT_CHARS {
        return line.to_string();
    }
    let mut end = EXCERPT_CHARS;
    while !line.is_char_boundary(end) {
        end -= 1;
    }
    format!("{}…", &line[..end])
}

impl DivergenceGate {
    /// A gate with no divergences yet.
    pub fn new() -> DivergenceGate {
        DivergenceGate::default()
    }

    /// Byte-compares two reports. On mismatch, prints a `DIVERGENCE:` line
    /// with `context` plus an excerpt of the first differing line, and
    /// records the failure. Returns whether the reports matched.
    pub fn compare(&mut self, context: &str, reference: &str, candidate: &str) -> bool {
        if reference == candidate {
            return true;
        }
        eprintln!("DIVERGENCE: {context}");
        let mut reference_lines = reference.lines();
        let mut candidate_lines = candidate.lines();
        let mut line_number = 1usize;
        loop {
            match (reference_lines.next(), candidate_lines.next()) {
                (Some(r), Some(c)) if r == c => line_number += 1,
                (Some(r), Some(c)) => {
                    eprintln!("  first difference at line {line_number}:");
                    eprintln!("    reference: {}", excerpt(r));
                    eprintln!("    candidate: {}", excerpt(c));
                    break;
                }
                (Some(r), None) => {
                    eprintln!("  candidate ends at line {line_number}; reference continues:");
                    eprintln!("    reference: {}", excerpt(r));
                    break;
                }
                (None, Some(c)) => {
                    eprintln!("  reference ends at line {line_number}; candidate continues:");
                    eprintln!("    candidate: {}", excerpt(c));
                    break;
                }
                (None, None) => {
                    // Same lines, different bytes (line terminators).
                    eprintln!("  reports differ only in line terminators");
                    break;
                }
            }
        }
        self.divergences += 1;
        false
    }

    /// Records a divergence unless `ok` holds (for non-report invariants a
    /// gate also checks, e.g. "the cache reported hits"). Returns `ok`.
    pub fn require(&mut self, ok: bool, message: &str) -> bool {
        if !ok {
            eprintln!("DIVERGENCE: {message}");
            self.divergences += 1;
        }
        ok
    }

    /// Whether no divergence was recorded.
    pub fn is_clean(&self) -> bool {
        self.divergences == 0
    }

    /// Ends the gate: prints `differential check: OK — {ok_message}` and
    /// returns, or prints the failure count and exits the process with
    /// status 1.
    pub fn finish(self, ok_message: &str) {
        if self.divergences > 0 {
            eprintln!(
                "differential check: FAILED ({} divergence{})",
                self.divergences,
                if self.divergences == 1 { "" } else { "s" }
            );
            std::process::exit(1);
        }
        println!("\ndifferential check: OK — {ok_message}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matching_reports_keep_the_gate_clean() {
        let mut gate = DivergenceGate::new();
        assert!(gate.compare("ctx", "a\nb\n", "a\nb\n"));
        assert!(gate.require(true, "fine"));
        assert!(gate.is_clean());
    }

    #[test]
    fn differing_reports_and_failed_requirements_are_recorded() {
        let mut gate = DivergenceGate::new();
        assert!(!gate.compare("ctx", "a\nb\n", "a\nc\n"));
        assert!(!gate.compare("ctx", "a\n", "a\nextra\n"));
        assert!(!gate.require(false, "broken invariant"));
        assert!(!gate.is_clean());
    }

    #[test]
    fn excerpts_truncate_long_lines_on_char_boundaries() {
        let line = "é".repeat(200);
        let shortened = excerpt(&line);
        assert!(shortened.ends_with('…'));
        assert!(shortened.chars().count() <= EXCERPT_CHARS + 1);
        assert_eq!(excerpt("short"), "short");
    }
}
