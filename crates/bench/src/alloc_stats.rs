//! A counting global allocator for the ablation harnesses, behind the
//! `alloc-stats` feature.
//!
//! When the feature is enabled, every harness binary of this crate routes
//! allocation through a [`System`](std::alloc::System)-backed counter that
//! tracks cumulative bytes allocated, the current live-byte footprint and
//! its high-water mark. `ablation_fused` uses the deltas around each
//! pipeline run to put a measured number on the memory-bound claim: the
//! staged pipeline's peak grows with the corpus (every AST resident at the
//! phase barrier), the fused engine's with in-flight batches + distinct
//! analyses only.
//!
//! With the feature disabled (the default) this module compiles to stubs —
//! [`snapshot`] returns `None` and no allocator is installed, so the rest
//! of the workspace keeps its `forbid(unsafe_code)` posture and its
//! allocation behaviour.

/// A point-in-time reading of the allocation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Cumulative bytes handed out since process start.
    pub allocated_bytes: u64,
    /// Cumulative number of allocations.
    pub allocations: u64,
    /// Bytes currently live (allocated minus freed).
    pub live_bytes: u64,
    /// High-water mark of `live_bytes` since process start or the last
    /// [`reset_peak`].
    pub peak_live_bytes: u64,
}

impl AllocSnapshot {
    /// Peak live bytes above the given baseline snapshot — the extra
    /// residency a measured region added on top of what was already live.
    pub fn peak_above(&self, baseline: &AllocSnapshot) -> u64 {
        self.peak_live_bytes.saturating_sub(baseline.live_bytes)
    }

    /// Bytes allocated since the given baseline snapshot.
    pub fn allocated_since(&self, baseline: &AllocSnapshot) -> u64 {
        self.allocated_bytes
            .saturating_sub(baseline.allocated_bytes)
    }
}

/// Whether the counting allocator is compiled in.
pub fn enabled() -> bool {
    cfg!(feature = "alloc-stats")
}

#[cfg(feature = "alloc-stats")]
#[allow(unsafe_code)]
mod counting {
    use super::AllocSnapshot;
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCATED: AtomicU64 = AtomicU64::new(0);
    static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
    static LIVE: AtomicU64 = AtomicU64::new(0);
    static PEAK: AtomicU64 = AtomicU64::new(0);

    fn record_alloc(size: usize) {
        let size = size as u64;
        ALLOCATED.fetch_add(size, Ordering::Relaxed);
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
        PEAK.fetch_max(live, Ordering::Relaxed);
    }

    fn record_dealloc(size: usize) {
        LIVE.fetch_sub(size as u64, Ordering::Relaxed);
    }

    /// [`System`] with relaxed atomic byte counters around every call.
    struct CountingAllocator;

    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let pointer = System.alloc(layout);
            if !pointer.is_null() {
                record_alloc(layout.size());
            }
            pointer
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            let pointer = System.alloc_zeroed(layout);
            if !pointer.is_null() {
                record_alloc(layout.size());
            }
            pointer
        }

        unsafe fn dealloc(&self, pointer: *mut u8, layout: Layout) {
            System.dealloc(pointer, layout);
            record_dealloc(layout.size());
        }

        unsafe fn realloc(&self, pointer: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let grown = System.realloc(pointer, layout, new_size);
            if !grown.is_null() {
                record_dealloc(layout.size());
                record_alloc(new_size);
            }
            grown
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAllocator = CountingAllocator;

    pub(super) fn snapshot() -> AllocSnapshot {
        AllocSnapshot {
            allocated_bytes: ALLOCATED.load(Ordering::Relaxed),
            allocations: ALLOCATIONS.load(Ordering::Relaxed),
            live_bytes: LIVE.load(Ordering::Relaxed),
            peak_live_bytes: PEAK.load(Ordering::Relaxed),
        }
    }

    pub(super) fn reset_peak() {
        PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// Reads the counters, or `None` when built without `alloc-stats`.
pub fn snapshot() -> Option<AllocSnapshot> {
    #[cfg(feature = "alloc-stats")]
    {
        Some(counting::snapshot())
    }
    #[cfg(not(feature = "alloc-stats"))]
    {
        None
    }
}

/// Resets the peak-live high-water mark to the current live footprint, so
/// the next measured region reports its own peak. No-op without the
/// feature.
pub fn reset_peak() {
    #[cfg(feature = "alloc-stats")]
    counting::reset_peak();
}

#[cfg(all(test, feature = "alloc-stats"))]
mod tests {
    use super::*;

    #[test]
    fn counters_track_a_large_allocation() {
        reset_peak();
        let before = snapshot().expect("feature enabled");
        let buffer = vec![0u8; 1 << 20];
        let during = snapshot().expect("feature enabled");
        drop(buffer);
        let after = snapshot().expect("feature enabled");
        assert!(during.allocated_since(&before) >= 1 << 20);
        assert!(during.live_bytes >= before.live_bytes + (1 << 20));
        assert!(after.peak_above(&before) >= 1 << 20);
        assert!(after.live_bytes < during.live_bytes);
    }
}
