//! Regenerates Table 4 (or Table 9 with --valid): cumulative shape analysis.
use sparqlog_bench::{analyzed_corpus, banner, HarnessOptions};
use sparqlog_core::report;

fn main() {
    let opts = HarnessOptions::from_args();
    banner("Table 4 / Table 9 — cumulative shape analysis", &opts);
    let corpus = analyzed_corpus(&opts);
    println!("{}", report::table4_shapes(&corpus.combined));
}
