//! Regenerates Table 3 (or Table 8 with --valid): operator-set distribution.
use sparqlog_bench::{analyzed_corpus, banner, HarnessOptions};
use sparqlog_core::report;

fn main() {
    let opts = HarnessOptions::from_args();
    banner("Table 3 / Table 8 — operator sets", &opts);
    let corpus = analyzed_corpus(&opts);
    println!("{}", report::table3_opsets(&corpus.combined));
}
