//! Ablation: the effect of duplicate elimination on the corpus statistics.
//!
//! The paper analyses the *Unique* corpus in the body and repeats the
//! analysis on the *Valid* corpus (with duplicates) in the appendix
//! (Tables 7–9, Figures 8–10), observing that the two populations differ
//! noticeably in how large and complex their queries are. This binary prints
//! the keyword shares, the fragment shares and the one-triple share for both
//! populations side by side so the effect of duplicate elimination can be
//! inspected directly on any corpus.

use sparqlog_bench::{banner, build_corpus, HarnessOptions};
use sparqlog_core::analysis::{CorpusAnalysis, Population};

fn main() {
    let opts = HarnessOptions::from_args();
    banner(
        "Ablation — Unique vs Valid (with duplicates) population",
        &opts,
    );
    let logs = build_corpus(&opts);
    let unique = CorpusAnalysis::analyze(&logs, Population::Unique);
    let valid = CorpusAnalysis::analyze(&logs, Population::Valid);

    println!(
        "{:<14} {:>14} {:>9} {:>14} {:>9}",
        "Keyword", "Unique", "%", "Valid", "%"
    );
    for (u, v) in unique
        .combined
        .keywords
        .rows()
        .iter()
        .zip(valid.combined.keywords.rows())
    {
        println!(
            "{:<14} {:>14} {:>8.2}% {:>14} {:>8.2}%",
            u.0,
            u.1,
            u.2 * 100.0,
            v.1,
            v.2 * 100.0
        );
    }
    println!();
    let uf = &unique.combined.fragments;
    let vf = &valid.combined.fragments;
    println!(
        "{:<28} {:>12} {:>12}",
        "Fragment (share of AOF)", "Unique", "Valid"
    );
    println!(
        "{:<28} {:>11.2}% {:>11.2}%",
        "CQ",
        uf.cq_share_of_aof() * 100.0,
        vf.cq_share_of_aof() * 100.0
    );
    println!(
        "{:<28} {:>11.2}% {:>11.2}%",
        "CQF",
        uf.cqf_share_of_aof() * 100.0,
        vf.cqf_share_of_aof() * 100.0
    );
    println!(
        "{:<28} {:>11.2}% {:>11.2}%",
        "CQOF",
        uf.cqof_share_of_aof() * 100.0,
        vf.cqof_share_of_aof() * 100.0
    );
    println!();
    println!(
        "share of SELECT/ASK queries with at most one triple: unique {:.2}%, valid {:.2}%",
        unique.combined.triples.cumulative_share_at_most(1) * 100.0,
        valid.combined.triples.cumulative_share_at_most(1) * 100.0
    );
}
