//! Regenerates Table 5 (or Figure 10 with --valid): property-path structure.
use sparqlog_bench::{analyzed_corpus, banner, HarnessOptions};
use sparqlog_core::report;

fn main() {
    let opts = HarnessOptions::from_args();
    banner("Table 5 / Figure 10 — property paths", &opts);
    let corpus = analyzed_corpus(&opts);
    println!("{}", report::table5_paths(&corpus.combined));
}
