//! Regenerates the Section 6.1 analyses: the constants-excluded rerun and the
//! shortest-cycle-length distribution.
use sparqlog_bench::{analyzed_corpus, banner, HarnessOptions};
use sparqlog_core::report;

fn main() {
    let opts = HarnessOptions::from_args();
    banner("Section 6.1 — constants and shortest cycles", &opts);
    let corpus = analyzed_corpus(&opts);
    println!("{}", report::section61_cycles(&corpus.combined));
}
