//! Regenerates the Section 4.4 numbers: subqueries and projection usage.
use sparqlog_bench::{analyzed_corpus, banner, HarnessOptions};
use sparqlog_core::report;

fn main() {
    let opts = HarnessOptions::from_args();
    banner("Section 4.4 — subqueries and projection", &opts);
    let corpus = analyzed_corpus(&opts);
    println!("{}", report::section44_projection(&corpus.combined));
}
