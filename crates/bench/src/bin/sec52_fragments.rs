//! Regenerates the Section 5.2 fragment shares (CQ / CQF / well-designed / CQOF).
use sparqlog_bench::{analyzed_corpus, banner, HarnessOptions};
use sparqlog_core::report;

fn main() {
    let opts = HarnessOptions::from_args();
    banner("Section 5.2 — query fragments", &opts);
    let corpus = analyzed_corpus(&opts);
    println!("{}", report::section52_fragments(&corpus.combined));
}
