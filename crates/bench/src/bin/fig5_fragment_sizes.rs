//! Regenerates Figure 5 (or Figure 9 with --valid): sizes of CQ-like queries.
use sparqlog_bench::{analyzed_corpus, banner, HarnessOptions};
use sparqlog_core::report;

fn main() {
    let opts = HarnessOptions::from_args();
    banner("Figure 5 / Figure 9 — sizes of CQ-like queries", &opts);
    let corpus = analyzed_corpus(&opts);
    println!("{}", report::figure5_sizes(&corpus.combined));
}
