//! Ablation: the networked analysis service (`sparqlog-serve`) against the
//! in-process fused engine, on a duplicate-heavy synthetic corpus streamed
//! from temp files — plus a production fault drill.
//!
//! Three legs:
//!
//! * **throughput** — a healthy service run (TCP loopback, supervised
//!   worker pool) timed end-to-end (submit → settle → report) against the
//!   in-process fused engine over the same files;
//! * **fault drill** — one job per fault mode (`die`, `wrong-version`,
//!   `truncate`, `abort-mid-stream`, a raw `kill -9` mid-partition, and a
//!   heartbeat-timeout stall), each scoped to a single worker attempt via
//!   the fault flag file; the supervisor must restart and reassign, and
//!   the measured death-to-merge **recovery latency** is printed per mode;
//! * **divergence gate** — every service report (healthy runs on both
//!   populations and every post-recovery report) must be **byte-identical**
//!   to the fused engine's; the binary exits non-zero otherwise, which is
//!   what the CI perf-smoke and service-faults jobs key on.
//!
//! Extra flags (on top of the usual `--scale/--seed/--cap`):
//!
//! * `--fault <mode>` — run only that fault leg (the CI `service-faults`
//!   matrix runs one mode per job), skipping the timed throughput leg;
//! * `--fault-log <path>` — append every leg's structured event lines to
//!   `path` (uploaded as the CI fault-log artifact).

use sparqlog_bench::gate::DivergenceGate;
use sparqlog_bench::{banner, open_file_readers, write_corpus_files, HarnessOptions};
use sparqlog_core::corpus::{analyze_streams_with, FusedOptions};
use sparqlog_core::report::full_report;
use sparqlog_core::Population;
use sparqlog_obs::EventRecord;
use sparqlog_serve::{Client, JobPhase, JobStatus, ServeAddr, ServeConfig, Server, ServerHandle};
use sparqlog_shard::WorkerCommand;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// How many times each log's entries are tiled into its temp file.
const TILE: usize = 4;

/// Timed repeats of the healthy end-to-end leg; the minimum wins.
const REPEATS: usize = 3;

/// How long any single job may take before the drill gives up.
const SETTLE: Duration = Duration::from_secs(300);

/// The fault legs, in drill order.
const FAULT_LEGS: [&str; 6] = [
    "die",
    "wrong-version",
    "truncate",
    "abort-mid-stream",
    "kill-while-serving",
    "heartbeat-timeout",
];

fn base_config(worker: WorkerCommand) -> ServeConfig {
    ServeConfig {
        worker,
        worker_slots: 2,
        heartbeat: Duration::from_millis(50),
        restart_backoff: Duration::from_millis(10),
        ..ServeConfig::default()
    }
}

/// Binds on an ephemeral loopback port and runs the accept loop on a
/// background thread.
fn start_server(
    config: ServeConfig,
) -> (
    ServeAddr,
    ServerHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let server =
        Server::bind(config, &ServeAddr::Tcp("127.0.0.1:0".to_string())).expect("bind server");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run());
    (addr, handle, runner)
}

fn stop_server(handle: ServerHandle, runner: std::thread::JoinHandle<std::io::Result<()>>) {
    handle.stop();
    runner.join().expect("server thread").expect("server run");
}

/// Submits one job and waits for it to settle; returns the final status
/// and the full report text.
fn run_job(
    addr: &ServeAddr,
    population: Population,
    files: &[(String, PathBuf)],
) -> (JobStatus, String) {
    let specs = files
        .iter()
        .map(|(label, path)| (label.clone(), path.display().to_string()))
        .collect();
    let mut client = Client::connect(addr).expect("connect client");
    let (job, _partitions) = client
        .submit(population, Default::default(), specs)
        .expect("submit job");
    let status = client.wait_settled(job, SETTLE).expect("wait settled");
    let report = client.report(job, true).expect("fetch report");
    (status, report.text)
}

/// The fault drill's shared context.
struct Drill<'a> {
    gate: &'a mut DivergenceGate,
    worker: &'a WorkerCommand,
    files: &'a [(String, PathBuf)],
    reference: &'a str,
    scratch: &'a Path,
    fault_log: Option<&'a Path>,
}

impl Drill<'_> {
    /// One fault leg: a server whose worker env injects the fault exactly
    /// once (flag file), one job, and the recovery latency read back from
    /// the `partition-recovered` event. `kill_first_worker` additionally
    /// SIGKILLs the first worker seen on partition 0 (the raw
    /// kill-while-serving leg).
    fn leg(
        &mut self,
        leg: &str,
        fault_env: &[(&str, String)],
        stall_timeout: Option<Duration>,
        kill_first_worker: bool,
    ) {
        let flag = self.scratch.join(format!("fault-{leg}.flag"));
        let _ = std::fs::remove_file(&flag);
        let mut worker = self.worker.clone();
        for (key, value) in fault_env {
            worker = worker.env(*key, value.clone());
        }
        worker = worker.env("SPARQLOG_SHARD_FAULT_FLAG", flag.display().to_string());
        let config = ServeConfig {
            stall_timeout,
            ..base_config(worker)
        };
        let (addr, handle, runner) = start_server(config);

        let killer = kill_first_worker.then(|| {
            let events = handle.events();
            std::thread::spawn(move || {
                let deadline = Instant::now() + SETTLE;
                loop {
                    // Typed journal access: match on parsed fields, not on
                    // the event line's wording.
                    let pid = events.records().iter().find_map(|record| {
                        (record.event() == "worker-start"
                            && record.u64("partition") == Some(0)
                            && record.u64("attempt") == Some(0))
                        .then(|| record.u64("pid"))
                        .flatten()
                    });
                    if let Some(pid) = pid {
                        // The delay fault holds this worker mid-stream;
                        // SIGKILL it from outside, like an OOM killer would.
                        let _ = std::process::Command::new("kill")
                            .args(["-9", &pid.to_string()])
                            .status();
                        return;
                    }
                    if Instant::now() >= deadline {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
            })
        });

        let (status, report) = run_job(&addr, Population::Unique, self.files);
        if let Some(killer) = killer {
            killer.join().expect("killer thread");
        }
        self.gate.require(
            status.phase == JobPhase::Complete,
            &format!("fault leg '{leg}' did not complete: {}", status.error),
        );
        self.gate.require(
            status.restarts >= 1,
            &format!("fault leg '{leg}': the injected fault never fired"),
        );
        self.gate.compare(
            &format!("service report differs from fused after '{leg}' recovery"),
            self.reference,
            &report,
        );

        let events = handle.events().snapshot();
        if let Some(path) = self.fault_log {
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let _ = writeln!(file, "== fault leg: {leg} ==");
                for line in &events {
                    let _ = writeln!(file, "{line}");
                }
                let _ = writeln!(file);
            }
        }
        let recovered = events.iter().find_map(|line| {
            let record = EventRecord::parse(line).ok()?;
            (record.event() == "partition-recovered")
                .then(|| record.u64("latency_ms"))
                .flatten()
        });
        match recovered {
            Some(latency) => println!(
                "  {leg:<22} recovered in {latency:>6} ms ({} restart{})",
                status.restarts,
                if status.restarts == 1 { "" } else { "s" }
            ),
            None => {
                self.gate.require(
                    false,
                    &format!("fault leg '{leg}': no partition-recovered event"),
                );
            }
        }
        stop_server(handle, runner);
    }
}

fn main() {
    let opts = HarnessOptions::from_args();
    let args: Vec<String> = std::env::args().collect();
    let mut only_fault: Option<String> = None;
    let mut fault_log: Option<PathBuf> = None;
    for i in 1..args.len() {
        match args[i].as_str() {
            "--fault" => only_fault = args.get(i + 1).cloned(),
            "--fault-log" => fault_log = args.get(i + 1).map(PathBuf::from),
            _ => {}
        }
    }
    if let Some(mode) = &only_fault {
        if !FAULT_LEGS.contains(&mode.as_str()) {
            eprintln!(
                "ablation_serve: unknown fault mode '{mode}' (expected one of {})",
                FAULT_LEGS.join(", ")
            );
            std::process::exit(2);
        }
    }
    banner("ablation: networked analysis service", &opts);

    let worker = match WorkerCommand::resolve_default() {
        Ok(worker) => worker,
        Err(error) => {
            eprintln!("ablation_serve: {error}");
            std::process::exit(1);
        }
    };

    let dir = std::env::temp_dir().join(format!("sparqlog-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp corpus dir");
    let (files, total_entries) = write_corpus_files(&opts, &dir, TILE);

    // -- In-process reference (also the timed baseline). ---------------------
    let timing = only_fault.is_none();
    let mut fused_time = f64::INFINITY;
    let mut fused_unique = None;
    for _ in 0..if timing { REPEATS } else { 1 } {
        let start = Instant::now();
        let fused = analyze_streams_with(
            open_file_readers(&files),
            Population::Unique,
            FusedOptions::default(),
        )
        .expect("fused reference run");
        fused_time = fused_time.min(start.elapsed().as_secs_f64());
        fused_unique = Some(fused);
    }
    let fused_unique = fused_unique.expect("at least one repeat");
    let reference_unique = full_report(&fused_unique.corpus);
    let counts = &fused_unique.corpus.combined.counts;
    println!(
        "corpus: {} logs, {} entries on disk, {} valid, {} distinct canonical forms",
        files.len(),
        total_entries,
        counts.valid,
        counts.unique
    );

    let mut gate = DivergenceGate::new();

    // -- Timed leg: healthy service end-to-end, both populations gated. ------
    if timing {
        let (addr, handle, runner) = start_server(base_config(worker.clone()));
        let mut serve_time = f64::INFINITY;
        for _ in 0..REPEATS {
            let start = Instant::now();
            let (status, report) = run_job(&addr, Population::Unique, &files);
            serve_time = serve_time.min(start.elapsed().as_secs_f64());
            gate.require(
                status.phase == JobPhase::Complete,
                &format!("healthy Unique service job failed: {}", status.error),
            );
            gate.compare(
                "service report differs from fused (Unique population)",
                &reference_unique,
                &report,
            );
        }
        let reference_valid = full_report(
            &analyze_streams_with(
                open_file_readers(&files),
                Population::Valid,
                FusedOptions::default(),
            )
            .expect("fused Valid reference")
            .corpus,
        );
        let (status, report) = run_job(&addr, Population::Valid, &files);
        gate.require(
            status.phase == JobPhase::Complete,
            &format!("healthy Valid service job failed: {}", status.error),
        );
        gate.compare(
            "service report differs from fused (Valid population)",
            &reference_valid,
            &report,
        );
        stop_server(handle, runner);

        println!(
            "\n{:<44} {:>10} {:>14}",
            "end-to-end (Unique population)", "time", "entries/s"
        );
        println!(
            "{:<44} {:>8.2}ms {:>14.0}",
            "fused (in-process)",
            fused_time * 1e3,
            total_entries as f64 / fused_time
        );
        println!(
            "{:<44} {:>8.2}ms {:>14.0}",
            "service (submit \u{2192} settle \u{2192} report)",
            serve_time * 1e3,
            total_entries as f64 / serve_time
        );
    }

    // -- Fault drill: every mode recovers to a byte-identical report. --------
    println!("\nfault recovery (report byte-identical after each):");
    let mut drill = Drill {
        gate: &mut gate,
        worker: &worker,
        files: &files,
        reference: &reference_unique,
        scratch: &dir,
        fault_log: fault_log.as_deref(),
    };
    let scoped = |mode: &str, shard: &str| {
        vec![
            ("SPARQLOG_SHARD_FAULT", mode.to_string()),
            ("SPARQLOG_SHARD_FAULT_SHARD", shard.to_string()),
        ]
    };
    let wants = |leg: &str| only_fault.as_deref().is_none_or(|only| only == leg);
    for mode in ["die", "wrong-version", "truncate", "abort-mid-stream"] {
        if wants(mode) {
            drill.leg(mode, &scoped(mode, "1"), None, false);
        }
    }
    if wants("kill-while-serving") {
        // Raw SIGKILL while the worker is held mid-stream by the delay
        // fault (heartbeats keep flowing until the kill).
        let mut env = scoped("delay", "0");
        env.push(("SPARQLOG_SHARD_FAULT_DELAY_MS", "3000".to_string()));
        drill.leg("kill-while-serving", &env, None, true);
    }
    if wants("heartbeat-timeout") {
        // A stalled worker (header, then silence — no heartbeats) only
        // dies by the supervisor's stall timeout.
        drill.leg(
            "heartbeat-timeout",
            &scoped("stall", "0"),
            Some(Duration::from_millis(500)),
            false,
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
    gate.finish(
        "service reports are byte-identical to the in-process fused engine's \
         on both populations and after every fault-recovery drill",
    );
}
