//! Ablation: the fused ingest→analyze streaming engine against the staged
//! ingest-then-analyze pipeline, on a duplicate-heavy synthetic corpus
//! streamed from temp files.
//!
//! Both contenders read the same on-disk logs through
//! [`FileLogReader`](sparqlog_core::corpus::FileLogReader)s:
//!
//! * **staged** — `ingest_streams` materializes every valid query's AST in
//!   `IngestedLog::valid_queries`, then `analyze_cached` folds the corpus
//!   through the fingerprint-keyed cache (the PR-2/PR-3 production path,
//!   now the differential baseline);
//! * **fused** — `analyze_streams` analyses each batch as it parses:
//!   duplicates fold occurrence-weighted, ASTs die inside their batch, and
//!   the two phases share one worker pool.
//!
//! The binary prints the end-to-end speedup (target ≥ 1.3×), the
//! peak-residency deltas from the counting allocator (build with
//! `--features alloc-stats` for real numbers — the fused peak is bounded by
//! in-flight batches + distinct analyses, not by corpus size), and **exits
//! non-zero if the fused and staged corpus reports differ by a single byte
//! on either population at 1, 2 or 8 workers**.

use sparqlog_bench::gate::DivergenceGate;
use sparqlog_bench::{
    alloc_stats, banner, open_file_readers, stats_banner, write_corpus_files, HarnessOptions,
};
use sparqlog_core::analysis::{CorpusAnalysis, EngineOptions, Population};
use sparqlog_core::cache::AnalysisCache;
use sparqlog_core::corpus::{
    analyze_streams_cached, ingest_streams_with, FusedAnalysis, FusedOptions, StreamOptions,
};
use sparqlog_core::report::full_report;
use std::path::PathBuf;
use std::time::Instant;

/// How many times each log's entries are tiled into its temp file: every
/// query occurs at least this many times, matching the duplication regime
/// the source paper reports for real logs.
const TILE: usize = 6;

/// The measured runs per contender; the minimum wall-clock wins.
const REPEATS: usize = 3;

/// One staged end-to-end run: stream-ingest from disk (ASTs retained), then
/// analyse through a fresh fingerprint-keyed cache.
fn run_staged(
    files: &[(String, PathBuf)],
    population: Population,
    workers: usize,
) -> CorpusAnalysis {
    let logs = ingest_streams_with(
        open_file_readers(files),
        StreamOptions {
            recovery: Default::default(),
            workers,
            ..StreamOptions::default()
        },
    )
    .expect("staged ingestion reads the temp files");
    let cache = AnalysisCache::new();
    let (analysis, _) = CorpusAnalysis::analyze_cached(
        &logs,
        population,
        EngineOptions {
            recovery: Default::default(),
            workers,
            ..EngineOptions::default()
        },
        &cache,
    );
    analysis
}

/// One fused end-to-end run: parse, fingerprint, dedup and fold in a single
/// pass over the same temp files.
fn run_fused(files: &[(String, PathBuf)], population: Population, workers: usize) -> FusedAnalysis {
    let cache = AnalysisCache::new();
    analyze_streams_cached(
        open_file_readers(files),
        population,
        FusedOptions {
            recovery: Default::default(),
            workers,
            ..FusedOptions::default()
        },
        &cache,
    )
    .expect("fused engine reads the temp files")
}

/// Times `run` over [`REPEATS`] cold runs; returns the last result, the
/// minimum wall-clock and the peak live bytes above the pre-run baseline
/// (0 without `alloc-stats`).
fn measure<T>(mut run: impl FnMut() -> T) -> (T, f64, u64) {
    let mut best = f64::INFINITY;
    let mut peak = 0u64;
    let mut result = None;
    for _ in 0..REPEATS {
        alloc_stats::reset_peak();
        let baseline = alloc_stats::snapshot().unwrap_or_default();
        let start = Instant::now();
        let out = run();
        best = best.min(start.elapsed().as_secs_f64());
        let after = alloc_stats::snapshot().unwrap_or_default();
        peak = peak.max(after.peak_above(&baseline));
        result = Some(out);
    }
    (result.expect("at least one repeat"), best, peak)
}

fn main() {
    let opts = HarnessOptions::from_args();
    banner("ablation: fused ingest→analyze streaming engine", &opts);

    let dir = std::env::temp_dir().join(format!("sparqlog-fused-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp corpus dir");
    let (files, total_entries) = write_corpus_files(&opts, &dir, TILE);

    // -- Timed leg: end-to-end on the Valid ("all") population. -------------
    let (staged_valid, staged_time, staged_peak) =
        measure(|| run_staged(&files, Population::Valid, 0));
    let (fused_valid, fused_time, fused_peak) = measure(|| run_fused(&files, Population::Valid, 0));
    let counts = &fused_valid.corpus.combined.counts;
    println!(
        "corpus: {} entries on disk, {} valid, {} distinct canonical forms, \
         mean occurrence rate {:.2}x",
        total_entries,
        counts.valid,
        counts.unique,
        counts.valid as f64 / counts.unique.max(1) as f64
    );
    println!(
        "\n{:<52} {:>10} {:>14}",
        "end-to-end ingest+analyze (Valid population)", "time", "entries/s"
    );
    println!(
        "{:<52} {:>8.2}ms {:>14.0}",
        "staged (materialize ASTs, then analyze)",
        staged_time * 1e3,
        total_entries as f64 / staged_time
    );
    println!(
        "{:<52} {:>8.2}ms {:>14.0}",
        "fused (analyze each batch as it parses)",
        fused_time * 1e3,
        total_entries as f64 / fused_time
    );
    let speedup = staged_time / fused_time;
    println!(
        "end-to-end speedup: {:.2}x (target >= 1.3x: {})\n",
        speedup,
        if speedup >= 1.3 { "PASS" } else { "MISS" }
    );
    println!("{}\n", stats_banner(&fused_valid.stats));

    // -- Peak-residency leg. -------------------------------------------------
    let fused_stats = &fused_valid.fused;
    println!(
        "fused residency: {} batches, peak {} raw entries in flight, {} distinct analyses kept",
        fused_stats.batches, fused_stats.peak_inflight_entries, fused_stats.distinct_forms
    );
    if alloc_stats::enabled() {
        println!(
            "peak live bytes above baseline: staged {:.2} MiB, fused {:.2} MiB ({:.1}x less) — \
             the fused peak is bounded by in-flight batches + distinct analyses, \
             the staged peak by the whole corpus",
            staged_peak as f64 / (1 << 20) as f64,
            fused_peak as f64 / (1 << 20) as f64,
            staged_peak as f64 / fused_peak.max(1) as f64
        );
    } else {
        println!(
            "peak live bytes: unavailable (rebuild with `--features alloc-stats` \
             for allocator-measured residency)"
        );
    }

    // -- Differential gate: byte-identical reports, both populations,
    //    1/2/8 workers. -------------------------------------------------------
    let mut gate = DivergenceGate::new();
    let staged_unique = run_staged(&files, Population::Unique, 0);
    for (population, reference) in [
        (Population::Valid, &staged_valid),
        (Population::Unique, &staged_unique),
    ] {
        let reference_report = full_report(reference);
        for workers in [1, 2, 8] {
            let fused = run_fused(&files, population, workers);
            gate.compare(
                &format!("fused report differs on {population:?} at {workers} workers"),
                &reference_report,
                &full_report(&fused.corpus),
            );
        }
    }
    gate.compare(
        "timed fused run differs from the staged report",
        &full_report(&staged_valid),
        &full_report(&fused_valid.corpus),
    );

    let _ = std::fs::remove_dir_all(&dir);
    gate.finish(
        "fused and staged corpus reports are byte-identical on both populations \
         at 1/2/8 workers",
    );
}
