//! Ablation: the fused ingest→analyze streaming engine against the staged
//! ingest-then-analyze pipeline, on a duplicate-heavy synthetic corpus
//! streamed from temp files.
//!
//! Both contenders read the same on-disk logs through [`FileLogReader`]s:
//!
//! * **staged** — `ingest_streams` materializes every valid query's AST in
//!   `IngestedLog::valid_queries`, then `analyze_cached` folds the corpus
//!   through the fingerprint-keyed cache (the PR-2/PR-3 production path,
//!   now the differential baseline);
//! * **fused** — `analyze_streams` analyses each batch as it parses:
//!   duplicates fold occurrence-weighted, ASTs die inside their batch, and
//!   the two phases share one worker pool.
//!
//! The binary prints the end-to-end speedup (target ≥ 1.3×), the
//! peak-residency deltas from the counting allocator (build with
//! `--features alloc-stats` for real numbers — the fused peak is bounded by
//! in-flight batches + distinct analyses, not by corpus size), and **exits
//! non-zero if the fused and staged corpus reports differ by a single byte
//! on either population at 1, 2 or 8 workers**.

use sparqlog_bench::{alloc_stats, banner, raw_corpus, stats_banner, HarnessOptions};
use sparqlog_core::analysis::{CorpusAnalysis, EngineOptions, Population};
use sparqlog_core::cache::AnalysisCache;
use sparqlog_core::corpus::{
    analyze_streams_cached, ingest_streams_with, FileLogReader, FusedAnalysis, FusedOptions,
    LogReader, StreamOptions,
};
use sparqlog_core::report::full_report;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// How many times each log's entries are tiled into its temp file: every
/// query occurs at least this many times, matching the duplication regime
/// the source paper reports for real logs.
const TILE: usize = 6;

/// The measured runs per contender; the minimum wall-clock wins.
const REPEATS: usize = 3;

/// Writes the duplicate-heavy corpus to one temp log file per dataset and
/// returns `(label, path)` pairs plus the total entry count.
fn write_corpus(opts: &HarnessOptions, dir: &std::path::Path) -> (Vec<(String, PathBuf)>, u64) {
    let mut files = Vec::new();
    let mut total = 0u64;
    for (index, log) in raw_corpus(opts).into_iter().enumerate() {
        // Labels are display strings (may contain `/` or spaces); the file
        // name only needs to be unique — the label rides in the reader.
        let stem: String = log
            .label
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        let path = dir.join(format!("{index:02}-{stem}.log"));
        let file = std::fs::File::create(&path).expect("create temp log file");
        let mut writer = std::io::BufWriter::new(file);
        for _ in 0..TILE {
            for entry in &log.entries {
                // Synthesized queries are single-line; keep the invariant
                // explicit for one-entry-per-line streaming.
                debug_assert!(!entry.contains('\n'));
                writeln!(writer, "{entry}").expect("write temp log line");
            }
        }
        writer.flush().expect("flush temp log");
        total += (log.entries.len() * TILE) as u64;
        files.push((log.label, path));
    }
    (files, total)
}

fn open_readers(files: &[(String, PathBuf)]) -> Vec<Box<dyn LogReader + 'static>> {
    files
        .iter()
        .map(|(label, path)| {
            Box::new(FileLogReader::open(label.clone(), path).expect("open temp log"))
                as Box<dyn LogReader + 'static>
        })
        .collect()
}

/// One staged end-to-end run: stream-ingest from disk (ASTs retained), then
/// analyse through a fresh fingerprint-keyed cache.
fn run_staged(
    files: &[(String, PathBuf)],
    population: Population,
    workers: usize,
) -> CorpusAnalysis {
    let logs = ingest_streams_with(
        open_readers(files),
        StreamOptions {
            workers,
            ..StreamOptions::default()
        },
    )
    .expect("staged ingestion reads the temp files");
    let cache = AnalysisCache::new();
    let (analysis, _) = CorpusAnalysis::analyze_cached(
        &logs,
        population,
        EngineOptions {
            workers,
            ..EngineOptions::default()
        },
        &cache,
    );
    analysis
}

/// One fused end-to-end run: parse, fingerprint, dedup and fold in a single
/// pass over the same temp files.
fn run_fused(files: &[(String, PathBuf)], population: Population, workers: usize) -> FusedAnalysis {
    let cache = AnalysisCache::new();
    analyze_streams_cached(
        open_readers(files),
        population,
        FusedOptions {
            workers,
            ..FusedOptions::default()
        },
        &cache,
    )
    .expect("fused engine reads the temp files")
}

/// Times `run` over [`REPEATS`] cold runs; returns the last result, the
/// minimum wall-clock and the peak live bytes above the pre-run baseline
/// (0 without `alloc-stats`).
fn measure<T>(mut run: impl FnMut() -> T) -> (T, f64, u64) {
    let mut best = f64::INFINITY;
    let mut peak = 0u64;
    let mut result = None;
    for _ in 0..REPEATS {
        alloc_stats::reset_peak();
        let baseline = alloc_stats::snapshot().unwrap_or_default();
        let start = Instant::now();
        let out = run();
        best = best.min(start.elapsed().as_secs_f64());
        let after = alloc_stats::snapshot().unwrap_or_default();
        peak = peak.max(after.peak_above(&baseline));
        result = Some(out);
    }
    (result.expect("at least one repeat"), best, peak)
}

fn main() {
    let opts = HarnessOptions::from_args();
    banner("ablation: fused ingest→analyze streaming engine", &opts);

    let dir = std::env::temp_dir().join(format!("sparqlog-fused-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp corpus dir");
    let (files, total_entries) = write_corpus(&opts, &dir);

    // -- Timed leg: end-to-end on the Valid ("all") population. -------------
    let (staged_valid, staged_time, staged_peak) =
        measure(|| run_staged(&files, Population::Valid, 0));
    let (fused_valid, fused_time, fused_peak) = measure(|| run_fused(&files, Population::Valid, 0));
    let counts = &fused_valid.corpus.combined.counts;
    println!(
        "corpus: {} entries on disk, {} valid, {} distinct canonical forms, \
         mean occurrence rate {:.2}x",
        total_entries,
        counts.valid,
        counts.unique,
        counts.valid as f64 / counts.unique.max(1) as f64
    );
    println!(
        "\n{:<52} {:>10} {:>14}",
        "end-to-end ingest+analyze (Valid population)", "time", "entries/s"
    );
    println!(
        "{:<52} {:>8.2}ms {:>14.0}",
        "staged (materialize ASTs, then analyze)",
        staged_time * 1e3,
        total_entries as f64 / staged_time
    );
    println!(
        "{:<52} {:>8.2}ms {:>14.0}",
        "fused (analyze each batch as it parses)",
        fused_time * 1e3,
        total_entries as f64 / fused_time
    );
    let speedup = staged_time / fused_time;
    println!(
        "end-to-end speedup: {:.2}x (target >= 1.3x: {})\n",
        speedup,
        if speedup >= 1.3 { "PASS" } else { "MISS" }
    );
    println!("{}\n", stats_banner(&fused_valid.stats));

    // -- Peak-residency leg. -------------------------------------------------
    let fused_stats = &fused_valid.fused;
    println!(
        "fused residency: {} batches, peak {} raw entries in flight, {} distinct analyses kept",
        fused_stats.batches, fused_stats.peak_inflight_entries, fused_stats.distinct_forms
    );
    if alloc_stats::enabled() {
        println!(
            "peak live bytes above baseline: staged {:.2} MiB, fused {:.2} MiB ({:.1}x less) — \
             the fused peak is bounded by in-flight batches + distinct analyses, \
             the staged peak by the whole corpus",
            staged_peak as f64 / (1 << 20) as f64,
            fused_peak as f64 / (1 << 20) as f64,
            staged_peak as f64 / fused_peak.max(1) as f64
        );
    } else {
        println!(
            "peak live bytes: unavailable (rebuild with `--features alloc-stats` \
             for allocator-measured residency)"
        );
    }

    // -- Differential gate: byte-identical reports, both populations,
    //    1/2/8 workers. -------------------------------------------------------
    let mut diverged = false;
    let staged_unique = run_staged(&files, Population::Unique, 0);
    for (population, reference) in [
        (Population::Valid, &staged_valid),
        (Population::Unique, &staged_unique),
    ] {
        let reference_report = full_report(reference);
        for workers in [1, 2, 8] {
            let fused = run_fused(&files, population, workers);
            if full_report(&fused.corpus) != reference_report {
                eprintln!(
                    "DIVERGENCE: fused report differs on {population:?} at {workers} workers"
                );
                diverged = true;
            }
        }
    }
    if full_report(&fused_valid.corpus) != full_report(&staged_valid) {
        eprintln!("DIVERGENCE: timed fused run differs from the staged report");
        diverged = true;
    }

    let _ = std::fs::remove_dir_all(&dir);
    if diverged {
        eprintln!("differential check: FAILED");
        std::process::exit(1);
    }
    println!(
        "\ndifferential check: OK — fused and staged corpus reports are byte-identical \
         on both populations at 1/2/8 workers"
    );
}
