//! Regenerates Table 2 (or Table 7 with --valid): keyword counts in queries.
use sparqlog_bench::{analyzed_corpus, banner, HarnessOptions};
use sparqlog_core::report;

fn main() {
    let opts = HarnessOptions::from_args();
    banner("Table 2 / Table 7 — keyword counts", &opts);
    let corpus = analyzed_corpus(&opts);
    println!("{}", report::table2_keywords(&corpus.combined));
}
