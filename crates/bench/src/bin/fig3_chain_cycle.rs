//! Regenerates Figure 3: average runtime of chain and cycle workloads of
//! lengths 3–8 on the two engines (binary-join ≈ PostgreSQL, trie-join ≈
//! Blazegraph), plus the per-length timeout counts for cycle workloads on the
//! binary-join engine.
//!
//! Flags: `--nodes <n>` graph size (default 20000), `--queries <n>` queries
//! per workload (default 10), `--timeout-ms <n>` per-query timeout
//! (default 500), `--max-len <n>` largest workload length (default 8),
//! `--count` to enumerate all answers (SELECT semantics) instead of ASK.

use sparqlog_gmark::{
    generate_graph, generate_workload, GraphConfig, QueryShape, Schema, WorkloadConfig,
};
use sparqlog_store::{BinaryJoinEngine, QueryEngine, QueryMode, TrieJoinEngine};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str, default: u64| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let nodes = get("--nodes", 20_000) as usize;
    let queries = get("--queries", 10) as usize;
    let timeout = Duration::from_millis(get("--timeout-ms", 500));
    let max_len = get("--max-len", 8) as usize;
    let seed = get("--seed", 42);
    let mode = if args.iter().any(|a| a == "--count") {
        QueryMode::Count
    } else {
        QueryMode::Ask
    };

    println!("== sparqlog :: Figure 3 — chain vs cycle workloads on two engines ==");
    println!(
        "Bib graph with {nodes} nodes, {queries} queries per workload, per-query timeout {:?}, {} semantics",
        timeout,
        match mode {
            QueryMode::Ask => "ASK",
            QueryMode::Count => "SELECT/count",
        }
    );
    println!();

    let schema = Schema::bib();
    let graph = generate_graph(&schema, GraphConfig { nodes, seed });
    let store = graph.to_store();
    println!("generated {} triples", store.len());
    println!();

    let binary = BinaryJoinEngine::new();
    let trie = TrieJoinEngine::new();

    println!(
        "{:<6} {:>16} {:>16} {:>16} {:>16} {:>10}",
        "W-k", "chainBG(ns)", "chainPG(ns)", "cycleBG(ns)", "cyclePG(ns)", "cyclePG t/o"
    );
    for len in 3..=max_len {
        let chain_wl = generate_workload(
            &schema,
            WorkloadConfig {
                shape: QueryShape::Chain,
                length: len,
                count: queries,
                seed: seed + len as u64,
            },
        );
        let cycle_wl = generate_workload(
            &schema,
            WorkloadConfig {
                shape: QueryShape::Cycle,
                length: len,
                count: queries,
                seed: seed + 100 + len as u64,
            },
        );
        let run = |engine: &dyn QueryEngine, wl: &sparqlog_gmark::Workload| -> (u64, usize) {
            let mut total_ns = 0u64;
            let mut timeouts = 0usize;
            for q in &wl.queries {
                let out = engine.evaluate(&store, q, mode, timeout);
                // Like the paper, timed-out queries are accounted with the
                // full timeout duration.
                total_ns += if out.timed_out {
                    timeout.as_nanos() as u64
                } else {
                    out.elapsed_ns
                };
                timeouts += usize::from(out.timed_out);
            }
            (total_ns / wl.queries.len().max(1) as u64, timeouts)
        };
        let (chain_bg, _) = run(&trie, &chain_wl);
        let (chain_pg, _) = run(&binary, &chain_wl);
        let (cycle_bg, _) = run(&trie, &cycle_wl);
        let (cycle_pg, cycle_pg_to) = run(&binary, &cycle_wl);
        println!(
            "{:<6} {:>16} {:>16} {:>16} {:>16} {:>9}%",
            format!("W-{len}"),
            chain_bg,
            chain_pg,
            cycle_bg,
            cycle_pg,
            cycle_pg_to * 100 / queries.max(1)
        );
    }
    println!();
    println!("chainBG/cycleBG: trie-join (worst-case-optimal) engine; chainPG/cyclePG: binary-join engine.");
}
