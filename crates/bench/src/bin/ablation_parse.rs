//! Ablation: the zero-copy arena parse stage against the owned-AST
//! materializing stage, on a duplicate-heavy synthetic corpus.
//!
//! Both contenders tokenize and parse the same entries with the same SWAR
//! lexer; they differ in what each parse *materializes*:
//!
//! * **owned** — [`parse_query`] builds the borrowed AST in the thread-local
//!   arena and converts it to the heap-owned `ast::Query` form (`String`s
//!   and `Vec`s per node), then fingerprints the owned tree — the shape of
//!   the pre-arena pipeline, and what the staged engine still retains;
//! * **zero-copy** — the caller resets a bump [`Arena`] per entry,
//!   [`parse_query_in`] allocates every node and string slice into it, and
//!   the fingerprint streams straight off the borrowed tree — the fused
//!   engine's hot loop, whose steady state touches the global allocator only
//!   when the arena grows (which stops after the first few entries).
//!
//! The binary prints the parse-stage speedup (target ≥ 1.3×) and the
//! allocator-traffic ratio from the counting allocator (build with
//! `--features alloc-stats`; target ≥ 10× fewer bytes per steady-state
//! pass), and **exits non-zero** if the two paths fingerprint a single entry
//! differently, or if the fused engine's full report (arenas on) differs by
//! a byte from the staged pipeline's on either population at 1, 2 or 8
//! workers.

use sparqlog_bench::gate::DivergenceGate;
use sparqlog_bench::{alloc_stats, banner, corpus_readers, raw_corpus, HarnessOptions};
use sparqlog_core::analysis::{CorpusAnalysis, Population};
use sparqlog_core::corpus::{analyze_streams_with, ingest_streams, FusedOptions};
use sparqlog_core::report::full_report;
use sparqlog_parser::{
    canonical_fingerprint_of, canonical_fingerprint_of_ref, parse_query, parse_query_in, Arena,
};
use std::time::Instant;

/// How many times the corpus entries are tiled into the parse-stage input:
/// enough passes that the arena and the thread-local state reach steady
/// state and per-entry costs dominate setup.
const TILE: usize = 4;

/// The measured runs per contender; the minimum wall-clock and the minimum
/// allocator traffic win (later runs parse with warm arenas).
const REPEATS: usize = 3;

/// Parses every entry into the heap-owned AST and fingerprints the owned
/// tree. XOR-folding the fingerprints keeps the work observable.
fn parse_owned(entries: &[String]) -> u128 {
    let mut acc = 0u128;
    for entry in entries {
        if let Ok(query) = parse_query(entry) {
            acc ^= canonical_fingerprint_of(&query);
        }
    }
    acc
}

/// Parses every entry into the bump arena (reset per entry) and fingerprints
/// the borrowed tree; nothing is materialized on the heap.
fn parse_zero_copy(entries: &[String], arena: &mut Arena) -> u128 {
    let mut acc = 0u128;
    for entry in entries {
        arena.reset();
        if let Ok(query) = parse_query_in(entry, arena) {
            acc ^= canonical_fingerprint_of_ref(&query);
        }
    }
    acc
}

/// Times `run` over [`REPEATS`] runs; returns the last result, the minimum
/// wall-clock, and the minimum bytes/allocations the run pushed through the
/// global allocator (0 without `alloc-stats`).
fn measure<T>(mut run: impl FnMut() -> T) -> (T, f64, u64, u64) {
    let mut best = f64::INFINITY;
    let mut bytes = u64::MAX;
    let mut allocations = u64::MAX;
    let mut result = None;
    for _ in 0..REPEATS {
        let baseline = alloc_stats::snapshot().unwrap_or_default();
        let start = Instant::now();
        let out = run();
        best = best.min(start.elapsed().as_secs_f64());
        let after = alloc_stats::snapshot().unwrap_or_default();
        bytes = bytes.min(after.allocated_since(&baseline));
        allocations = allocations.min(after.allocations - baseline.allocations);
        result = Some(out);
    }
    (
        result.expect("at least one repeat"),
        best,
        bytes,
        allocations,
    )
}

fn main() {
    let opts = HarnessOptions::from_args();
    banner("ablation: zero-copy arena parse stage", &opts);

    // -- Parse-stage leg: same entries, owned vs zero-copy. -----------------
    let mut entries = Vec::new();
    for log in raw_corpus(&opts) {
        for _ in 0..TILE {
            entries.extend(log.entries.iter().cloned());
        }
    }
    let (owned_acc, owned_time, owned_bytes, owned_allocations) = measure(|| parse_owned(&entries));
    let mut arena = Arena::new();
    let (zero_acc, zero_time, zero_bytes, zero_allocations) =
        measure(|| parse_zero_copy(&entries, &mut arena));

    println!(
        "parse stage: {} entries per pass ({} distinct tiled {}x)\n",
        entries.len(),
        entries.len() / TILE,
        TILE
    );
    println!(
        "{:<52} {:>10} {:>14}",
        "parse + fingerprint (single core)", "time", "entries/s"
    );
    println!(
        "{:<52} {:>8.2}ms {:>14.0}",
        "owned (arena parse, then to_owned per entry)",
        owned_time * 1e3,
        entries.len() as f64 / owned_time
    );
    println!(
        "{:<52} {:>8.2}ms {:>14.0}",
        "zero-copy (arena reset per entry, borrowed AST)",
        zero_time * 1e3,
        entries.len() as f64 / zero_time
    );
    let speedup = owned_time / zero_time;
    println!(
        "parse-stage speedup: {:.2}x (target >= 1.3x: {})\n",
        speedup,
        if speedup >= 1.3 { "PASS" } else { "MISS" }
    );

    if alloc_stats::enabled() {
        let ratio = owned_bytes as f64 / zero_bytes.max(1) as f64;
        println!(
            "allocator traffic per pass: owned {:.2} MiB in {} allocations, \
             zero-copy {:.2} KiB in {} allocations — {:.0}x less (target >= 10x: {})",
            owned_bytes as f64 / (1 << 20) as f64,
            owned_allocations,
            zero_bytes as f64 / (1 << 10) as f64,
            zero_allocations,
            ratio,
            if ratio >= 10.0 { "PASS" } else { "MISS" }
        );
    } else {
        println!(
            "allocator traffic: unavailable (rebuild with `--features alloc-stats` \
             for allocator-measured numbers)"
        );
    }

    // -- Differential gate. --------------------------------------------------
    let mut gate = DivergenceGate::new();
    gate.require(
        owned_acc == zero_acc,
        "owned and zero-copy parses fingerprint the corpus differently",
    );

    // Full reports with arenas on: the fused engine (per-worker arenas,
    // borrowed analyses) against the staged pipeline (owned ASTs), both
    // populations, 1/2/8 workers. The Valid-population runs double as the
    // first multi-core wall-clock scaling sample (informational — thread
    // spawn and the batch mutex dominate at this corpus scale).
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut scaling: Vec<(usize, f64, u64)> = Vec::new();
    for population in [Population::Valid, Population::Unique] {
        let logs = ingest_streams(corpus_readers(raw_corpus(&opts)))
            .expect("in-memory ingestion cannot fail");
        let reference = full_report(&CorpusAnalysis::analyze(&logs, population));
        for workers in [1, 2, 8] {
            let readers = corpus_readers(raw_corpus(&opts));
            let start = Instant::now();
            let fused = analyze_streams_with(
                readers,
                population,
                FusedOptions {
                    recovery: Default::default(),
                    workers,
                    ..FusedOptions::default()
                },
            )
            .expect("in-memory streams cannot fail");
            let elapsed = start.elapsed().as_secs_f64();
            gate.compare(
                &format!("fused report differs on {population:?} at {workers} workers"),
                &reference,
                &full_report(&fused.corpus),
            );
            if population == Population::Valid {
                scaling.push((workers, elapsed, fused.corpus.combined.counts.valid));
            }
        }
    }
    println!("\nfused end-to-end wall clock by worker count ({cores} cores available, arenas on):");
    for &(workers, elapsed, valid) in &scaling {
        println!(
            "  {workers} workers: {:>8.2}ms ({:>10.0} valid entries/s)",
            elapsed * 1e3,
            valid as f64 / elapsed
        );
    }

    gate.finish(
        "owned and zero-copy parses agree on every fingerprint, and fused \
         reports are byte-identical to staged on both populations at 1/2/8 workers",
    );
}
