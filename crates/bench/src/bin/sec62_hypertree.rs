//! Regenerates the Section 6.2 hypertree-width results for variable-predicate
//! CQOF queries.
use sparqlog_bench::{analyzed_corpus, banner, HarnessOptions};
use sparqlog_core::report;

fn main() {
    let opts = HarnessOptions::from_args();
    banner("Section 6.2 — hypertree width", &opts);
    let corpus = analyzed_corpus(&opts);
    println!("{}", report::section62_hypertree(&corpus.combined));
}
