//! Regenerates Table 6: streak-length histograms for three single-day DBpedia
//! logs (2014, 2015, 2016), using window size 30 and a 25 % similarity
//! threshold exactly as in Section 8 of the paper.
//!
//! Extra flags (besides the common harness flags): `--entries <n>` sets the
//! size of each single-day log (default 4000), `--window <n>` the streak
//! window (default 30).

use sparqlog_bench::{banner, HarnessOptions};
use sparqlog_core::report;
use sparqlog_streaks::{detect_streaks, StreakConfig, StreakHistogram};
use sparqlog_synth::{generate_single_day_log, Dataset};

fn main() {
    let opts = HarnessOptions::from_args();
    banner("Table 6 — streaks in single-day DBpedia logs", &opts);

    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str, default: u64| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let entries = get("--entries", 4_000);
    let window = get("--window", 30) as usize;

    let config = StreakConfig {
        window,
        threshold: 0.25,
    };
    let mut histograms = Vec::new();
    for (label, dataset, seed) in [
        ("#DBP'14", Dataset::DBpedia14, opts.seed),
        ("#DBP'15", Dataset::DBpedia15, opts.seed + 1),
        ("#DBP'16", Dataset::DBpedia16, opts.seed + 2),
    ] {
        let log = generate_single_day_log(dataset, entries, seed);
        let streaks = detect_streaks(&log.entries, config);
        histograms.push((label.to_string(), StreakHistogram::from_streaks(&streaks)));
    }
    println!("{}", report::table6_streaks(&histograms));
    println!(
        "(window size {window}, similarity threshold 25%, {entries} entries per single-day log)"
    );
}
