//! Ablation: multi-process sharded analysis (coordinator + N
//! `sparqlog-shard-worker` processes) against the single-process fused
//! engine, on a duplicate-heavy synthetic corpus streamed from temp files.
//!
//! Both contenders read the same on-disk logs:
//!
//! * **fused (1 process)** — `analyze_streams` in this process, the
//!   single-process production path and the differential reference;
//! * **sharded (N processes)** — the `sparqlog-shard` coordinator
//!   partitions the logs round-robin across N worker processes, each
//!   running the same fused engine over its partition and streaming a
//!   framed binary snapshot back over a pipe.
//!
//! The binary records multi-process throughput at 1/2/4 shards alongside
//! the codec's snapshot sizes (total bytes, per shard, per distinct form),
//! and **exits non-zero if any coordinator report differs by a single byte
//! from the fused single-process report on either population at any tested
//! shard count**. On a single-core runner the sharded contenders mostly pay
//! process-spawn and serialization overhead; multi-core runners get real
//! process-level parallelism on top of the per-process thread pools.

use sparqlog_bench::gate::DivergenceGate;
use sparqlog_bench::{banner, open_file_readers, write_corpus_files, HarnessOptions};
use sparqlog_core::corpus::{analyze_streams_with, FusedOptions};
use sparqlog_core::report::full_report;
use sparqlog_core::Population;
use sparqlog_shard::{analyze_sharded, LogSpec, ShardOptions, ShardedAnalysis, WorkerCommand};
use std::time::Instant;

/// How many times each log's entries are tiled into its temp file.
const TILE: usize = 4;

/// The measured runs per contender; the minimum wall-clock wins.
const REPEATS: usize = 3;

/// The shard counts measured and gated.
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn best_of<T>(mut run: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..REPEATS {
        let start = Instant::now();
        let out = run();
        best = best.min(start.elapsed().as_secs_f64());
        result = Some(out);
    }
    (result.expect("at least one repeat"), best)
}

fn run_sharded(
    logs: &[LogSpec],
    population: Population,
    shards: usize,
    worker: &WorkerCommand,
) -> ShardedAnalysis {
    let options = ShardOptions {
        recovery: Default::default(),
        shards,
        worker_threads: 0,
        worker: worker.clone(),
    };
    analyze_sharded(logs, population, &options)
        .unwrap_or_else(|error| panic!("sharded run ({shards} shards) failed: {error}"))
}

fn main() {
    let opts = HarnessOptions::from_args();
    banner("ablation: multi-process sharded analysis", &opts);

    let worker = match WorkerCommand::resolve_default() {
        Ok(worker) => worker,
        Err(error) => {
            eprintln!("ablation_shard: {error}");
            std::process::exit(1);
        }
    };

    let dir = std::env::temp_dir().join(format!("sparqlog-shard-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp corpus dir");
    let (files, total_entries) = write_corpus_files(&opts, &dir, TILE);
    let logs: Vec<LogSpec> = files
        .iter()
        .map(|(label, path)| LogSpec::new(label.clone(), path))
        .collect();

    // -- Timed leg: end-to-end on the Valid ("all") population. --------------
    let (fused_valid, fused_time) = best_of(|| {
        analyze_streams_with(
            open_file_readers(&files),
            Population::Valid,
            FusedOptions::default(),
        )
        .expect("fused reference run")
    });
    let counts = &fused_valid.corpus.combined.counts;
    println!(
        "corpus: {} logs, {} entries on disk, {} valid, {} distinct canonical forms, \
         mean occurrence rate {:.2}x",
        files.len(),
        total_entries,
        counts.valid,
        counts.unique,
        counts.valid as f64 / counts.unique.max(1) as f64
    );
    println!(
        "\n{:<44} {:>10} {:>14}",
        "end-to-end ingest+analyze (Valid population)", "time", "entries/s"
    );
    println!(
        "{:<44} {:>8.2}ms {:>14.0}",
        "fused (1 process)",
        fused_time * 1e3,
        total_entries as f64 / fused_time
    );
    let mut sharded_valid = Vec::new();
    for shards in SHARD_COUNTS {
        let (sharded, time) = best_of(|| run_sharded(&logs, Population::Valid, shards, &worker));
        println!(
            "{:<44} {:>8.2}ms {:>14.0}",
            format!(
                "sharded ({shards} worker process{})",
                if shards == 1 { "" } else { "es" }
            ),
            time * 1e3,
            total_entries as f64 / time
        );
        sharded_valid.push((shards, sharded));
    }

    // -- Snapshot-size leg: what the codec moves between processes. ----------
    println!("\nsnapshot codec (per sharded run, Valid population):");
    for (shards, sharded) in &sharded_valid {
        let bytes = sharded.snapshot_bytes();
        let per_shard: Vec<String> = sharded
            .shard_stats
            .iter()
            .map(|s| format!("shard {}: {} logs, {} B", s.shard, s.logs, s.snapshot_bytes))
            .collect();
        println!(
            "  {shards} shard(s): {} B total ({:.1} B per distinct form; {})",
            bytes,
            bytes as f64 / counts.unique.max(1) as f64,
            per_shard.join("; ")
        );
    }

    // -- Differential gate: byte-identical reports, both populations,
    //    every shard count. --------------------------------------------------
    let mut gate = DivergenceGate::new();
    for population in [Population::Valid, Population::Unique] {
        let reference = analyze_streams_with(
            open_file_readers(&files),
            population,
            FusedOptions::default(),
        )
        .expect("fused reference run");
        let reference_report = full_report(&reference.corpus);
        for shards in SHARD_COUNTS {
            let sharded = run_sharded(&logs, population, shards, &worker);
            gate.compare(
                &format!("coordinator report differs on {population:?} at {shards} shards"),
                &reference_report,
                &full_report(&sharded.corpus),
            );
            gate.require(
                sharded.summaries == reference.summaries,
                &format!("per-log summaries differ on {population:?} at {shards} shards"),
            );
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
    gate.finish(
        "coordinator and single-process fused reports are byte-identical \
         across 1/2/4 shards on both populations",
    );
}
