//! Ablation: the crash-safe snapshot store (`sparqlog-persist`) — warm
//! re-serve economics plus a full crash drill against the real daemon.
//!
//! Three legs:
//!
//! * **cold vs warm** — the incremental engine over a store: the cold run
//!   analyses and persists every log, the warm run re-serves everything
//!   from the store (gated: **0 re-analyses**) — both byte-identical to
//!   the fused engine. Timings land in the CI perf artifact.
//! * **crash drill** — for each injected crash point of the commit
//!   protocol (`die-before-commit`, `die-mid-frame`,
//!   `die-after-commit-pre-fsync`, `bit-flip`), a **real**
//!   `sparqlog-serve` process is started on a fresh store, a job is
//!   submitted, and the daemon dies mid-commit with the persist fault
//!   exit (9). A second daemon is started on the damaged store: it must
//!   recover, warm-start whatever committed, and answer a resubmission of
//!   the same logs with a report **byte-identical** to the fused
//!   engine's. Per-mode recovery details are printed.
//! * **divergence gate** — every report above must match the fused
//!   engine's byte-for-byte; the binary exits non-zero otherwise (the CI
//!   crash-drill matrix keys on this).
//!
//! Extra flags (on top of the usual `--scale/--seed/--cap`):
//!
//! * `--crash <mode>` — run only that crash leg (the CI `crash-drill`
//!   matrix runs one mode per job), skipping the timed cold/warm leg;
//! * `--crash-log <path>` — append each leg's daemon event lines to
//!   `path` (uploaded as the CI recovery-log artifact on failure).

use sparqlog_bench::gate::DivergenceGate;
use sparqlog_bench::{banner, open_file_readers, write_corpus_files, HarnessOptions};
use sparqlog_core::corpus::{analyze_streams_with, FusedOptions};
use sparqlog_core::report::full_report;
use sparqlog_core::{analyze_files_incremental, Population, RecoveryPolicy};
use sparqlog_persist::{FaultMode, SnapshotStore, FAULT_ENV, FAULT_EXIT, FAULT_FLAG_ENV};
use sparqlog_serve::{Client, ConnectRetry, JobPhase, ServeAddr};
use std::io::{BufRead, BufReader, Write as _};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// How many times each log's entries are tiled into its temp file.
const TILE: usize = 4;

/// Timed repeats of the cold/warm leg; the minimum wins.
const REPEATS: usize = 3;

/// How long any single daemon phase (settle, death, restart) may take.
const SETTLE: Duration = Duration::from_secs(300);

/// Resolves the daemon binary like the worker is resolved: the
/// `SPARQLOG_SERVE_BIN` environment variable if set, otherwise the
/// `sparqlog-serve` built next to this harness by the same profile.
fn resolve_serve_bin() -> PathBuf {
    if let Ok(path) = std::env::var("SPARQLOG_SERVE_BIN") {
        return PathBuf::from(path);
    }
    let exe = std::env::current_exe().expect("current executable");
    let candidate = exe
        .parent()
        .expect("executable parent")
        .join(format!("sparqlog-serve{}", std::env::consts::EXE_SUFFIX));
    if candidate.is_file() {
        return candidate;
    }
    eprintln!(
        "ablation_persist: sparqlog-serve not found next to {} — build it with \
         `cargo build -p sparqlog` or point SPARQLOG_SERVE_BIN at it",
        exe.display()
    );
    std::process::exit(1);
}

/// A spawned daemon plus the address it reported on stderr.
struct Daemon {
    child: Child,
    addr: ServeAddr,
    /// Drains the daemon's remaining stderr so it never blocks on a full
    /// pipe; joined (best-effort) when the daemon is reaped.
    drainer: std::thread::JoinHandle<()>,
}

impl Daemon {
    /// Spawns `sparqlog-serve` on an ephemeral port with the given store
    /// and environment, and waits for its "listening on tcp" line.
    fn spawn(serve_bin: &Path, store: &Path, event_log: &Path, envs: &[(&str, String)]) -> Daemon {
        let mut command = Command::new(serve_bin);
        command
            .args(["--tcp", "127.0.0.1:0", "--heartbeat-ms", "50"])
            .arg("--store")
            .arg(store)
            .arg("--event-log")
            .arg(event_log)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped());
        for (key, value) in envs {
            command.env(key, value);
        }
        let mut child = command.spawn().expect("spawn sparqlog-serve");
        let stderr = child.stderr.take().expect("daemon stderr");
        let mut lines = BufReader::new(stderr).lines();
        let mut addr = None;
        for line in lines.by_ref() {
            let line = line.expect("read daemon stderr");
            if let Some(spec) = line.split("listening on tcp ").nth(1) {
                addr = Some(ServeAddr::Tcp(spec.trim().to_string()));
                break;
            }
        }
        let Some(addr) = addr else {
            let _ = child.kill();
            panic!("daemon exited before reporting its listen address");
        };
        let drainer = std::thread::spawn(move || for _ in lines.by_ref() {});
        Daemon {
            child,
            addr,
            drainer,
        }
    }

    /// Waits (bounded) for the daemon to exit on its own; returns the exit
    /// code, or `None` on timeout.
    fn wait_exit(&mut self, timeout: Duration) -> Option<i32> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(status) = self.child.try_wait().expect("poll daemon") {
                return status.code();
            }
            if Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Kills and reaps the daemon (used for the healthy restart leg once
    /// its gates have passed).
    fn stop(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = self.drainer.join();
    }
}

fn submit_specs(files: &[(String, PathBuf)]) -> Vec<(String, String)> {
    files
        .iter()
        .map(|(label, path)| (label.clone(), path.display().to_string()))
        .collect()
}

/// Appends one leg's daemon event-log file to the crash-log artifact.
fn append_crash_log(crash_log: Option<&Path>, leg: &str, event_log: &Path) {
    let Some(path) = crash_log else { return };
    let Ok(mut out) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    else {
        return;
    };
    let _ = writeln!(out, "== crash leg: {leg} ==");
    if let Ok(contents) = std::fs::read_to_string(event_log) {
        let _ = out.write_all(contents.as_bytes());
    }
    let _ = writeln!(out);
}

/// One crash leg: daemon dies at the injected commit point, a restarted
/// daemon recovers the store and re-serves a byte-identical report.
#[allow(clippy::too_many_arguments)]
fn crash_leg(
    gate: &mut DivergenceGate,
    serve_bin: &Path,
    scratch: &Path,
    files: &[(String, PathBuf)],
    reference: &str,
    mode: FaultMode,
    crash_log: Option<&Path>,
) {
    let leg = mode.name();
    let store = scratch.join(format!("store-{leg}.sqps"));
    let flag = scratch.join(format!("flag-{leg}"));
    let retry = ConnectRetry {
        attempts: 50,
        backoff: Duration::from_millis(50),
        backoff_cap: Duration::from_millis(500),
    };

    // Phase 1: daemon under fault injection. The job runs on real worker
    // processes; the first store commit (at job completion) dies at the
    // injected point with the persist fault exit.
    let event_log_1 = scratch.join(format!("events-{leg}-1.log"));
    let mut daemon = Daemon::spawn(
        serve_bin,
        &store,
        &event_log_1,
        &[
            (FAULT_ENV, leg.to_string()),
            (FAULT_FLAG_ENV, flag.display().to_string()),
        ],
    );
    let mut client = Client::connect_with_retry(&daemon.addr, &retry).expect("connect");
    client
        .submit(
            Population::Unique,
            RecoveryPolicy::Auto,
            submit_specs(files),
        )
        .expect("submit under fault");
    drop(client); // the daemon dies mid-commit; don't race its last breath
    let exit = daemon.wait_exit(SETTLE);
    let _ = daemon.child.wait();
    let _ = daemon.drainer.join();
    gate.require(
        exit == Some(FAULT_EXIT),
        &format!("crash leg '{leg}': daemon exited {exit:?}, expected the fault exit {FAULT_EXIT}"),
    );
    append_crash_log(crash_log, &format!("{leg} (crashed daemon)"), &event_log_1);

    // Phase 2: clean restart on the damaged store. Recovery must not
    // panic, warm-starts whatever committed, and a resubmission of the
    // same logs settles to a byte-identical report (store hits for
    // persisted logs, fresh workers for the rest).
    let event_log_2 = scratch.join(format!("events-{leg}-2.log"));
    let daemon = Daemon::spawn(serve_bin, &store, &event_log_2, &[]);
    let mut client = Client::connect_with_retry(&daemon.addr, &retry).expect("reconnect");
    let (job, _) = client
        .submit(
            Population::Unique,
            RecoveryPolicy::Auto,
            submit_specs(files),
        )
        .expect("resubmit after crash");
    let status = client.wait_settled(job, SETTLE).expect("wait resubmitted");
    gate.require(
        status.phase == JobPhase::Complete,
        &format!(
            "crash leg '{leg}': resubmitted job failed: {}",
            status.error
        ),
    );
    let report = client.report(job, true).expect("report after recovery");
    gate.compare(
        &format!("report differs from fused after '{leg}' recovery"),
        reference,
        &report.text,
    );

    let events = client.events(0).expect("events");
    let warm_jobs = events
        .iter()
        .filter(|l| l.contains("event=job-warm-start"))
        .count();
    let hits = events
        .iter()
        .filter(|l| l.contains("event=store-hit"))
        .count();
    let recovery = events
        .iter()
        .find(|l| l.contains("event=store-open"))
        .cloned()
        .unwrap_or_default();
    gate.require(
        !recovery.is_empty(),
        &format!("crash leg '{leg}': restarted daemon logged no store-open event"),
    );
    println!(
        "  {leg:<28} exit={} warm_jobs={warm_jobs} store_hits={hits}/{}",
        exit.unwrap_or(-1),
        files.len()
    );
    println!("    {}", recovery.trim());
    drop(client);
    daemon.stop();
    append_crash_log(
        crash_log,
        &format!("{leg} (restarted daemon)"),
        &event_log_2,
    );
}

fn main() {
    let opts = HarnessOptions::from_args();
    let args: Vec<String> = std::env::args().collect();
    let mut only_crash: Option<String> = None;
    let mut crash_log: Option<PathBuf> = None;
    for i in 1..args.len() {
        match args[i].as_str() {
            "--crash" => only_crash = args.get(i + 1).cloned(),
            "--crash-log" => crash_log = args.get(i + 1).map(PathBuf::from),
            _ => {}
        }
    }
    if let Some(mode) = &only_crash {
        if FaultMode::parse(mode).is_none() {
            eprintln!(
                "ablation_persist: unknown crash mode '{mode}' (expected one of {})",
                FaultMode::ALL.map(FaultMode::name).join(", ")
            );
            std::process::exit(2);
        }
    }
    banner("ablation: crash-safe snapshot store", &opts);

    let serve_bin = resolve_serve_bin();
    let dir = std::env::temp_dir().join(format!("sparqlog-persist-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp corpus dir");
    let (files, total_entries) = write_corpus_files(&opts, &dir, TILE);

    // -- In-process reference. -----------------------------------------------
    let fused = analyze_streams_with(
        open_file_readers(&files),
        Population::Unique,
        FusedOptions::default(),
    )
    .expect("fused reference run");
    let reference = full_report(&fused.corpus);
    let counts = &fused.corpus.combined.counts;
    println!(
        "corpus: {} logs, {} entries on disk, {} valid, {} distinct canonical forms",
        files.len(),
        total_entries,
        counts.valid,
        counts.unique
    );

    let mut gate = DivergenceGate::new();

    // -- Timed leg: cold ingest vs warm re-serve through the store. ----------
    if only_crash.is_none() {
        let mut cold_time = f64::INFINITY;
        let mut warm_time = f64::INFINITY;
        for repeat in 0..REPEATS {
            let store_path = dir.join(format!("warm-{repeat}.sqps"));
            let (mut store, _) = SnapshotStore::open(&store_path).expect("create store");
            let start = Instant::now();
            let cold = analyze_files_incremental(
                &files,
                Population::Unique,
                FusedOptions::default(),
                &mut store,
            )
            .expect("cold incremental run");
            store.commit().expect("commit snapshots");
            cold_time = cold_time.min(start.elapsed().as_secs_f64());
            gate.require(
                cold.stats.misses == files.len() as u64,
                "cold run did not analyse every log",
            );
            gate.compare(
                "cold incremental report differs from fused",
                &reference,
                &full_report(&cold.corpus),
            );
            drop(store);

            let (mut store, recovery) = SnapshotStore::open(&store_path).expect("reopen store");
            gate.require(
                recovery.is_clean(),
                &format!("committed store reopened dirty: {recovery}"),
            );
            let start = Instant::now();
            let warm = analyze_files_incremental(
                &files,
                Population::Unique,
                FusedOptions::default(),
                &mut store,
            )
            .expect("warm incremental run");
            warm_time = warm_time.min(start.elapsed().as_secs_f64());
            gate.require(
                warm.stats.misses == 0,
                &format!(
                    "warm run re-analysed {} logs (expected 0)",
                    warm.stats.misses
                ),
            );
            gate.compare(
                "warm incremental report differs from fused",
                &reference,
                &full_report(&warm.corpus),
            );
        }
        println!(
            "\n{:<44} {:>10} {:>14}",
            "incremental over the store", "time", "entries/s"
        );
        println!(
            "{:<44} {:>8.2}ms {:>14.0}",
            "cold (analyse + persist + commit)",
            cold_time * 1e3,
            total_entries as f64 / cold_time
        );
        println!(
            "{:<44} {:>8.2}ms {:>14.0}",
            "warm (0 re-analyses, store only)",
            warm_time * 1e3,
            total_entries as f64 / warm_time
        );
        println!(
            "{:<44} {:>9.1}x",
            "warm speedup",
            cold_time / warm_time.max(1e-9)
        );
    }

    // -- Crash drill: every injected commit crash recovers. ------------------
    println!("\ncrash drill (restart recovers, resubmitted report byte-identical):");
    for mode in FaultMode::ALL {
        if only_crash.as_deref().is_none_or(|only| only == mode.name()) {
            crash_leg(
                &mut gate,
                &serve_bin,
                &dir,
                &files,
                &reference,
                mode,
                crash_log.as_deref(),
            );
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
    gate.finish(
        "snapshot-store reports are byte-identical to the in-process fused engine's \
         on cold ingest, warm re-serve, and after every injected-crash recovery",
    );
}
