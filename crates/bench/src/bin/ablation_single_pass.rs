//! Ablation: the single-pass analysis engine against the seed multi-walk
//! path, on the same synthetic corpus. Reports per-stage times and the
//! end-to-end speedup (the workspace-refactor acceptance target is >= 1.5x).

use sparqlog_bench::{banner, build_corpus, HarnessOptions};
use sparqlog_core::analysis::{CorpusAnalysis, DatasetAnalysis, EngineOptions};
use sparqlog_core::baseline::{add_query_multiwalk, analyze_multiwalk};
use sparqlog_parser::intern::Interner;
use std::time::Instant;

fn main() {
    let opts = HarnessOptions::from_args();
    banner("ablation: single-pass vs multi-walk analysis", &opts);
    let logs = build_corpus(&opts);
    let queries: Vec<_> = logs.iter().flat_map(|l| l.unique_queries()).collect();
    println!("unique queries analysed: {}\n", queries.len());

    let repeats = 5;
    let mut multi_best = f64::INFINITY;
    let mut single_best = f64::INFINITY;
    for _ in 0..repeats {
        let t = Instant::now();
        let mut analysis = DatasetAnalysis::default();
        for q in &queries {
            add_query_multiwalk(&mut analysis, q);
        }
        std::hint::black_box(&analysis);
        multi_best = multi_best.min(t.elapsed().as_secs_f64());

        let t = Instant::now();
        let mut analysis = DatasetAnalysis::default();
        let mut interner = Interner::new();
        for q in &queries {
            analysis.add_query_with(q, &mut interner);
        }
        std::hint::black_box(&analysis);
        single_best = single_best.min(t.elapsed().as_secs_f64());
    }
    println!("per-query fold, multi-walk : {:.3} ms", multi_best * 1e3);
    println!("per-query fold, single-pass: {:.3} ms", single_best * 1e3);
    println!("speedup: {:.2}x\n", multi_best / single_best);

    let t = Instant::now();
    std::hint::black_box(analyze_multiwalk(&logs, opts.population()));
    let multi_corpus = t.elapsed().as_secs_f64();
    let t = Instant::now();
    std::hint::black_box(CorpusAnalysis::analyze_with(
        &logs,
        opts.population(),
        EngineOptions::default(),
    ));
    let single_corpus = t.elapsed().as_secs_f64();
    println!(
        "corpus analysis, multi-walk sequential : {:.3} ms",
        multi_corpus * 1e3
    );
    println!(
        "corpus analysis, single-pass (pooled)  : {:.3} ms",
        single_corpus * 1e3
    );
    println!("speedup: {:.2}x", multi_corpus / single_corpus);
}
