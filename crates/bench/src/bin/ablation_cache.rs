//! Ablation: the fingerprint-keyed analysis cache (+ interned-term
//! allocation diet) against the uncached analysis path, on a duplicate-heavy
//! synthetic corpus.
//!
//! The corpus is the standard synthetic one with every log tiled several
//! times, pushing the mean occurrence rate (valid / unique) to at least 3× —
//! the duplication regime the source paper reports for real logs, where the
//! "all" population re-analyses the same canonical forms over and over.
//!
//! The binary doubles as a CI differential gate: it renders the **full
//! corpus report** through the cached and the uncached engine on both
//! populations and **exits non-zero if any byte differs**. The acceptance
//! target is a >= 1.5x end-to-end analysis speedup on the Valid population
//! plus a nonzero interner savings counter; both are printed for the
//! workflow artifact.

use sparqlog_bench::gate::DivergenceGate;
use sparqlog_bench::{banner, raw_corpus, stats_banner, HarnessOptions};
use sparqlog_core::analysis::{CachePolicy, CorpusAnalysis, EngineOptions, Population};
use sparqlog_core::cache::AnalysisCache;
use sparqlog_core::corpus::{ingest_all, RawLog};
use sparqlog_core::report::full_report;
use std::time::Instant;

/// How many times each log's entries are tiled: every query occurs at least
/// this many times, so the mean occurrence rate is at least `TILE` (the
/// synthesizer's own duplicates push it higher).
const TILE: usize = 4;

fn duplicate_heavy(raw: Vec<RawLog>) -> Vec<RawLog> {
    raw.into_iter()
        .map(|log| {
            let mut entries = Vec::with_capacity(log.entries.len() * TILE);
            for _ in 0..TILE {
                entries.extend(log.entries.iter().cloned());
            }
            RawLog::new(log.label, entries)
        })
        .collect()
}

fn main() {
    let opts = HarnessOptions::from_args();
    banner("ablation: fingerprint-keyed analysis cache", &opts);
    let raw = duplicate_heavy(raw_corpus(&opts));
    let logs = ingest_all(&raw);
    let (valid, unique): (u64, u64) = logs.iter().fold((0, 0), |(v, u), l| {
        (v + l.counts.valid, u + l.counts.unique)
    });
    let occurrence_rate = valid as f64 / unique.max(1) as f64;
    println!(
        "corpus: {} valid queries, {} distinct canonical forms, mean occurrence rate {:.2}x \
         (target >= 3x: {})\n",
        valid,
        unique,
        occurrence_rate,
        if occurrence_rate >= 3.0 {
            "PASS"
        } else {
            "MISS"
        }
    );

    // -- End-to-end analysis of the Valid ("all") population. ---------------
    let repeats = 5;
    let uncached_options = EngineOptions {
        recovery: Default::default(),
        cache: CachePolicy::Disabled,
        ..EngineOptions::default()
    };
    let mut uncached_time = f64::INFINITY;
    let mut uncached = None;
    for _ in 0..repeats {
        let t = Instant::now();
        let (analysis, stats) =
            CorpusAnalysis::analyze_stats(&logs, Population::Valid, uncached_options);
        uncached_time = uncached_time.min(t.elapsed().as_secs_f64());
        uncached = Some((analysis, stats));
    }
    let (uncached_valid, uncached_stats) = uncached.expect("at least one repeat");

    let mut cached_time = f64::INFINITY;
    let mut cached = None;
    for _ in 0..repeats {
        // A fresh cache per repeat: the measured run is a cold corpus run,
        // not a warm-cache rerun.
        let cache = AnalysisCache::new();
        let t = Instant::now();
        let (analysis, stats) = CorpusAnalysis::analyze_cached(
            &logs,
            Population::Valid,
            EngineOptions::default(),
            &cache,
        );
        cached_time = cached_time.min(t.elapsed().as_secs_f64());
        cached = Some((analysis, stats));
    }
    let (cached_valid, cached_stats) = cached.expect("at least one repeat");

    let speedup = uncached_time / cached_time;
    println!(
        "{:<44} {:>10} {:>14}",
        "end-to-end analysis (Valid population)", "time", "queries/s"
    );
    println!(
        "{:<44} {:>8.2}ms {:>14.0}",
        "uncached (QueryAnalysis per occurrence)",
        uncached_time * 1e3,
        valid as f64 / uncached_time
    );
    println!(
        "{:<44} {:>8.2}ms {:>14.0}",
        "cached (memoized per canonical form)",
        cached_time * 1e3,
        valid as f64 / cached_time
    );
    println!(
        "analysis speedup: {:.2}x (target >= 1.5x: {})\n",
        speedup,
        if speedup >= 1.5 { "PASS" } else { "MISS" }
    );
    println!("{}\n", stats_banner(&cached_stats));

    // -- Population switch: a shared cache serves the Unique rerun. ---------
    let shared = AnalysisCache::new();
    let (valid_run, _) =
        CorpusAnalysis::analyze_cached(&logs, Population::Valid, EngineOptions::default(), &shared);
    let before_switch = shared.stats();
    let (unique_run, _) = CorpusAnalysis::analyze_cached(
        &logs,
        Population::Unique,
        EngineOptions::default(),
        &shared,
    );
    let after_switch = shared.stats();
    println!(
        "population switch (Valid -> Unique on one cache): {} further analyses, {} reused \
         of {} unique-population lookups",
        after_switch.misses - before_switch.misses,
        after_switch.hits - before_switch.hits,
        unique,
    );

    // -- Differential gate: full reports must be byte-identical. ------------
    let mut gate = DivergenceGate::new();
    let (uncached_unique, _) =
        CorpusAnalysis::analyze_stats(&logs, Population::Unique, uncached_options);
    for (population, cached_analysis, uncached_analysis) in [
        (Population::Valid, &cached_valid, &uncached_valid),
        (Population::Valid, &valid_run, &uncached_valid),
        (Population::Unique, &unique_run, &uncached_unique),
    ] {
        gate.compare(
            &format!("corpus report differs on {population:?}"),
            &full_report(uncached_analysis),
            &full_report(cached_analysis),
        );
    }
    gate.require(
        cached_stats.cache.map_or(0, |c| c.hits) > 0,
        "cache reported zero hits on a duplicate-heavy corpus",
    );
    gate.require(
        cached_stats.interner.bytes_saved > 0 && uncached_stats.interner.bytes_saved > 0,
        "interner reported zero savings",
    );
    gate.finish("cached and uncached corpus reports are byte-identical on both populations");
}
