//! Ablation: the streaming ingestion path (zero-materialization canonical
//! fingerprints + sharded dedup + incremental `LogReader` feed) against the
//! materializing reference path, on the same synthetic corpus.
//!
//! The binary doubles as the CI `perf-smoke` differential gate: it proves
//! the two paths produce byte-identical counts, fingerprints, unique
//! indices and corpus reports, and **exits non-zero on any divergence**.
//! Timing numbers are printed for the workflow artifact; the acceptance
//! target is a >= 1.3x speedup of the fingerprint+dedup stage (the
//! subsystem this refactor replaces). End-to-end ingest times are reported
//! too — on a single core they improve only by the canonical-string
//! savings, while multi-core runners additionally parallelize the
//! fingerprinting that the materializing path runs sequentially.

use sparqlog_bench::gate::DivergenceGate;
use sparqlog_bench::{banner, raw_corpus, HarnessOptions};
use sparqlog_core::analysis::{CorpusAnalysis, Population};
use sparqlog_core::corpus::{
    canonical_fingerprint, ingest_all_materializing, ingest_streams_with, FingerprintShards,
    LogReader, MemoryLogReader, StreamOptions,
};
use sparqlog_parser::{canonical_fingerprint_of, to_canonical_string, Query};
use std::collections::HashSet;
use std::time::Instant;

fn best_of<T>(repeats: usize, mut run: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..repeats {
        let t = Instant::now();
        let out = run();
        best = best.min(t.elapsed().as_secs_f64());
        last = Some(out);
    }
    (best, last.expect("at least one repeat"))
}

fn main() {
    let opts = HarnessOptions::from_args();
    banner("ablation: streaming vs materializing ingestion", &opts);
    let raw = raw_corpus(&opts);
    let total_entries: usize = raw.iter().map(|l| l.entries.len()).sum();
    println!("log entries ingested: {total_entries}\n");

    // -- End-to-end ingestion: materializing pool vs streaming engine. ------
    // Both paths start from a fully generated corpus. The materializing path
    // keeps it resident for the whole run; the streaming path consumes an
    // owned copy (cloned outside the timed region, as a log producer would
    // hand it over) batch by batch.
    let repeats = 5;
    let (mat_time, materialized) = best_of(repeats, || ingest_all_materializing(&raw));
    let mut stream_time = f64::INFINITY;
    let mut streamed = Vec::new();
    for _ in 0..repeats {
        let readers: Vec<Box<dyn LogReader + 'static>> = raw
            .clone()
            .into_iter()
            .map(|log| {
                Box::new(MemoryLogReader::new(log.label, log.entries))
                    as Box<dyn LogReader + 'static>
            })
            .collect();
        let t = Instant::now();
        streamed = ingest_streams_with(readers, StreamOptions::default())
            .expect("in-memory ingestion cannot fail");
        stream_time = stream_time.min(t.elapsed().as_secs_f64());
    }
    let entries_per_sec = |t: f64| total_entries as f64 / t;
    println!(
        "{:<42} {:>10} {:>14}",
        "end-to-end ingest", "time", "entries/s"
    );
    println!(
        "{:<42} {:>8.2}ms {:>14.0}",
        "materializing (RawLog resident + strings)",
        mat_time * 1e3,
        entries_per_sec(mat_time)
    );
    println!(
        "{:<42} {:>8.2}ms {:>14.0}",
        "streaming (LogReader + hashed walk)",
        stream_time * 1e3,
        entries_per_sec(stream_time)
    );
    println!("end-to-end speedup: {:.2}x\n", mat_time / stream_time);

    // -- The replaced subsystem: canonical fingerprint + dedup stage. -------
    // Materializing: build each canonical string, hash it, insert into one
    // HashSet. Streaming: hash the canonical walk directly, insert into
    // fingerprint-range shards.
    let queries: Vec<&Query> = materialized
        .iter()
        .flat_map(|l| l.valid_queries.iter())
        .collect();
    let (string_time, seen) = best_of(repeats, || {
        let mut seen: HashSet<u128> = HashSet::new();
        for q in &queries {
            seen.insert(canonical_fingerprint(&to_canonical_string(q)));
        }
        seen
    });
    let (hasher_time, shards) = best_of(repeats, || {
        let mut shards = FingerprintShards::default();
        for q in &queries {
            shards.insert(canonical_fingerprint_of(q));
        }
        shards
    });
    let stage_speedup = string_time / hasher_time;
    println!(
        "{:<42} {:>10}",
        "fingerprint + dedup stage (per corpus)", "time"
    );
    println!(
        "{:<42} {:>8.2}ms",
        "materializing (String + FNV pass + HashSet)",
        string_time * 1e3
    );
    println!(
        "{:<42} {:>8.2}ms",
        "streaming (CanonicalHasher + shards)",
        hasher_time * 1e3
    );
    println!(
        "stage speedup: {:.2}x (target >= 1.3x: {})\n",
        stage_speedup,
        if stage_speedup >= 1.3 { "PASS" } else { "MISS" }
    );
    println!(
        "dedup shards: {} shards, {} distinct fingerprints, fullest shard {} \
         (peak growth is O(shard), not O(corpus))\n",
        shards.shard_count(),
        shards.len(),
        shards.max_shard_len()
    );

    // -- Differential check: the CI gate. -----------------------------------
    let mut gate = DivergenceGate::new();
    gate.require(
        seen.len() == shards.len(),
        &format!(
            "distinct fingerprints differ ({} materializing vs {} streaming)",
            seen.len(),
            shards.len()
        ),
    );
    for q in &queries {
        let streamed_fp = canonical_fingerprint_of(q);
        let materialized_fp = canonical_fingerprint(&to_canonical_string(q));
        if !gate.require(
            streamed_fp == materialized_fp,
            &format!("fingerprint mismatch on {:?}", to_canonical_string(q)),
        ) {
            break;
        }
    }
    for (m, s) in materialized.iter().zip(&streamed) {
        gate.require(
            m.counts == s.counts,
            &format!(
                "counts differ on {}: {:?} vs {:?}",
                m.label, m.counts, s.counts
            ),
        );
        gate.require(
            m.unique_indices == s.unique_indices,
            &format!("unique indices differ on {}", m.label),
        );
        gate.require(
            m.valid_queries == s.valid_queries,
            &format!("parsed queries differ on {}", m.label),
        );
    }
    for population in [Population::Unique, Population::Valid] {
        gate.compare(
            &format!("corpus report differs on {population:?}"),
            &format!("{:?}", CorpusAnalysis::analyze(&materialized, population)),
            &format!("{:?}", CorpusAnalysis::analyze(&streamed, population)),
        );
    }

    gate.finish(
        "counts, fingerprints, unique indices and corpus reports are \
         byte-identical across both paths",
    );
}
