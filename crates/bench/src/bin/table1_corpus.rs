//! Regenerates Table 1: sizes of the query logs (Total / Valid / Unique).
use sparqlog_bench::{analyzed_corpus_stats, banner, stats_banner, HarnessOptions};
use sparqlog_core::report;

fn main() {
    let opts = HarnessOptions::from_args();
    banner("Table 1 — corpus sizes", &opts);
    let (corpus, stats) = analyzed_corpus_stats(&opts);
    println!("{}", stats_banner(&stats));
    println!();
    println!("{}", report::table1(&corpus));
}
