//! Regenerates Table 1: sizes of the query logs (Total / Valid / Unique).
use sparqlog_bench::{analyzed_corpus, banner, HarnessOptions};
use sparqlog_core::report;

fn main() {
    let opts = HarnessOptions::from_args();
    banner("Table 1 — corpus sizes", &opts);
    let corpus = analyzed_corpus(&opts);
    println!("{}", report::table1(&corpus));
}
