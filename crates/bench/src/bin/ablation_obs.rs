//! Ablation: the cost of first-class observability. The fused engine runs
//! the same on-disk corpus twice inside one process — metrics disabled
//! (`sparqlog_obs::set_enabled(false)`: every instrumentation point
//! degenerates to one relaxed atomic load, no clock reads) and enabled
//! (counters, gauges and latency histograms recording on every batch).
//!
//! Two gates, both CI-enforced:
//!
//! * **overhead** — the enabled run's min-of-repeats wall-clock may exceed
//!   the disabled run's by at most 3% (the instrumentation budget the
//!   observability PR committed to);
//! * **byte identity** — the corpus reports of the two runs must not
//!   differ by a single byte at 1, 2 or 8 workers. Metrics observe the
//!   pipeline; they must never steer it.
//!
//! The binary also prints the enabled run's text exposition so the CI log
//! doubles as a sample of the `/metrics`-style output.

use sparqlog_bench::gate::DivergenceGate;
use sparqlog_bench::{banner, open_file_readers, write_corpus_files, HarnessOptions};
use sparqlog_core::corpus::{analyze_streams_with, FusedOptions};
use sparqlog_core::report::full_report;
use sparqlog_obs as obs;
use std::path::PathBuf;
use std::time::Instant;

/// How many times each log's entries are tiled into its temp file.
const TILE: usize = 6;

/// Measured runs per contender; the minimum wall-clock wins. Min-of-N is
/// what keeps a 3% gate meaningful on noisy CI machines.
const REPEATS: usize = 7;

/// The instrumentation budget, in percent of the disabled run's time.
const OVERHEAD_LIMIT_PCT: f64 = 3.0;

/// One fused end-to-end run over the temp files.
fn run_fused(files: &[(String, PathBuf)], opts: &HarnessOptions, workers: usize) -> String {
    let fused = analyze_streams_with(
        open_file_readers(files),
        opts.population(),
        FusedOptions {
            workers,
            ..FusedOptions::default()
        },
    )
    .expect("fused engine reads the temp files");
    full_report(&fused.corpus)
}

/// Times one metrics regime: min wall-clock over [`REPEATS`] runs, plus the
/// last run's report. The registry is reset before each repeat so absorbed
/// totals never accumulate across timing runs.
fn measure(files: &[(String, PathBuf)], opts: &HarnessOptions, metrics: bool) -> (String, f64) {
    obs::set_enabled(metrics);
    let mut best = f64::INFINITY;
    let mut report = String::new();
    for _ in 0..REPEATS {
        obs::global().reset();
        let start = Instant::now();
        report = run_fused(files, opts, 0);
        best = best.min(start.elapsed().as_secs_f64());
    }
    (report, best)
}

fn main() {
    let opts = HarnessOptions::from_args();
    banner(
        "ablation: observability overhead (metrics on vs off)",
        &opts,
    );

    let dir = std::env::temp_dir().join(format!("sparqlog-obs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp corpus dir");
    let (files, total_entries) = write_corpus_files(&opts, &dir, TILE);
    println!(
        "corpus: {total_entries} entries on disk across {} logs\n",
        files.len()
    );

    let mut gate = DivergenceGate::new();

    // -- Timed leg: metrics off, then on, min-of-repeats. --------------------
    let (off_report, off_time) = measure(&files, &opts, false);
    gate.require(
        obs::global().snapshot().is_empty(),
        "a disabled run records no metrics",
    );
    let (on_report, on_time) = measure(&files, &opts, true);
    let snapshot = obs::global().snapshot();
    gate.require(
        snapshot.counter("pipeline_entries_total").is_some()
            && snapshot.histogram("pipeline_parse_us").is_some(),
        "an enabled run records pipeline counters and latency histograms",
    );

    println!(
        "{:<44} {:>10} {:>14}",
        "fused end-to-end", "time", "entries/s"
    );
    println!(
        "{:<44} {:>8.2}ms {:>14.0}",
        "metrics disabled (one relaxed load per site)",
        off_time * 1e3,
        total_entries as f64 / off_time
    );
    println!(
        "{:<44} {:>8.2}ms {:>14.0}",
        "metrics enabled (counters + histograms)",
        on_time * 1e3,
        total_entries as f64 / on_time
    );
    let overhead_pct = (on_time / off_time - 1.0) * 100.0;
    println!(
        "instrumentation overhead: {:+.2}% (budget <= {OVERHEAD_LIMIT_PCT}%: {})\n",
        overhead_pct,
        if overhead_pct <= OVERHEAD_LIMIT_PCT {
            "PASS"
        } else {
            "MISS"
        }
    );
    gate.require(
        overhead_pct <= OVERHEAD_LIMIT_PCT,
        "instrumentation overhead stays within the 3% budget",
    );

    // -- Identity leg: byte-identical reports at 1/2/8 workers. --------------
    gate.compare(
        "timed runs: the instrumented report differs from the uninstrumented one",
        &off_report,
        &on_report,
    );
    for workers in [1usize, 2, 8] {
        obs::set_enabled(false);
        let off = run_fused(&files, &opts, workers);
        obs::set_enabled(true);
        obs::global().reset();
        let on = run_fused(&files, &opts, workers);
        gate.compare(
            &format!("instrumented report differs at {workers} workers"),
            &off,
            &on,
        );
    }
    obs::set_enabled(false);

    // -- Sample exposition: what `sparqlog-client metrics` would print. ------
    println!("enabled-run exposition sample (first 24 lines):");
    for line in snapshot.render_text().lines().take(24) {
        println!("  {line}");
    }

    let _ = std::fs::remove_dir_all(&dir);
    gate.finish(
        "metrics-on and metrics-off fused reports are byte-identical at 1/2/8 \
         workers and instrumentation stays within the 3% overhead budget",
    );
}
