//! Regenerates Figure 1 (or Figure 8 with --valid): triples per query.
use sparqlog_bench::{analyzed_corpus, banner, HarnessOptions};
use sparqlog_core::report;

fn main() {
    let opts = HarnessOptions::from_args();
    banner("Figure 1 / Figure 8 — triples per query", &opts);
    let corpus = analyzed_corpus(&opts);
    println!("{}", report::figure1_triples(&corpus));
}
