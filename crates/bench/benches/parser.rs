//! Criterion micro-benchmark: SPARQL parsing throughput on representative
//! queries (the kernel behind the "Valid" column of Table 1).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sparqlog_parser::parse_query;
use sparqlog_synth::{Dataset, Synthesizer};

fn bench_parser(c: &mut Criterion) {
    let simple = "SELECT ?x WHERE { ?x a <http://dbpedia.org/ontology/Film> } LIMIT 10";
    let medium = r#"PREFIX dbo: <http://dbpedia.org/ontology/>
        SELECT DISTINCT ?film ?director WHERE {
          ?film a dbo:Film ; dbo:director ?director .
          OPTIONAL { ?director dbo:birthPlace ?place }
          FILTER(?director != dbo:Unknown)
          { ?film dbo:releaseDate ?d } UNION { ?film dbo:premiereDate ?d }
        } ORDER BY ?film LIMIT 100"#;
    let path = "SELECT ?label WHERE { ?s <http://www.wikidata.org/prop/direct/P31>/<http://www.wikidata.org/prop/direct/P279>* <http://www.wikidata.org/entity/Q839954> . ?s <http://www.w3.org/2000/01/rdf-schema#label> ?label FILTER(lang(?label) = \"en\") }";

    let mut group = c.benchmark_group("parser");
    group.sample_size(30);
    group.bench_function("simple_select", |b| {
        b.iter(|| parse_query(black_box(simple)).unwrap())
    });
    group.bench_function("medium_dbpedia", |b| {
        b.iter(|| parse_query(black_box(medium)).unwrap())
    });
    group.bench_function("property_path", |b| {
        b.iter(|| parse_query(black_box(path)).unwrap())
    });

    // A realistic mixed batch from the synthesizer.
    let mut synth = Synthesizer::for_dataset(Dataset::DBpedia15, 5);
    let batch: Vec<String> = (0..200).map(|_| synth.fresh_query()).collect();
    group.bench_function("synthetic_batch_200", |b| {
        b.iter(|| {
            let mut ok = 0usize;
            for q in &batch {
                ok += usize::from(parse_query(black_box(q)).is_ok());
            }
            ok
        })
    });
    group.finish();
}

criterion_group!(benches, bench_parser);
criterion_main!(benches);
