//! Criterion micro-benchmark: hypergraph acyclicity and generalized hypertree
//! width (the kernel behind the Section 6.2 analysis).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sparqlog_graph::{generalized_hypertree_width, Hypergraph};
use sparqlog_parser::ast::{Term, TriplePattern};

fn var_pred_cycle(n: usize) -> Vec<TriplePattern> {
    (0..n)
        .map(|i| {
            TriplePattern::new(
                Term::var(format!("x{i}")),
                Term::var(format!("p{}", i % 2)),
                Term::var(format!("x{}", (i + 1) % n)),
            )
        })
        .collect()
}

fn acyclic_star(n: usize) -> Vec<TriplePattern> {
    (0..n)
        .map(|i| {
            TriplePattern::new(
                Term::var("c"),
                Term::var(format!("p{i}")),
                Term::var(format!("l{i}")),
            )
        })
        .collect()
}

fn bench_hypertree(c: &mut Criterion) {
    let mut group = c.benchmark_group("hypertree");
    group.sample_size(20);
    for (name, triples) in [
        ("acyclic_star_8", acyclic_star(8)),
        ("var_pred_cycle_5", var_pred_cycle(5)),
        ("var_pred_cycle_8", var_pred_cycle(8)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let h = Hypergraph::from_triples(black_box(&triples), &[]);
                generalized_hypertree_width(&h, 4)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hypertree);
criterion_main!(benches);
