//! Criterion micro-benchmark: shape classification and treewidth of query
//! graphs (the kernel behind Table 4).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sparqlog_graph::{treewidth, CanonicalGraph, GraphMode, ShapeReport};
use sparqlog_parser::ast::{Term, TriplePattern};

fn chain(n: usize) -> Vec<TriplePattern> {
    (0..n)
        .map(|i| {
            TriplePattern::new(
                Term::var(format!("x{i}")),
                Term::iri("http://p"),
                Term::var(format!("x{}", i + 1)),
            )
        })
        .collect()
}

fn flower() -> Vec<TriplePattern> {
    let e =
        |a: &str, b: &str| TriplePattern::new(Term::var(a), Term::iri("http://p"), Term::var(b));
    vec![
        e("x", "a"),
        e("a", "t"),
        e("x", "b"),
        e("b", "t"),
        e("x", "c"),
        e("c", "t"),
        e("x", "s1"),
        e("s1", "s2"),
        e("x", "m"),
        e("m", "u"),
        e("m", "v"),
    ]
}

fn bench_shape(c: &mut Criterion) {
    let mut group = c.benchmark_group("shape");
    group.sample_size(50);
    for (name, triples) in [
        ("chain_10", chain(10)),
        ("flower_11", flower()),
        ("chain_50", chain(50)),
    ] {
        group.bench_function(format!("classify_{name}"), |b| {
            b.iter(|| {
                let g = CanonicalGraph::from_triples(
                    black_box(&triples),
                    &[],
                    GraphMode::WithConstants,
                )
                .unwrap();
                let shape = ShapeReport::classify(&g);
                let tw = treewidth(&g);
                (shape, tw)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shape);
criterion_main!(benches);
