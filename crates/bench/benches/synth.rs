//! Criterion micro-benchmark: synthetic corpus generation and end-to-end
//! corpus analysis throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sparqlog_core::analysis::{CorpusAnalysis, Population};
use sparqlog_core::corpus::{ingest, RawLog};
use sparqlog_synth::{Dataset, Synthesizer};

fn bench_synth(c: &mut Criterion) {
    let mut group = c.benchmark_group("synth");
    group.sample_size(10);
    group.bench_function("generate_1000_dbpedia15_entries", |b| {
        b.iter(|| {
            let mut synth = Synthesizer::for_dataset(Dataset::DBpedia15, black_box(3));
            synth.generate_log(1000)
        })
    });

    let mut synth = Synthesizer::for_dataset(Dataset::DBpedia15, 3);
    let entries = synth.generate_log(500);
    group.bench_function("ingest_and_analyze_500_entries", |b| {
        b.iter(|| {
            let log = ingest(&RawLog::new("DBpedia15", black_box(entries.clone())));
            CorpusAnalysis::analyze(&[log], Population::Unique)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_synth);
criterion_main!(benches);
