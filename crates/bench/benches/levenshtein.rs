//! Criterion micro-benchmark: Levenshtein similarity and streak detection
//! (the kernel behind Table 6).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sparqlog_streaks::{detect_streaks, normalized_levenshtein, StreakConfig};
use sparqlog_synth::{generate_single_day_log, Dataset};

fn bench_levenshtein(c: &mut Criterion) {
    let a = "SELECT DISTINCT ?film WHERE { ?film a <http://dbpedia.org/ontology/Film> . ?film <http://dbpedia.org/ontology/director> ?d } LIMIT 100";
    let b = "SELECT DISTINCT ?film WHERE { ?film a <http://dbpedia.org/ontology/Film> . ?film <http://dbpedia.org/ontology/starring> ?s } LIMIT 50";

    let mut group = c.benchmark_group("streaks");
    group.sample_size(30);
    group.bench_function("normalized_levenshtein_pair", |bch| {
        bch.iter(|| normalized_levenshtein(black_box(a), black_box(b)))
    });

    let log = generate_single_day_log(Dataset::DBpedia15, 400, 9);
    group.bench_function("detect_streaks_400_entries", |bch| {
        bch.iter(|| detect_streaks(black_box(&log.entries), StreakConfig::default()))
    });
    group.finish();
}

criterion_group!(benches, bench_levenshtein);
criterion_main!(benches);
