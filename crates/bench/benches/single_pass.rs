//! Criterion micro-benchmark: the single-pass analysis engine against the
//! seed multi-walk path on the synthetic corpus. The tentpole claim of the
//! workspace refactor is that one shared traversal per query
//! (`QueryAnalysis::of`) beats re-walking the AST once per measure.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sparqlog_bench::{build_corpus, HarnessOptions};
use sparqlog_core::analysis::{DatasetAnalysis, Population};
use sparqlog_core::baseline::analyze_multiwalk;
use sparqlog_core::{CorpusAnalysis, EngineOptions, IngestedLog};

fn corpus() -> Vec<IngestedLog> {
    build_corpus(&HarnessOptions {
        scale: 1e-5,
        cap: 400,
        ..HarnessOptions::default()
    })
}

fn bench_single_pass(c: &mut Criterion) {
    let logs = corpus();
    let queries: Vec<_> = logs.iter().flat_map(|l| l.unique_queries()).collect();

    let mut group = c.benchmark_group("single_pass");
    group.sample_size(10);
    group.bench_function("per_query_multi_walk", |b| {
        b.iter(|| {
            let mut analysis = DatasetAnalysis::default();
            for q in &queries {
                sparqlog_core::baseline::add_query_multiwalk(&mut analysis, black_box(q));
            }
            analysis
        })
    });
    group.bench_function("per_query_single_pass", |b| {
        b.iter(|| {
            let mut analysis = DatasetAnalysis::default();
            for q in &queries {
                analysis.add_query(black_box(q));
            }
            analysis
        })
    });
    group.bench_function("corpus_multi_walk_sequential", |b| {
        b.iter(|| analyze_multiwalk(black_box(&logs), Population::Unique))
    });
    group.bench_function("corpus_single_pass_parallel", |b| {
        b.iter(|| {
            CorpusAnalysis::analyze_with(
                black_box(&logs),
                Population::Unique,
                EngineOptions::default(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_single_pass);
criterion_main!(benches);
