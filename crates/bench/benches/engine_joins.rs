//! Criterion micro-benchmark behind Figure 3: chain and cycle queries on the
//! binary-join and trie-join engines over a small Bib graph. Absolute numbers
//! differ from the paper's server-scale setup, but the ordering (cycles are
//! disproportionately expensive for binary joins) is the reproduced effect.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sparqlog_gmark::{
    generate_graph, generate_workload, GraphConfig, QueryShape, Schema, WorkloadConfig,
};
use sparqlog_store::{BinaryJoinEngine, QueryEngine, QueryMode, TrieJoinEngine};
use std::time::Duration;

fn bench_engines(c: &mut Criterion) {
    let schema = Schema::bib();
    let graph = generate_graph(
        &schema,
        GraphConfig {
            nodes: 3_000,
            seed: 42,
        },
    );
    let store = graph.to_store();
    let timeout = Duration::from_millis(250);

    let mut group = c.benchmark_group("engine_joins");
    group.sample_size(10);
    for shape in [QueryShape::Chain, QueryShape::Cycle] {
        for len in [3usize, 4] {
            let wl = generate_workload(
                &schema,
                WorkloadConfig {
                    shape,
                    length: len,
                    count: 5,
                    seed: 7 + len as u64,
                },
            );
            let binary = BinaryJoinEngine::new();
            let trie = TrieJoinEngine::new();
            group.bench_function(format!("{}_{len}_binary", shape.label()), |b| {
                b.iter(|| {
                    for q in &wl.queries {
                        black_box(binary.evaluate(&store, q, QueryMode::Ask, timeout));
                    }
                })
            });
            group.bench_function(format!("{}_{len}_trie", shape.label()), |b| {
                b.iter(|| {
                    for q in &wl.queries {
                        black_box(trie.evaluate(&store, q, QueryMode::Ask, timeout));
                    }
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
