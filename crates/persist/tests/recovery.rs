//! Recovery coverage for the snapshot store: every strict truncation
//! prefix of a valid store file (exhaustively) plus randomized single-bit
//! flips and appended garbage (property tests). The contract under test:
//! [`SnapshotStore::open`] never panics, always recovers a valid prefix
//! ending at a real commit boundary, names the dropped byte range exactly,
//! and a second open of the recovered file is clean.
//!
//! The property-case count defaults to 64 and scales with the
//! `SPARQLOG_FUZZ_CASES` environment variable (the CI fuzz-smoke job runs
//! an elevated count), matching the root fuzz harness.

use proptest::prelude::*;
use sparqlog_core::analysis::{DatasetAnalysis, Population};
use sparqlog_core::corpus::CorpusCounts;
use sparqlog_core::{ErrorTally, LogSummary, PersistedLog, RecoveryPolicy};
use sparqlog_persist::store::{JobLog, JobRecord};
use sparqlog_persist::{RecoveryReason, SnapshotStore};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// The store header (magic + version) — the first commit "boundary".
const HEADER_LEN: u64 = 5;

/// Cases per property; override with `SPARQLOG_FUZZ_CASES`.
fn fuzz_cases() -> u32 {
    std::env::var("SPARQLOG_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// A known-good store file with two commits, plus the byte boundary and
/// the (snapshots, jobs, commits) totals at each commit point.
struct Golden {
    bytes: Vec<u8>,
    /// `(committed_bytes, snapshots, jobs, commits)` per valid recovery
    /// point, ascending (starting at the bare header).
    boundaries: Vec<(u64, u64, u64, u64)>,
}

fn sample(label: &str, fingerprint: u128) -> PersistedLog {
    PersistedLog {
        summary: LogSummary {
            label: label.to_string(),
            counts: CorpusCounts::default(),
            occurrences: vec![(fingerprint, 2)],
            errors: ErrorTally::default(),
        },
        analysis: DatasetAnalysis {
            label: label.to_string(),
            ..DatasetAnalysis::default()
        },
    }
}

fn golden() -> &'static Golden {
    static GOLDEN: OnceLock<Golden> = OnceLock::new();
    GOLDEN.get_or_init(|| {
        let path = case_path("golden");
        let (mut store, report) = SnapshotStore::open(&path).expect("create golden store");
        assert_eq!(report.reason, RecoveryReason::Created);
        store.record_snapshot(0xA1, &sample("alpha", 11)).unwrap();
        store.record_snapshot(0xB2, &sample("beta", 22)).unwrap();
        store.commit().unwrap();
        let first = store.committed_bytes();
        store
            .record_job(&JobRecord {
                population: Population::Unique,
                recovery: RecoveryPolicy::Lenient,
                logs: vec![JobLog {
                    key: 0xA1,
                    label: "alpha".to_string(),
                    path: "/logs/alpha.log".to_string(),
                }],
            })
            .unwrap();
        store.record_snapshot(0xC3, &sample("gamma", 33)).unwrap();
        store.commit().unwrap();
        let second = store.committed_bytes();
        drop(store);
        let bytes = std::fs::read(&path).expect("read golden store");
        assert_eq!(bytes.len() as u64, second);
        Golden {
            bytes,
            boundaries: vec![(HEADER_LEN, 0, 0, 0), (first, 2, 0, 1), (second, 3, 1, 2)],
        }
    })
}

/// A unique scratch path for one case's store file.
fn case_path(prefix: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!("sparqlog-recovery-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create recovery scratch dir");
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    dir.join(format!("{prefix}-{n}.sqps"))
}

/// Opens `bytes` as a store file and asserts the recovery contract that
/// holds for *any* input: a commit-boundary prefix is kept, the dropped
/// range is named exactly, and a reopen of the recovered file is clean.
/// Returns what the first open reported.
fn open_and_check(prefix: &str, bytes: &[u8]) -> sparqlog_persist::RecoveryReport {
    let path = case_path(prefix);
    std::fs::write(&path, bytes).expect("write case file");
    let (store, report) = SnapshotStore::open(&path).expect("open must not fail");
    let golden = golden();

    // The kept prefix ends at a real commit boundary and matches that
    // boundary's content totals — unless the header itself was damaged, in
    // which case the store was reinitialized.
    if report.reason == RecoveryReason::BadHeader {
        assert_eq!(report.kept_bytes, HEADER_LEN);
        assert_eq!(report.dropped, Some(0..bytes.len() as u64));
        assert_eq!(store.snapshots(), 0);
    } else {
        let boundary = golden
            .boundaries
            .iter()
            .find(|(kept, ..)| *kept == report.kept_bytes)
            .unwrap_or_else(|| panic!("kept {} bytes is not a commit boundary", report.kept_bytes));
        let (_, snapshots, jobs, commits) = *boundary;
        assert_eq!(report.snapshots, snapshots);
        assert_eq!(report.jobs, jobs);
        assert_eq!(report.commits, commits);
        assert_eq!(store.snapshots() as u64, snapshots);
        // Everything kept decodes to exactly what was written.
        for key in store.snapshot_keys() {
            assert!([0xA1, 0xB2, 0xC3].contains(&key));
        }
    }

    // The dropped range is exactly the bytes beyond the kept prefix.
    match &report.dropped {
        // A freshly-created store (empty input) legitimately *grows* to
        // the header length; everything else keeps exactly its prefix.
        None if report.reason == RecoveryReason::Created => {
            assert_eq!(report.kept_bytes, HEADER_LEN)
        }
        None => assert_eq!(report.kept_bytes, bytes.len() as u64),
        Some(range) if report.reason == RecoveryReason::BadHeader => {
            assert_eq!(*range, 0..bytes.len() as u64)
        }
        Some(range) => assert_eq!(*range, report.kept_bytes..bytes.len() as u64),
    }
    assert_eq!(report.file_bytes, bytes.len() as u64);

    // Recovery is durable and convergent: the file now holds exactly the
    // kept prefix, and a second open drops nothing.
    assert_eq!(
        std::fs::metadata(&path).expect("recovered file").len(),
        report.kept_bytes
    );
    drop(store);
    let (_, second) = SnapshotStore::open(&path).expect("reopen must not fail");
    assert!(second.is_clean(), "second open must be clean: {second}");
    assert_eq!(second.kept_bytes, report.kept_bytes);
    let _ = std::fs::remove_file(&path);
    report
}

#[test]
fn every_truncation_prefix_recovers_a_valid_prefix() {
    let golden = golden();
    for len in 0..=golden.bytes.len() {
        let report = open_and_check("truncate", &golden.bytes[..len]);
        // A cut exactly at a commit boundary keeps everything present;
        // any other cut names the loss.
        let at_boundary = golden
            .boundaries
            .iter()
            .any(|(kept, ..)| *kept == len as u64);
        if at_boundary {
            assert!(report.is_clean(), "cut at boundary {len} must be clean");
        } else {
            assert!(
                !report.is_clean() || len == 0,
                "cut mid-record at {len} must name a dropped range"
            );
        }
        if len == 0 {
            assert_eq!(report.reason, RecoveryReason::Created);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases()))]

    /// A single flipped bit anywhere in the file never panics the scan,
    /// never survives into the kept prefix, and recovery converges.
    fn single_bit_flips_recover_a_valid_prefix(
        index in 0usize..1 << 16,
        bit in 0u8..8u8,
    ) {
        let golden = golden();
        let pos = index % golden.bytes.len();
        let mut bytes = golden.bytes.clone();
        bytes[pos] ^= 1 << bit;
        let report = open_and_check("bitflip", &bytes);
        prop_assert!(!report.is_clean(), "a flipped bit must always be detected");
        if (pos as u64) < HEADER_LEN {
            prop_assert_eq!(&report.reason, &RecoveryReason::BadHeader);
        } else {
            // The flipped byte is never inside the kept prefix.
            prop_assert!(
                report.kept_bytes <= pos as u64,
                "kept {} bytes but the flip was at {}",
                report.kept_bytes,
                pos
            );
        }
    }

    /// Arbitrary garbage appended after a valid store is dropped wholesale;
    /// everything committed stays served.
    fn appended_garbage_is_dropped_and_commits_survive(
        garbage in prop::collection::vec(0u8..=255u8, 1..64),
    ) {
        let golden = golden();
        let mut bytes = golden.bytes.clone();
        bytes.extend_from_slice(&garbage);
        let report = open_and_check("garbage", &bytes);
        prop_assert_eq!(report.kept_bytes, golden.bytes.len() as u64);
        prop_assert_eq!(report.snapshots, 3);
        prop_assert_eq!(
            report.dropped,
            Some(golden.bytes.len() as u64..bytes.len() as u64)
        );
    }

    /// A truncation *and* a flip in the surviving part still recovers.
    fn truncation_combined_with_a_flip_recovers(
        cut in 0usize..1 << 16,
        index in 0usize..1 << 16,
        bit in 0u8..8u8,
    ) {
        let golden = golden();
        let len = cut % (golden.bytes.len() + 1);
        let mut bytes = golden.bytes[..len].to_vec();
        if !bytes.is_empty() {
            let pos = index % bytes.len();
            bytes[pos] ^= 1 << bit;
        }
        open_and_check("cutflip", &bytes);
    }
}
