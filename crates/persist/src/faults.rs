//! Test-only crash injection for the snapshot store, mirroring the worker
//! fault knobs in `sparqlog_shard::faults`: opt-in via the environment,
//! free when unset, and fire-at-most-once via an exclusive-create flag file
//! so a restarted daemon sees the store recover.
//!
//! The store consults [`injected`] once per [`commit`], at the top of the
//! commit path, and then dies at the requested point *of that commit*. The
//! modes cover the four interesting instants of the commit protocol:
//!
//! | mode | dies | the restart must |
//! |---|---|---|
//! | `die-before-commit` | after the data records, before the commit record | drop the uncommitted records ([`Uncommitted`]) |
//! | `die-mid-frame` | half-way through the commit record's bytes | drop the torn tail ([`TornRecord`]) |
//! | `die-after-commit-pre-fsync` | after the commit record, before `fsync` | keep the commit (page cache survives a process death — only power loss would not) |
//! | `bit-flip` | after a clean commit + flip of one committed bit | detect the corruption by CRC and truncate to the last intact commit ([`ChecksumMismatch`]) |
//!
//! [`commit`]: crate::store::SnapshotStore::commit
//! [`Uncommitted`]: crate::store::RecoveryReason::Uncommitted
//! [`TornRecord`]: crate::store::RecoveryReason::TornRecord
//! [`ChecksumMismatch`]: crate::store::RecoveryReason::ChecksumMismatch

/// `SPARQLOG_PERSIST_FAULT` — the fault mode to inject (see [`FaultMode`]).
pub const FAULT_ENV: &str = "SPARQLOG_PERSIST_FAULT";

/// `SPARQLOG_PERSIST_FAULT_FLAG` — flag-file path making the fault fire at
/// most once across all store-holding processes (exclusive create claims
/// it), so the drill's restarted daemon commits cleanly.
pub const FAULT_FLAG_ENV: &str = "SPARQLOG_PERSIST_FAULT_FLAG";

/// Exit status of a process killed by an injected persist fault — distinct
/// from the shard worker's fault exit (3) so drills can tell them apart.
pub const FAULT_EXIT: i32 = 9;

/// The injectable commit-path crash points (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Die after appending data records, before the commit record.
    DieBeforeCommit,
    /// Die half-way through writing the commit record — a torn write.
    DieMidFrame,
    /// Die after the commit record is written but before `fsync`.
    DieAfterCommitPreFsync,
    /// Commit cleanly, flip one committed bit on disk, then die — at-rest
    /// corruption discovered by the next recovery scan.
    BitFlip,
}

impl FaultMode {
    /// Every mode, in wire-name order.
    pub const ALL: [FaultMode; 4] = [
        FaultMode::DieBeforeCommit,
        FaultMode::DieMidFrame,
        FaultMode::DieAfterCommitPreFsync,
        FaultMode::BitFlip,
    ];

    /// The mode's environment-variable spelling.
    pub fn name(self) -> &'static str {
        match self {
            FaultMode::DieBeforeCommit => "die-before-commit",
            FaultMode::DieMidFrame => "die-mid-frame",
            FaultMode::DieAfterCommitPreFsync => "die-after-commit-pre-fsync",
            FaultMode::BitFlip => "bit-flip",
        }
    }

    /// Parses the environment spelling; unknown values are `None` (a typo
    /// degrades to a clean run rather than a surprise crash).
    pub fn parse(value: &str) -> Option<FaultMode> {
        FaultMode::ALL
            .into_iter()
            .find(|mode| mode.name() == value.trim())
    }
}

/// The fault requested for this commit via the environment, if any. Claims
/// the once-flag ([`FAULT_FLAG_ENV`]) on success, so only the first commit
/// across all processes dies.
pub fn injected() -> Option<FaultMode> {
    let mode = FaultMode::parse(&std::env::var(FAULT_ENV).ok()?)?;
    if let Ok(flag) = std::env::var(FAULT_FLAG_ENV) {
        // First exclusive create wins; every later commit runs clean. A
        // flag path that cannot be created at all (missing directory) also
        // disables the fault — erring towards clean runs.
        if std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(flag.trim())
            .is_err()
        {
            return None;
        }
    }
    Some(mode)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_mode_round_trips_through_its_name() {
        for mode in FaultMode::ALL {
            assert_eq!(FaultMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(FaultMode::parse("frobnicate"), None);
        assert_eq!(FaultMode::parse(" bit-flip "), Some(FaultMode::BitFlip));
    }
}
