//! # sparqlog-persist
//!
//! The crash-safe persistent snapshot store of the `sparqlog` toolkit: a
//! durable, append-only file of CRC-checked records with explicit commit
//! points, torn-write recovery and warm-start serving.
//!
//! * [`store`] — the [`SnapshotStore`]: per-log analyses keyed by their
//!   canonical identity and completed-job manifests, made durable by
//!   [`SnapshotStore::commit`] (commit record, then `fsync` — data first,
//!   directory entry at creation). [`SnapshotStore::open`] scans the file,
//!   truncates anything after the last valid commit, and reports exactly
//!   which byte range was dropped and why. It never panics on any input.
//! * [`faults`] — opt-in crash injection (`SPARQLOG_PERSIST_FAULT`) at the
//!   four interesting instants of the commit protocol, driving the CI
//!   crash drill the same way the shard fault knobs drive the supervisor
//!   drill.
//!
//! The store implements [`SnapshotMemo`](sparqlog_core::SnapshotMemo), so
//! [`analyze_files_incremental`](sparqlog_core::analyze_files_incremental)
//! runs cold exactly once per distinct log and re-serves warm forever,
//! with byte-identical reports either way:
//!
//! ```
//! use sparqlog_core::{analyze_files_incremental, report, FusedOptions, Population};
//! use sparqlog_persist::SnapshotStore;
//!
//! let dir = std::env::temp_dir().join(format!("sparqlog-persist-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir)?;
//! let log = dir.join("wikidata.log");
//! std::fs::write(&log, "SELECT ?x WHERE { ?x a <http://example.org/C> }\n")?;
//! let files = vec![("wikidata".to_string(), log)];
//!
//! // Cold: analyse once, persist each log's snapshot, commit durably.
//! let (mut store, _) = SnapshotStore::open(dir.join("snapshots.sqps"))?;
//! let cold = analyze_files_incremental(
//!     &files, Population::Unique, FusedOptions::default(), &mut store)?;
//! store.commit()?;
//! assert_eq!((cold.stats.hits, cold.stats.misses), (0, 1));
//! drop(store);
//!
//! // Warm: a fresh process re-serves from the store, analysing nothing.
//! let (mut store, report) = SnapshotStore::open(dir.join("snapshots.sqps"))?;
//! assert!(report.is_clean());
//! let warm = analyze_files_incremental(
//!     &files, Population::Unique, FusedOptions::default(), &mut store)?;
//! assert_eq!((warm.stats.hits, warm.stats.misses), (1, 0));
//! assert_eq!(report::full_report(&warm.corpus), report::full_report(&cold.corpus));
//! # std::fs::remove_dir_all(&dir)?;
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod store;

pub use faults::{FaultMode, FAULT_ENV, FAULT_EXIT, FAULT_FLAG_ENV};
pub use store::{JobLog, JobRecord, RecoveryReason, RecoveryReport, SnapshotStore};
