//! The durable snapshot store: a single append-only file of CRC-checked
//! records with explicit commit points and a truncate-to-last-commit
//! recovery scan.
//!
//! # File format
//!
//! ```text
//! "SQPS" version        -- 5-byte header (magic + format version)
//! record*               -- append-only records, each:
//!   varint payload-len
//!   payload             -- first byte is the record tag
//!   crc32c(payload)     -- 4 bytes little-endian (Castagnoli)
//! ```
//!
//! Payload tags: [`TAG_SNAPSHOT`] (a per-log analysis keyed by its
//! canonical identity), [`TAG_JOB`] (a completed serve job's manifest) and
//! [`TAG_COMMIT`] (sequence number + how many records it covers). Records
//! between two commits are **provisional**: a crash before the commit
//! record leaves them in the file, and the next [`SnapshotStore::open`]
//! drops them.
//!
//! # Durability protocol
//!
//! * Creating the store writes the header, `fsync`s the file, then
//!   `fsync`s the parent directory — data first, then the directory entry
//!   that names it.
//! * [`SnapshotStore::commit`] appends a commit record (whose payload
//!   cross-checks both the next sequence number and the number of records
//!   it covers), then `fsync`s file data. Nothing is durable until the
//!   commit's fsync returns.
//!
//! # Recovery
//!
//! [`SnapshotStore::open`] scans the whole file front to back, verifying
//! every record's length, checksum and decoding, and applying records to
//! the in-memory index only when their covering commit record is reached
//! intact. The first invalid point — torn length varint, short payload,
//! checksum mismatch, undecodable payload, commit-sequence gap — stops the
//! scan; the file is truncated back to the end of the **last valid
//! commit** and the [`RecoveryReport`] names exactly which byte range was
//! dropped and why. A file whose header is damaged is reinitialized from
//! scratch (reported as [`RecoveryReason::BadHeader`] with the full former
//! length dropped). `open` never panics on any input file.

use crate::faults::{self, FaultMode, FAULT_EXIT};
use sparqlog_core::analysis::{DatasetAnalysis, Population};
use sparqlog_core::recover::RecoveryPolicy;
use sparqlog_core::{LogSummary, PersistedLog, SnapshotMemo};
use sparqlog_obs as obs;
use sparqlog_shard::codec::{crc32c, Decoder, Encoder};
use sparqlog_shard::snapshot::Snapshot;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::ops::Range;
use std::path::{Path, PathBuf};

/// The store file's magic bytes.
pub const MAGIC: [u8; 4] = *b"SQPS";

/// The store format version.
pub const VERSION: u8 = 1;

/// Header length: magic + version byte.
const HEADER_LEN: u64 = 5;

/// Upper bound a record may declare for its payload — a sanity cap, far
/// above any real snapshot, matching the shard codec's frame cap.
const MAX_RECORD_BYTES: u64 = 1 << 28;

/// Record tag: a per-log `(key, summary, analysis)` snapshot.
pub const TAG_SNAPSHOT: u8 = 1;

/// Record tag: a completed job's manifest (population, policy, log list).
pub const TAG_JOB: u8 = 2;

/// Record tag: a commit point (sequence number + records covered).
pub const TAG_COMMIT: u8 = 3;

// ---------------------------------------------------------------------------
// Job records.
// ---------------------------------------------------------------------------

/// One log of a persisted job manifest: its canonical identity plus the
/// label/path needed to warm-start the job without re-hashing anything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobLog {
    /// The log's canonical identity (see `sparqlog_core::log_identity`).
    pub key: u128,
    /// The dataset label.
    pub label: String,
    /// The log's file path as submitted.
    pub path: String,
}

/// A completed job's manifest, persisted so a restarted daemon can
/// warm-start the job from its snapshot records alone.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// The population the job analysed.
    pub population: Population,
    /// The recovery policy the job ran under.
    pub recovery: RecoveryPolicy,
    /// The job's logs, in submission order.
    pub logs: Vec<JobLog>,
}

// ---------------------------------------------------------------------------
// Recovery reporting.
// ---------------------------------------------------------------------------

/// Why the recovery scan stopped where it did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryReason {
    /// The file did not exist (or was empty); a fresh header was written.
    Created,
    /// Every byte was a valid committed record — nothing dropped.
    Clean,
    /// Valid records followed the last commit but no commit covered them —
    /// a crash between append and commit.
    Uncommitted,
    /// The file ended inside a record — a torn write.
    TornRecord,
    /// A record's payload did not match its stored checksum.
    ChecksumMismatch {
        /// The checksum stored in the file.
        expected: u32,
        /// The checksum computed over the payload found.
        found: u32,
    },
    /// A record's payload was checksummed correctly but undecodable, or a
    /// commit record's cross-checks (sequence, record count) failed.
    Malformed {
        /// Human-readable detail of the decode failure.
        detail: String,
    },
    /// The header was missing or damaged; the store was reinitialized and
    /// the whole former content dropped.
    BadHeader,
}

impl RecoveryReason {
    /// A stable one-token key for structured events and metric names —
    /// unlike [`Display`](fmt::Display), never free text.
    pub fn key(&self) -> &'static str {
        match self {
            RecoveryReason::Created => "created",
            RecoveryReason::Clean => "clean",
            RecoveryReason::Uncommitted => "uncommitted",
            RecoveryReason::TornRecord => "torn-record",
            RecoveryReason::ChecksumMismatch { .. } => "checksum-mismatch",
            RecoveryReason::Malformed { .. } => "malformed",
            RecoveryReason::BadHeader => "bad-header",
        }
    }
}

impl fmt::Display for RecoveryReason {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryReason::Created => write!(out, "created"),
            RecoveryReason::Clean => write!(out, "clean"),
            RecoveryReason::Uncommitted => write!(out, "uncommitted records"),
            RecoveryReason::TornRecord => write!(out, "torn record"),
            RecoveryReason::ChecksumMismatch { expected, found } => write!(
                out,
                "checksum mismatch (stored {expected:#010x}, computed {found:#010x})"
            ),
            RecoveryReason::Malformed { detail } => write!(out, "malformed record: {detail}"),
            RecoveryReason::BadHeader => write!(out, "bad header"),
        }
    }
}

/// What [`SnapshotStore::open`] found and did — every open produces one,
/// and its [`Display`](fmt::Display) line is what the serve daemon logs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Bytes the file held when opened.
    pub file_bytes: u64,
    /// Bytes kept after recovery (the end of the last valid commit).
    pub kept_bytes: u64,
    /// The byte range dropped by recovery, if any.
    pub dropped: Option<Range<u64>>,
    /// Whole, individually-valid records inside the dropped range (a torn
    /// or corrupt tail may hide more beyond the first invalid point).
    pub dropped_records: u64,
    /// Commit records applied.
    pub commits: u64,
    /// Snapshot records loaded into the index.
    pub snapshots: u64,
    /// Job manifests loaded.
    pub jobs: u64,
    /// Why the scan stopped where it did.
    pub reason: RecoveryReason,
}

impl RecoveryReport {
    /// Whether nothing was dropped (a clean or freshly-created store).
    pub fn is_clean(&self) -> bool {
        self.dropped.is_none()
    }

    /// Bytes dropped by the recovery scan (0 on a clean open).
    pub fn dropped_bytes(&self) -> u64 {
        self.dropped
            .as_ref()
            .map(|range| range.end - range.start)
            .unwrap_or(0)
    }

    /// Flushes this report into the metric registry: every open counts,
    /// and a recovery that dropped data additionally counts its reason and
    /// the dropped bytes/records.
    fn record_metrics(&self) {
        if !obs::enabled() {
            return;
        }
        let registry = obs::global();
        registry.counter("persist_opens_total").incr();
        if !self.is_clean() {
            registry.counter("persist_recoveries_total").incr();
            registry
                .counter("persist_recovery_dropped_bytes_total")
                .add(self.dropped_bytes());
            registry
                .counter("persist_recovery_dropped_records_total")
                .add(self.dropped_records);
        }
    }
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.dropped {
            None => write!(
                out,
                "store {}: kept {} bytes, {} commits, {} snapshots, {} jobs",
                self.reason, self.kept_bytes, self.commits, self.snapshots, self.jobs
            ),
            Some(range) => write!(
                out,
                "store recovered ({}): dropped bytes {}..{} ({} whole records), \
                 kept {} bytes, {} commits, {} snapshots, {} jobs",
                self.reason,
                range.start,
                range.end,
                self.dropped_records,
                self.kept_bytes,
                self.commits,
                self.snapshots,
                self.jobs
            ),
        }
    }
}

// ---------------------------------------------------------------------------
// The store.
// ---------------------------------------------------------------------------

/// The durable snapshot store (see the [module docs](self) for the format
/// and protocol). Opened with [`SnapshotStore::open`]; appends stage
/// records, [`SnapshotStore::commit`] makes them durable.
#[derive(Debug)]
pub struct SnapshotStore {
    file: File,
    path: PathBuf,
    /// Bytes written so far, including uncommitted appends.
    length: u64,
    /// Bytes covered by the last commit (the recovery point).
    committed: u64,
    /// Sequence number of the last commit.
    seq: u64,
    /// Records appended since the last commit.
    pending: u64,
    index: HashMap<u128, PersistedLog>,
    jobs: Vec<JobRecord>,
    job_identities: HashSet<u128>,
    /// An append error deferred by the infallible [`SnapshotMemo`] hook,
    /// surfaced by the next [`SnapshotStore::commit`].
    poisoned: Option<io::Error>,
}

/// A record decoded during the recovery scan, held provisionally until its
/// covering commit record arrives intact.
enum Decoded {
    Snapshot(u128, Box<PersistedLog>),
    Job(JobRecord),
    Commit { seq: u64, records: u64 },
}

/// Why the scan stopped before the end of the file.
enum Stop {
    Torn,
    Checksum { expected: u32, found: u32 },
    Malformed { detail: String },
}

impl SnapshotStore {
    /// Opens (creating if absent) the store at `path`, running the
    /// recovery scan described in the [module docs](self). Never panics on
    /// any file content; the report says what was kept and dropped.
    pub fn open(path: impl AsRef<Path>) -> io::Result<(SnapshotStore, RecoveryReport)> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let file_bytes = bytes.len() as u64;

        // Header check: empty file → fresh store; damaged header → the
        // content is unreadable by construction, reinitialize.
        let header_ok =
            bytes.len() >= HEADER_LEN as usize && bytes[..4] == MAGIC && bytes[4] == VERSION;
        if !header_ok {
            let reason = if bytes.is_empty() {
                RecoveryReason::Created
            } else {
                RecoveryReason::BadHeader
            };
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            let mut header = MAGIC.to_vec();
            header.push(VERSION);
            file.write_all(&header)?;
            file.sync_all()?;
            sync_parent_dir(&path)?;
            let report = RecoveryReport {
                file_bytes,
                kept_bytes: HEADER_LEN,
                dropped: (file_bytes > 0).then_some(0..file_bytes),
                dropped_records: 0,
                commits: 0,
                snapshots: 0,
                jobs: 0,
                reason,
            };
            report.record_metrics();
            return Ok((SnapshotStore::fresh(file, path), report));
        }

        // Scan records, applying them only at intact commit points.
        let mut store = SnapshotStore::fresh(file, path);
        let mut offset = HEADER_LEN as usize;
        let mut provisional: Vec<Decoded> = Vec::new();
        let mut commits = 0u64;
        let mut stop: Option<Stop> = None;
        while offset < bytes.len() {
            let (payload, end) = match read_record(&bytes, offset) {
                Ok(record) => record,
                Err(found) => {
                    stop = Some(found);
                    break;
                }
            };
            match decode_record(payload) {
                Ok(Decoded::Commit { seq, records }) => {
                    if seq != store.seq + 1 {
                        stop = Some(Stop::Malformed {
                            detail: format!("commit sequence {seq} after commit {}", store.seq),
                        });
                        break;
                    }
                    if records != provisional.len() as u64 {
                        stop = Some(Stop::Malformed {
                            detail: format!(
                                "commit covers {records} records but {} were read",
                                provisional.len()
                            ),
                        });
                        break;
                    }
                    for record in provisional.drain(..) {
                        store.apply(record);
                    }
                    store.seq = seq;
                    store.committed = end as u64;
                    commits += 1;
                }
                Ok(record) => provisional.push(record),
                Err(detail) => {
                    stop = Some(Stop::Malformed { detail });
                    break;
                }
            }
            offset = end;
        }

        let dropped_records = provisional.len() as u64;
        let reason = match stop {
            None if dropped_records == 0 => RecoveryReason::Clean,
            None => RecoveryReason::Uncommitted,
            Some(Stop::Torn) => RecoveryReason::TornRecord,
            Some(Stop::Checksum { expected, found }) => {
                RecoveryReason::ChecksumMismatch { expected, found }
            }
            Some(Stop::Malformed { detail }) => RecoveryReason::Malformed { detail },
        };
        let kept = store.committed;
        if kept < file_bytes {
            // Drop the invalid tail durably so a later crash cannot
            // resurrect it behind freshly-appended records.
            store.file.set_len(kept)?;
            store.file.sync_data()?;
        }
        store.file.seek(SeekFrom::Start(kept))?;
        store.length = kept;
        let report = RecoveryReport {
            file_bytes,
            kept_bytes: kept,
            dropped: (kept < file_bytes).then_some(kept..file_bytes),
            dropped_records,
            commits,
            snapshots: store.index.len() as u64,
            jobs: store.jobs.len() as u64,
            reason,
        };
        report.record_metrics();
        Ok((store, report))
    }

    fn fresh(file: File, path: PathBuf) -> SnapshotStore {
        SnapshotStore {
            file,
            path,
            length: HEADER_LEN,
            committed: HEADER_LEN,
            seq: 0,
            pending: 0,
            index: HashMap::new(),
            jobs: Vec::new(),
            job_identities: HashSet::new(),
            poisoned: None,
        }
    }

    fn apply(&mut self, record: Decoded) {
        match record {
            Decoded::Snapshot(key, log) => {
                self.index.insert(key, *log);
            }
            Decoded::Job(job) => {
                self.job_identities.insert(job_identity(&job));
                self.jobs.push(job);
            }
            Decoded::Commit { .. } => unreachable!("commits are applied in the scan"),
        }
    }

    /// The store file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The persisted analysis for `key`, if present.
    pub fn get(&self, key: u128) -> Option<&PersistedLog> {
        self.index.get(&key)
    }

    /// Whether `key` has a persisted analysis.
    pub fn contains(&self, key: u128) -> bool {
        self.index.contains_key(&key)
    }

    /// Number of persisted per-log snapshots.
    pub fn snapshots(&self) -> usize {
        self.index.len()
    }

    /// Every persisted key, in ascending order.
    pub fn snapshot_keys(&self) -> Vec<u128> {
        let mut keys: Vec<u128> = self.index.keys().copied().collect();
        keys.sort_unstable();
        keys
    }

    /// The committed job manifests, in commit order.
    pub fn jobs(&self) -> &[JobRecord] {
        &self.jobs
    }

    /// Sequence number of the last commit (0 for a fresh store).
    pub fn sequence(&self) -> u64 {
        self.seq
    }

    /// Records appended but not yet covered by a commit.
    pub fn pending_records(&self) -> u64 {
        self.pending
    }

    /// Total bytes written, including any uncommitted tail.
    pub fn total_bytes(&self) -> u64 {
        self.length
    }

    /// Bytes covered by the last commit — what a crash right now keeps.
    pub fn committed_bytes(&self) -> u64 {
        self.committed
    }

    /// Appends a per-log snapshot under its canonical `key`. Returns
    /// `false` without writing when the key is already persisted (appends
    /// are idempotent per key). Durable only after [`SnapshotStore::commit`].
    pub fn record_snapshot(&mut self, key: u128, log: &PersistedLog) -> io::Result<bool> {
        if self.index.contains_key(&key) {
            return Ok(false);
        }
        let mut payload = Encoder::new();
        payload.put_u8(TAG_SNAPSHOT);
        payload.put_u128(key);
        log.summary.encode(&mut payload);
        log.analysis.encode(&mut payload);
        self.append_record(&payload.into_bytes())?;
        self.index.insert(key, log.clone());
        Ok(true)
    }

    /// Appends a completed job's manifest. Returns `false` without writing
    /// when an identical manifest is already persisted — resubmitting the
    /// same job after a restart is idempotent. Durable only after
    /// [`SnapshotStore::commit`].
    pub fn record_job(&mut self, job: &JobRecord) -> io::Result<bool> {
        let identity = job_identity(job);
        if self.job_identities.contains(&identity) {
            return Ok(false);
        }
        let mut payload = Encoder::new();
        payload.put_u8(TAG_JOB);
        payload.put_u8(match job.population {
            Population::Unique => 0,
            Population::Valid => 1,
        });
        payload.put_str(&job.recovery.spelling());
        payload.put_usize(job.logs.len());
        for log in &job.logs {
            payload.put_u128(log.key);
            payload.put_str(&log.label);
            payload.put_str(&log.path);
        }
        self.append_record(&payload.into_bytes())?;
        self.job_identities.insert(identity);
        self.jobs.push(job.clone());
        Ok(true)
    }

    fn append_record(&mut self, payload: &[u8]) -> io::Result<()> {
        let mut frame = Encoder::new();
        frame.put_usize(payload.len());
        let mut bytes = frame.into_bytes();
        bytes.extend_from_slice(payload);
        bytes.extend_from_slice(&crc32c(payload).to_le_bytes());
        self.file.write_all(&bytes)?;
        self.length += bytes.len() as u64;
        self.pending += 1;
        if obs::enabled() {
            let registry = obs::global();
            registry.counter("persist_records_total").incr();
            registry
                .counter("persist_appended_bytes_total")
                .add(bytes.len() as u64);
        }
        Ok(())
    }

    /// Commits every record appended since the last commit: writes the
    /// commit record, then `fsync`s file data. Surfaces any append error a
    /// [`SnapshotMemo`] hook deferred. A no-op (returning the current
    /// sequence) when nothing is pending. Returns the new sequence number.
    pub fn commit(&mut self) -> io::Result<u64> {
        if let Some(error) = self.poisoned.take() {
            return Err(error);
        }
        if self.pending == 0 {
            return Ok(self.seq);
        }
        let _commit_span = obs::global().histogram("persist_commit_us").span();
        let fault = faults::injected();
        if fault == Some(FaultMode::DieBeforeCommit) {
            // Data records are appended; the commit record never lands.
            std::process::exit(FAULT_EXIT);
        }
        let mut payload = Encoder::new();
        payload.put_u8(TAG_COMMIT);
        payload.put_varint(self.seq + 1);
        payload.put_varint(self.pending);
        let payload = payload.into_bytes();
        let mut frame = Encoder::new();
        frame.put_usize(payload.len());
        let mut bytes = frame.into_bytes();
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&crc32c(&payload).to_le_bytes());
        if fault == Some(FaultMode::DieMidFrame) {
            // A torn write: half the commit record reaches the file.
            let _ = self.file.write_all(&bytes[..bytes.len() / 2]);
            std::process::exit(FAULT_EXIT);
        }
        self.file.write_all(&bytes)?;
        if fault == Some(FaultMode::DieAfterCommitPreFsync) {
            // The commit record is in the page cache but not fsynced; a
            // process death (unlike power loss) keeps it.
            std::process::exit(FAULT_EXIT);
        }
        {
            let _fsync_span = obs::global().histogram("persist_fsync_us").span();
            self.file.sync_data()?;
        }
        if obs::enabled() {
            let registry = obs::global();
            registry.counter("persist_commits_total").incr();
            registry.counter("persist_fsyncs_total").incr();
            registry
                .counter("persist_commit_bytes_total")
                .add(self.length + bytes.len() as u64 - self.committed);
        }
        self.length += bytes.len() as u64;
        self.committed = self.length;
        self.seq += 1;
        self.pending = 0;
        if fault == Some(FaultMode::BitFlip) {
            // At-rest corruption: flip one committed bit mid-file, sync,
            // die. The next open's CRC scan must find it.
            let _ = self.flip_committed_bit();
            std::process::exit(FAULT_EXIT);
        }
        Ok(self.seq)
    }

    fn flip_committed_bit(&mut self) -> io::Result<()> {
        let span = self.committed - HEADER_LEN;
        if span == 0 {
            return Ok(());
        }
        let target = HEADER_LEN + span / 2;
        self.file.seek(SeekFrom::Start(target))?;
        let mut byte = [0u8; 1];
        self.file.read_exact(&mut byte)?;
        byte[0] ^= 1;
        self.file.seek(SeekFrom::Start(target))?;
        self.file.write_all(&byte)?;
        self.file.sync_data()
    }
}

impl SnapshotMemo for SnapshotStore {
    fn load(&mut self, key: u128) -> Option<PersistedLog> {
        self.index.get(&key).cloned()
    }

    /// Appends the snapshot; an I/O failure is deferred (the trait hook is
    /// infallible) and surfaced by the next [`SnapshotStore::commit`].
    fn record(&mut self, key: u128, log: &PersistedLog) {
        if self.poisoned.is_some() {
            return;
        }
        if let Err(error) = self.record_snapshot(key, log) {
            self.poisoned = Some(error);
        }
    }
}

// ---------------------------------------------------------------------------
// Scan primitives.
// ---------------------------------------------------------------------------

/// Reads one record at `offset`: returns its payload slice and the offset
/// just past its checksum, or why it cannot be read.
fn read_record(bytes: &[u8], offset: usize) -> Result<(&[u8], usize), Stop> {
    // Length varint, by hand: a clean EOF inside it is a torn write.
    let mut length = 0u64;
    let mut at = offset;
    loop {
        let Some(&byte) = bytes.get(at) else {
            return Err(Stop::Torn);
        };
        let shift = (at - offset) * 7;
        if shift >= 64 {
            return Err(Stop::Malformed {
                detail: "record length varint overflows".to_string(),
            });
        }
        length |= u64::from(byte & 0x7F) << shift;
        at += 1;
        if byte & 0x80 == 0 {
            break;
        }
    }
    if length > MAX_RECORD_BYTES {
        return Err(Stop::Malformed {
            detail: format!("record declares {length} bytes (cap {MAX_RECORD_BYTES})"),
        });
    }
    let payload_end = at + length as usize;
    let end = payload_end + 4;
    if end > bytes.len() {
        return Err(Stop::Torn);
    }
    let payload = &bytes[at..payload_end];
    let expected = u32::from_le_bytes(bytes[payload_end..end].try_into().expect("4 bytes"));
    let found = crc32c(payload);
    if expected != found {
        return Err(Stop::Checksum { expected, found });
    }
    Ok((payload, end))
}

/// Decodes one checksummed payload into a record, or a human-readable
/// reason it is malformed.
fn decode_record(payload: &[u8]) -> Result<Decoded, String> {
    let mut input = Decoder::new(payload);
    let decoded = (|| {
        let record = match input.take_u8()? {
            TAG_SNAPSHOT => {
                let key = input.take_u128()?;
                let summary = LogSummary::decode(&mut input)?;
                let analysis = DatasetAnalysis::decode(&mut input)?;
                Decoded::Snapshot(key, Box::new(PersistedLog { summary, analysis }))
            }
            TAG_JOB => {
                let population = match input.take_u8()? {
                    0 => Population::Unique,
                    1 => Population::Valid,
                    other => return Err(input.invalid("job population", u64::from(other))),
                };
                let spelling = input.take_str()?;
                let recovery = RecoveryPolicy::parse(&spelling)
                    .ok_or_else(|| input.invalid("job recovery policy", 0))?;
                let count = input.take_usize()?;
                let mut logs = Vec::with_capacity(count.min(1 << 16));
                for _ in 0..count {
                    logs.push(JobLog {
                        key: input.take_u128()?,
                        label: input.take_str()?,
                        path: input.take_str()?,
                    });
                }
                Decoded::Job(JobRecord {
                    population,
                    recovery,
                    logs,
                })
            }
            TAG_COMMIT => Decoded::Commit {
                seq: input.take_varint()?,
                records: input.take_varint()?,
            },
            other => return Err(input.invalid("record tag", u64::from(other))),
        };
        input.finish()?;
        Ok(record)
    })();
    decoded.map_err(|error| error.to_string())
}

/// The identity a [`JobRecord`] deduplicates under: FNV-1a over its wire
/// encoding, so "the same job" means byte-identical manifest.
fn job_identity(job: &JobRecord) -> u128 {
    let mut payload = Encoder::new();
    payload.put_u8(match job.population {
        Population::Unique => 0,
        Population::Valid => 1,
    });
    payload.put_str(&job.recovery.spelling());
    payload.put_usize(job.logs.len());
    for log in &job.logs {
        payload.put_u128(log.key);
        payload.put_str(&log.label);
        payload.put_str(&log.path);
    }
    let mut state: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    for byte in payload.into_bytes() {
        state ^= u128::from(byte);
        state = state.wrapping_mul(0x0000_0000_0100_0000_0000_0000_0000_013b);
    }
    state
}

/// `fsync`s the directory holding `path`, making the file's directory
/// entry itself durable (the second half of the data-then-directory
/// protocol).
fn sync_parent_dir(path: &Path) -> io::Result<()> {
    let parent = match path.parent() {
        Some(parent) if !parent.as_os_str().is_empty() => parent,
        _ => Path::new("."),
    };
    File::open(parent)?.sync_all()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparqlog_core::corpus::CorpusCounts;
    use sparqlog_core::recover::ErrorTally;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sparqlog-persist-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample(label: &str, fingerprint: u128) -> PersistedLog {
        PersistedLog {
            summary: LogSummary {
                label: label.to_string(),
                counts: CorpusCounts::default(),
                occurrences: vec![(fingerprint, 2)],
                errors: ErrorTally::default(),
            },
            analysis: DatasetAnalysis {
                label: label.to_string(),
                ..DatasetAnalysis::default()
            },
        }
    }

    fn sample_job() -> JobRecord {
        JobRecord {
            population: Population::Unique,
            recovery: RecoveryPolicy::Lenient,
            logs: vec![JobLog {
                key: 7,
                label: "alpha".to_string(),
                path: "/logs/alpha.log".to_string(),
            }],
        }
    }

    #[test]
    fn a_fresh_store_is_created_then_reopens_clean() {
        let dir = scratch("fresh");
        let path = dir.join("store.sqps");
        let (store, report) = SnapshotStore::open(&path).unwrap();
        assert_eq!(report.reason, RecoveryReason::Created);
        assert_eq!(report.kept_bytes, HEADER_LEN);
        assert!(report.is_clean());
        assert_eq!(store.snapshots(), 0);
        drop(store);
        let (_, report) = SnapshotStore::open(&path).unwrap();
        assert_eq!(report.reason, RecoveryReason::Clean);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn committed_records_survive_reopen_byte_for_byte() {
        let dir = scratch("roundtrip");
        let path = dir.join("store.sqps");
        let (mut store, _) = SnapshotStore::open(&path).unwrap();
        let (alpha, beta) = (sample("alpha", 11), sample("beta", 22));
        assert!(store.record_snapshot(1, &alpha).unwrap());
        assert!(store.record_snapshot(2, &beta).unwrap());
        assert!(store.record_job(&sample_job()).unwrap());
        assert_eq!(store.commit().unwrap(), 1);
        drop(store);

        let (store, report) = SnapshotStore::open(&path).unwrap();
        assert_eq!(report.reason, RecoveryReason::Clean);
        assert_eq!((report.commits, report.snapshots, report.jobs), (1, 2, 1));
        assert_eq!(store.get(1), Some(&alpha));
        assert_eq!(store.get(2), Some(&beta));
        assert_eq!(store.jobs(), &[sample_job()]);
        assert_eq!(store.sequence(), 1);
        assert_eq!(store.snapshot_keys(), vec![1, 2]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn uncommitted_records_are_dropped_and_the_range_is_named() {
        let dir = scratch("uncommitted");
        let path = dir.join("store.sqps");
        let (mut store, _) = SnapshotStore::open(&path).unwrap();
        store.record_snapshot(1, &sample("alpha", 11)).unwrap();
        store.commit().unwrap();
        let committed = store.committed_bytes();
        store.record_snapshot(2, &sample("beta", 22)).unwrap();
        let total = store.total_bytes();
        assert!(total > committed);
        drop(store); // no commit for beta

        let (store, report) = SnapshotStore::open(&path).unwrap();
        assert_eq!(report.reason, RecoveryReason::Uncommitted);
        assert_eq!(report.dropped, Some(committed..total));
        assert_eq!(report.dropped_records, 1);
        assert!(store.contains(1));
        assert!(!store.contains(2));
        assert_eq!(store.total_bytes(), committed);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_torn_tail_truncates_to_the_last_commit() {
        let dir = scratch("torn");
        let path = dir.join("store.sqps");
        let (mut store, _) = SnapshotStore::open(&path).unwrap();
        store.record_snapshot(1, &sample("alpha", 11)).unwrap();
        store.commit().unwrap();
        let committed = store.committed_bytes();
        drop(store);
        // A record declaring 32 payload bytes but delivering 3 — torn.
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(&[32, 0xAA, 0xBB, 0xCC]).unwrap();
        drop(file);

        let (store, report) = SnapshotStore::open(&path).unwrap();
        assert_eq!(report.reason, RecoveryReason::TornRecord);
        assert_eq!(report.dropped, Some(committed..committed + 4));
        assert!(store.contains(1));
        assert_eq!(std::fs::metadata(&path).unwrap().len(), committed);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_flipped_committed_bit_is_caught_by_checksum() {
        let dir = scratch("bitflip");
        let path = dir.join("store.sqps");
        let (mut store, _) = SnapshotStore::open(&path).unwrap();
        store.record_snapshot(1, &sample("alpha", 11)).unwrap();
        store.commit().unwrap();
        let first = store.committed_bytes();
        store.record_snapshot(2, &sample("beta", 22)).unwrap();
        store.commit().unwrap();
        drop(store);
        // Flip a payload bit inside the second snapshot record (skipping
        // its length varint).
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[first as usize + 3] ^= 1;
        std::fs::write(&path, &bytes).unwrap();

        let (store, report) = SnapshotStore::open(&path).unwrap();
        assert!(matches!(
            report.reason,
            RecoveryReason::ChecksumMismatch { .. }
        ));
        assert_eq!(report.kept_bytes, first);
        assert!(store.contains(1));
        assert!(!store.contains(2));

        // The store is immediately usable: re-record what was lost.
        let mut store = store;
        assert!(store.record_snapshot(2, &sample("beta", 22)).unwrap());
        store.commit().unwrap();
        let (store, report) = SnapshotStore::open(&path).unwrap();
        assert_eq!(report.reason, RecoveryReason::Clean);
        assert!(store.contains(2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_damaged_header_reinitializes_and_reports_the_loss() {
        let dir = scratch("header");
        let path = dir.join("store.sqps");
        std::fs::write(&path, b"garbage").unwrap();
        let (mut store, report) = SnapshotStore::open(&path).unwrap();
        assert_eq!(report.reason, RecoveryReason::BadHeader);
        assert_eq!(report.dropped, Some(0..7));
        store.record_snapshot(1, &sample("alpha", 11)).unwrap();
        store.commit().unwrap();
        drop(store);
        let (_, report) = SnapshotStore::open(&path).unwrap();
        assert_eq!(report.reason, RecoveryReason::Clean);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_snapshots_and_jobs_are_not_rewritten() {
        let dir = scratch("dedup");
        let path = dir.join("store.sqps");
        let (mut store, _) = SnapshotStore::open(&path).unwrap();
        assert!(store.record_snapshot(1, &sample("alpha", 11)).unwrap());
        let bytes = store.total_bytes();
        assert!(!store.record_snapshot(1, &sample("alpha", 11)).unwrap());
        assert_eq!(store.total_bytes(), bytes);
        assert!(store.record_job(&sample_job()).unwrap());
        assert!(!store.record_job(&sample_job()).unwrap());
        store.commit().unwrap();
        drop(store);
        // Idempotence holds across a reopen, too.
        let (mut store, _) = SnapshotStore::open(&path).unwrap();
        assert!(!store.record_snapshot(1, &sample("alpha", 11)).unwrap());
        assert!(!store.record_job(&sample_job()).unwrap());
        assert_eq!(store.pending_records(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn the_memo_hook_records_durably_once_committed() {
        let dir = scratch("memo");
        let path = dir.join("store.sqps");
        let (mut store, _) = SnapshotStore::open(&path).unwrap();
        let log = sample("alpha", 11);
        SnapshotMemo::record(&mut store, 42, &log);
        assert_eq!(SnapshotMemo::load(&mut store, 42), Some(log.clone()));
        store.commit().unwrap();
        drop(store);
        let (mut store, _) = SnapshotStore::open(&path).unwrap();
        assert_eq!(SnapshotMemo::load(&mut store, 42), Some(log));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn an_empty_commit_is_a_no_op() {
        let dir = scratch("empty-commit");
        let path = dir.join("store.sqps");
        let (mut store, _) = SnapshotStore::open(&path).unwrap();
        let bytes = store.total_bytes();
        assert_eq!(store.commit().unwrap(), 0);
        assert_eq!(store.total_bytes(), bytes);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_reports_render_one_line_summaries() {
        let report = RecoveryReport {
            file_bytes: 130,
            kept_bytes: 100,
            dropped: Some(100..130),
            dropped_records: 1,
            commits: 2,
            snapshots: 3,
            jobs: 1,
            reason: RecoveryReason::TornRecord,
        };
        let line = report.to_string();
        assert!(line.contains("dropped bytes 100..130"), "{line}");
        assert!(line.contains("torn record"), "{line}");
        assert!(!report.is_clean());
    }
}
