//! # sparqlog-synth
//!
//! A per-dataset calibrated synthetic SPARQL query-log generator.
//!
//! The corpus analysed in *"An Analytical Study of Large SPARQL Query Logs"*
//! (USEWOD and Openlink DBpedia logs, LSQ exports, the WikiData example
//! queries — 180 M queries in total) is not redistributable. This crate
//! stands in for it: each of the paper's 13 data sources is described by a
//! [`DatasetProfile`] encoding its *published* marginal statistics, and the
//! [`Synthesizer`] emits query streams following those marginals, including
//! duplicates, non-query garbage lines and refinement streaks. The resulting
//! corpus exercises the full analysis pipeline and reproduces the shape of
//! every table and figure in the paper at a configurable scale.
//!
//! All generation is seeded and fully deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod generator;
pub mod profile;

pub use corpus::{generate_corpus, generate_single_day_log, Corpus, CorpusConfig, DatasetLog};
pub use generator::Synthesizer;
pub use profile::{Dataset, DatasetProfile, FormMix, ModifierProbs, OperatorProbs, ShapeMix};
