//! Whole-corpus generation: one synthetic log per dataset, scaled down from
//! the Table-1 sizes so the full pipeline runs in seconds on a laptop.

use crate::generator::Synthesizer;
use crate::profile::{Dataset, DatasetProfile};
use serde::{Deserialize, Serialize};

/// Configuration for corpus generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Scale factor applied to every dataset's Table-1 size (e.g. `1e-4`
    /// produces a ~18k-entry corpus). WikiData17 is always generated in full
    /// (309 entries) because it is tiny and qualitatively different.
    pub scale: f64,
    /// Base RNG seed; each dataset derives its own seed from it.
    pub seed: u64,
    /// Upper bound on entries per dataset (guards against accidental huge
    /// runs); `0` means no cap.
    pub max_entries_per_dataset: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            scale: 1e-4,
            seed: 42,
            max_entries_per_dataset: 0,
        }
    }
}

/// One generated dataset log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetLog {
    /// Which dataset the log simulates.
    pub dataset: Dataset,
    /// The log entries (queries, duplicates and invalid lines) in order.
    pub entries: Vec<String>,
}

/// A full synthetic corpus: one log per dataset, in Table-1 order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Corpus {
    /// The configuration used.
    pub config: CorpusConfig,
    /// The per-dataset logs.
    pub logs: Vec<DatasetLog>,
}

impl Corpus {
    /// Total number of log entries across all datasets.
    pub fn total_entries(&self) -> u64 {
        self.logs.iter().map(|l| l.entries.len() as u64).sum()
    }
}

/// Generates a synthetic corpus covering all 13 datasets.
pub fn generate_corpus(config: CorpusConfig) -> Corpus {
    let logs = Dataset::ALL
        .iter()
        .enumerate()
        .map(|(i, dataset)| {
            let profile = DatasetProfile::of(*dataset);
            let mut entries = if *dataset == Dataset::WikiData17 {
                profile.total_queries
            } else {
                profile.scaled_total(config.scale)
            };
            if config.max_entries_per_dataset > 0 {
                entries = entries.min(config.max_entries_per_dataset);
            }
            let mut synth = Synthesizer::new(profile, config.seed.wrapping_add(i as u64 * 7919));
            DatasetLog {
                dataset: *dataset,
                entries: synth.generate_log(entries),
            }
        })
        .collect();
    Corpus { config, logs }
}

/// Generates a single-day style log for one dataset with approximately
/// `entries` entries — used by the streak analysis (Table 6), which the paper
/// runs on three single-day DBpedia log files.
pub fn generate_single_day_log(dataset: Dataset, entries: u64, seed: u64) -> DatasetLog {
    let mut profile = DatasetProfile::of(dataset);
    // Single-day endpoint traffic shows more refinement behaviour than the
    // deduplicated corpus: raise the streak probability.
    profile.streak_start = profile.streak_start.max(0.05);
    let mut synth = Synthesizer::new(profile, seed);
    DatasetLog {
        dataset,
        entries: synth.generate_log(entries),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_covers_all_datasets_in_order() {
        let corpus = generate_corpus(CorpusConfig {
            scale: 1e-5,
            seed: 1,
            max_entries_per_dataset: 0,
        });
        assert_eq!(corpus.logs.len(), 13);
        assert_eq!(corpus.logs[0].dataset, Dataset::DBpedia0912);
        assert_eq!(corpus.logs[12].dataset, Dataset::WikiData17);
        // WikiData is generated in full.
        assert_eq!(corpus.logs[12].entries.len(), 309);
        assert!(corpus.total_entries() > 1000);
    }

    #[test]
    fn scale_controls_corpus_size() {
        let small = generate_corpus(CorpusConfig {
            scale: 1e-6,
            seed: 1,
            max_entries_per_dataset: 0,
        });
        let large = generate_corpus(CorpusConfig {
            scale: 1e-5,
            seed: 1,
            max_entries_per_dataset: 0,
        });
        assert!(large.total_entries() > small.total_entries());
    }

    #[test]
    fn per_dataset_cap_is_respected() {
        let corpus = generate_corpus(CorpusConfig {
            scale: 1e-3,
            seed: 1,
            max_entries_per_dataset: 100,
        });
        assert!(corpus.logs.iter().all(|l| l.entries.len() <= 309));
        assert!(corpus
            .logs
            .iter()
            .filter(|l| l.dataset != Dataset::WikiData17)
            .all(|l| l.entries.len() <= 100));
    }

    #[test]
    fn corpus_generation_is_deterministic() {
        let a = generate_corpus(CorpusConfig {
            scale: 1e-6,
            seed: 9,
            max_entries_per_dataset: 0,
        });
        let b = generate_corpus(CorpusConfig {
            scale: 1e-6,
            seed: 9,
            max_entries_per_dataset: 0,
        });
        assert_eq!(a, b);
    }

    #[test]
    fn single_day_log_has_requested_size() {
        let log = generate_single_day_log(Dataset::DBpedia15, 500, 3);
        assert_eq!(log.entries.len(), 500);
        assert_eq!(log.dataset, Dataset::DBpedia15);
    }
}
