//! Dataset identities and calibrated generation profiles.
//!
//! The original study analyses 13 query logs (Table 1) that are not
//! redistributable (USEWOD and Openlink license terms). This module encodes,
//! for each log, the *published* per-dataset statistics — corpus sizes,
//! query-form mix, triples-per-query distribution, operator/modifier usage,
//! shape mix — as a [`DatasetProfile`]. The synthesizer in
//! [`crate::generator`] draws from these marginals, so a synthetic corpus
//! exercises the same code paths and reproduces the shape of every table in
//! the paper.

use serde::{Deserialize, Serialize};

/// The 13 query logs of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Dataset {
    /// DBpedia logs from USEWOD'13 (queries from 2009–2012).
    DBpedia0912,
    /// DBpedia 2013.
    DBpedia13,
    /// DBpedia 2014.
    DBpedia14,
    /// DBpedia 2015.
    DBpedia15,
    /// DBpedia 2016.
    DBpedia16,
    /// LinkedGeoData 2013.
    Lgd13,
    /// LinkedGeoData 2014.
    Lgd14,
    /// BioPortal 2013.
    BioP13,
    /// BioPortal 2014.
    BioP14,
    /// OpenBioMed 2013.
    BioMed13,
    /// Semantic Web Dog Food 2013.
    Swdf13,
    /// British Museum 2014.
    BritM14,
    /// WikiData example queries (February 2017).
    WikiData17,
}

impl Dataset {
    /// All datasets, in the order of Table 1.
    pub const ALL: [Dataset; 13] = [
        Dataset::DBpedia0912,
        Dataset::DBpedia13,
        Dataset::DBpedia14,
        Dataset::DBpedia15,
        Dataset::DBpedia16,
        Dataset::Lgd13,
        Dataset::Lgd14,
        Dataset::BioP13,
        Dataset::BioP14,
        Dataset::BioMed13,
        Dataset::Swdf13,
        Dataset::BritM14,
        Dataset::WikiData17,
    ];

    /// The label used in the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            Dataset::DBpedia0912 => "DBpedia9/12",
            Dataset::DBpedia13 => "DBpedia13",
            Dataset::DBpedia14 => "DBpedia14",
            Dataset::DBpedia15 => "DBpedia15",
            Dataset::DBpedia16 => "DBpedia16",
            Dataset::Lgd13 => "LGD13",
            Dataset::Lgd14 => "LGD14",
            Dataset::BioP13 => "BioP13",
            Dataset::BioP14 => "BioP14",
            Dataset::BioMed13 => "BioMed13",
            Dataset::Swdf13 => "SWDF13",
            Dataset::BritM14 => "BritM14",
            Dataset::WikiData17 => "WikiData17",
        }
    }

    /// The IRI namespace used for synthetic vocabulary of this dataset.
    pub fn namespace(&self) -> &'static str {
        match self {
            Dataset::DBpedia0912
            | Dataset::DBpedia13
            | Dataset::DBpedia14
            | Dataset::DBpedia15
            | Dataset::DBpedia16 => "http://dbpedia.org/ontology/",
            Dataset::Lgd13 | Dataset::Lgd14 => "http://linkedgeodata.org/ontology/",
            Dataset::BioP13 | Dataset::BioP14 => "http://bioportal.bioontology.org/ontologies/",
            Dataset::BioMed13 => "http://openbiomed.example.org/vocab/",
            Dataset::Swdf13 => "http://data.semanticweb.org/ns/swc/ontology#",
            Dataset::BritM14 => "http://collection.britishmuseum.org/id/ontology/",
            Dataset::WikiData17 => "http://www.wikidata.org/prop/direct/",
        }
    }
}

/// Per-query-form mix (fractions summing to ~1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FormMix {
    /// Fraction of SELECT queries.
    pub select: f64,
    /// Fraction of ASK queries.
    pub ask: f64,
    /// Fraction of DESCRIBE queries.
    pub describe: f64,
    /// Fraction of CONSTRUCT queries.
    pub construct: f64,
}

/// Probabilities that a query uses each solution modifier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModifierProbs {
    /// `DISTINCT`.
    pub distinct: f64,
    /// `LIMIT`.
    pub limit: f64,
    /// `OFFSET` (always emitted together with LIMIT).
    pub offset: f64,
    /// `ORDER BY`.
    pub order_by: f64,
    /// `GROUP BY` (with an aggregate in the projection).
    pub group_by: f64,
}

/// Probabilities that a query body uses each operator / feature.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatorProbs {
    /// `FILTER`.
    pub filter: f64,
    /// `OPTIONAL`.
    pub optional: f64,
    /// `UNION`.
    pub union: f64,
    /// `GRAPH`.
    pub graph: f64,
    /// `MINUS`.
    pub minus: f64,
    /// `FILTER NOT EXISTS`.
    pub not_exists: f64,
    /// `BIND`.
    pub bind: f64,
    /// Subqueries.
    pub subquery: f64,
    /// Property paths.
    pub property_path: f64,
    /// Aggregates (COUNT et al.).
    pub aggregate: f64,
    /// Non-simple filters (two-variable comparisons) given that a filter is
    /// generated.
    pub complex_filter: f64,
    /// Variable in predicate position (per triple).
    pub var_predicate: f64,
}

/// The mix of canonical-graph shapes for multi-triple CQ-like queries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShapeMix {
    /// Chain-shaped bodies.
    pub chain: f64,
    /// Star-shaped bodies.
    pub star: f64,
    /// Non-chain, non-star trees.
    pub tree: f64,
    /// Plain cycles.
    pub cycle: f64,
    /// Flowers (a petal plus chains attached to a centre).
    pub flower: f64,
}

/// The complete generation profile of one dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetProfile {
    /// Which dataset this is.
    pub dataset: Dataset,
    /// Total log entries in the real corpus (Table 1, "Total").
    pub total_queries: u64,
    /// Fraction of entries that parse as SPARQL queries ("Valid" / "Total").
    pub valid_share: f64,
    /// Fraction of valid queries that are unique ("Unique" / "Valid").
    pub unique_share: f64,
    /// Query-form mix.
    pub form_mix: FormMix,
    /// Distribution of triples per SELECT/ASK query: shares for 0, 1, …, 10
    /// and 11+ triples (12 buckets, summing to ~1).
    pub triple_buckets: [f64; 12],
    /// Mean number of triples for 11+ bucket queries.
    pub heavy_tail_mean: f64,
    /// Solution-modifier probabilities.
    pub modifiers: ModifierProbs,
    /// Operator probabilities.
    pub operators: OperatorProbs,
    /// Shape mix for multi-triple queries.
    pub shapes: ShapeMix,
    /// Fraction of DESCRIBE queries that have no body (97 % corpus-wide).
    pub describe_bodyless: f64,
    /// Probability that a query starts a refinement streak.
    pub streak_start: f64,
    /// Expected streak length (geometric distribution parameter).
    pub streak_continue: f64,
}

impl DatasetProfile {
    /// The calibrated profile of a dataset. Values follow Table 1, Figure 1,
    /// Table 2/3 and the per-dataset remarks in Sections 2 and 4 of the
    /// paper; they are target *marginals*, not exact per-query ground truth.
    pub fn of(dataset: Dataset) -> DatasetProfile {
        use Dataset::*;
        // Corpus-wide defaults, specialised per dataset below.
        let mut p = DatasetProfile {
            dataset,
            total_queries: 1_000_000,
            valid_share: 0.95,
            unique_share: 0.45,
            form_mix: FormMix {
                select: 0.88,
                ask: 0.05,
                describe: 0.045,
                construct: 0.025,
            },
            triple_buckets: [
                0.02, 0.55, 0.17, 0.08, 0.05, 0.04, 0.03, 0.02, 0.01, 0.01, 0.01, 0.01,
            ],
            heavy_tail_mean: 14.0,
            modifiers: ModifierProbs {
                distinct: 0.22,
                limit: 0.17,
                offset: 0.06,
                order_by: 0.02,
                group_by: 0.003,
            },
            operators: OperatorProbs {
                filter: 0.40,
                optional: 0.16,
                union: 0.19,
                graph: 0.03,
                minus: 0.014,
                not_exists: 0.017,
                bind: 0.008,
                subquery: 0.0054,
                property_path: 0.004,
                aggregate: 0.006,
                complex_filter: 0.16,
                var_predicate: 0.10,
            },
            shapes: ShapeMix {
                chain: 0.55,
                star: 0.25,
                tree: 0.17,
                cycle: 0.01,
                flower: 0.02,
            },
            describe_bodyless: 0.97,
            streak_start: 0.02,
            streak_continue: 0.6,
        };
        match dataset {
            DBpedia0912 => {
                p.total_queries = 28_534_301;
                p.valid_share = 0.9496;
                p.unique_share = 0.4959;
                p.form_mix = FormMix {
                    select: 0.92,
                    ask: 0.05,
                    describe: 0.02,
                    construct: 0.01,
                };
                p.modifiers.distinct = 0.18;
            }
            DBpedia13 => {
                p.total_queries = 5_243_853;
                p.valid_share = 0.9191;
                p.unique_share = 0.5452;
                p.form_mix = FormMix {
                    select: 0.90,
                    ask: 0.04,
                    describe: 0.04,
                    construct: 0.02,
                };
                p.modifiers.distinct = 0.08;
                p.modifiers.offset = 0.12;
                // DBpedia13 has the largest share of 11+-triple queries (~21%).
                p.triple_buckets = [
                    0.01, 0.40, 0.12, 0.07, 0.05, 0.04, 0.03, 0.03, 0.02, 0.01, 0.01, 0.21,
                ];
            }
            DBpedia14 => {
                p.total_queries = 37_219_788;
                p.valid_share = 0.9134;
                p.unique_share = 0.5065;
                p.form_mix = FormMix {
                    select: 0.915,
                    ask: 0.035,
                    describe: 0.04,
                    construct: 0.01,
                };
                p.modifiers.distinct = 0.11;
            }
            DBpedia15 => {
                p.total_queries = 43_478_986;
                p.valid_share = 0.9823;
                p.unique_share = 0.3103;
                p.form_mix = FormMix {
                    select: 0.815,
                    ask: 0.115,
                    describe: 0.05,
                    construct: 0.02,
                };
                p.modifiers.distinct = 0.38;
            }
            DBpedia16 => {
                p.total_queries = 15_098_176;
                p.valid_share = 0.9728;
                p.unique_share = 0.2975;
                p.form_mix = FormMix {
                    select: 0.62,
                    ask: 0.02,
                    describe: 0.34,
                    construct: 0.02,
                };
                p.modifiers.distinct = 0.08;
            }
            Lgd13 => {
                p.total_queries = 1_841_880;
                p.valid_share = 0.8219;
                p.unique_share = 0.2364;
                p.form_mix = FormMix {
                    select: 0.28,
                    ask: 0.01,
                    describe: 0.0,
                    construct: 0.71,
                };
                p.modifiers.offset = 0.13;
            }
            Lgd14 => {
                p.total_queries = 1_999_961;
                p.valid_share = 0.9646;
                p.unique_share = 0.3259;
                p.form_mix = FormMix {
                    select: 0.955,
                    ask: 0.02,
                    describe: 0.005,
                    construct: 0.02,
                };
                p.operators.filter = 0.61;
                p.operators.aggregate = 0.31;
                p.modifiers.limit = 0.41;
                p.modifiers.offset = 0.38;
                p.modifiers.group_by = 0.05;
            }
            BioP13 => {
                p.total_queries = 4_627_271;
                p.valid_share = 0.9994;
                p.unique_share = 0.1487;
                p.form_mix = FormMix {
                    select: 0.99,
                    ask: 0.01,
                    describe: 0.0,
                    construct: 0.0,
                };
                p.operators.graph = 0.80;
                p.operators.filter = 0.02;
                p.modifiers.distinct = 0.82;
                // Almost exclusively 1-2 triple queries.
                p.triple_buckets = [
                    0.01, 0.84, 0.13, 0.01, 0.005, 0.002, 0.001, 0.001, 0.001, 0.0, 0.0, 0.0,
                ];
            }
            BioP14 => {
                p.total_queries = 26_438_933;
                p.valid_share = 0.9987;
                p.unique_share = 0.0830;
                p.form_mix = FormMix {
                    select: 0.99,
                    ask: 0.007,
                    describe: 0.0,
                    construct: 0.003,
                };
                p.operators.graph = 0.40;
                p.operators.filter = 0.03;
                p.modifiers.distinct = 0.69;
                p.triple_buckets = [
                    0.01, 0.70, 0.20, 0.05, 0.02, 0.01, 0.004, 0.002, 0.002, 0.001, 0.001, 0.0,
                ];
            }
            BioMed13 => {
                p.total_queries = 883_374;
                p.valid_share = 0.9994;
                p.unique_share = 0.0306;
                p.form_mix = FormMix {
                    select: 0.105,
                    ask: 0.024,
                    describe: 0.847,
                    construct: 0.024,
                };
                p.triple_buckets = [
                    0.02, 0.45, 0.15, 0.08, 0.06, 0.05, 0.04, 0.03, 0.02, 0.02, 0.02, 0.06,
                ];
            }
            Swdf13 => {
                p.total_queries = 13_762_797;
                p.valid_share = 0.9895;
                p.unique_share = 0.0903;
                p.form_mix = FormMix {
                    select: 0.945,
                    ask: 0.016,
                    describe: 0.025,
                    construct: 0.014,
                };
                p.modifiers.limit = 0.47;
                p.triple_buckets = [
                    0.02, 0.68, 0.18, 0.06, 0.03, 0.01, 0.01, 0.004, 0.003, 0.002, 0.001, 0.0,
                ];
            }
            BritM14 => {
                p.total_queries = 1_523_827;
                p.valid_share = 0.9932;
                p.unique_share = 0.0893;
                p.form_mix = FormMix {
                    select: 0.98,
                    ask: 0.006,
                    describe: 0.01,
                    construct: 0.004,
                };
                p.modifiers.distinct = 0.97;
                // Fixed templates with many triples (Avg#T 5.47).
                p.triple_buckets = [
                    0.0, 0.05, 0.10, 0.15, 0.15, 0.15, 0.15, 0.10, 0.06, 0.04, 0.03, 0.02,
                ];
            }
            WikiData17 => {
                p.total_queries = 309;
                p.valid_share = 308.0 / 309.0;
                p.unique_share = 1.0;
                p.form_mix = FormMix {
                    select: 0.97,
                    ask: 0.027,
                    describe: 0.0,
                    construct: 0.003,
                };
                p.modifiers.order_by = 0.42;
                p.modifiers.group_by = 0.30;
                p.modifiers.limit = 0.35;
                p.operators.property_path = 0.2987;
                p.operators.subquery = 0.0974;
                p.operators.aggregate = 0.30;
                p.operators.optional = 0.45;
                p.operators.filter = 0.35;
                p.streak_start = 0.0;
                p.triple_buckets = [
                    0.0, 0.18, 0.22, 0.18, 0.12, 0.09, 0.07, 0.05, 0.03, 0.02, 0.02, 0.02,
                ];
            }
        }
        p
    }

    /// All thirteen profiles in Table-1 order.
    pub fn all() -> Vec<DatasetProfile> {
        Dataset::ALL
            .iter()
            .map(|d| DatasetProfile::of(*d))
            .collect()
    }

    /// The expected number of valid queries at a given corpus scale.
    pub fn scaled_total(&self, scale: f64) -> u64 {
        ((self.total_queries as f64) * scale).round().max(1.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_have_sane_distributions() {
        for p in DatasetProfile::all() {
            let form_sum =
                p.form_mix.select + p.form_mix.ask + p.form_mix.describe + p.form_mix.construct;
            assert!(
                (form_sum - 1.0).abs() < 0.05,
                "{:?} form mix sums to {form_sum}",
                p.dataset
            );
            let bucket_sum: f64 = p.triple_buckets.iter().sum();
            assert!(
                (bucket_sum - 1.0).abs() < 0.05,
                "{:?} buckets sum to {bucket_sum}",
                p.dataset
            );
            assert!(p.valid_share > 0.0 && p.valid_share <= 1.0);
            assert!(p.unique_share > 0.0 && p.unique_share <= 1.0);
            let shape_sum =
                p.shapes.chain + p.shapes.star + p.shapes.tree + p.shapes.cycle + p.shapes.flower;
            assert!((shape_sum - 1.0).abs() < 0.05);
        }
    }

    #[test]
    fn table1_totals_match_the_paper() {
        // The per-dataset rows of Table 1 sum to 180,653,456 (the table's
        // printed total, 180,653,910, differs from its own rows by 454).
        let total: u64 = DatasetProfile::all().iter().map(|p| p.total_queries).sum();
        assert_eq!(total, 180_653_456);
        assert_eq!(DatasetProfile::of(Dataset::WikiData17).total_queries, 309);
        assert_eq!(
            DatasetProfile::of(Dataset::DBpedia15).total_queries,
            43_478_986
        );
    }

    #[test]
    fn dataset_labels_and_namespaces() {
        assert_eq!(Dataset::DBpedia0912.label(), "DBpedia9/12");
        assert_eq!(Dataset::ALL.len(), 13);
        assert!(Dataset::WikiData17.namespace().contains("wikidata"));
        assert!(Dataset::BritM14.namespace().contains("britishmuseum"));
    }

    #[test]
    fn dataset_specific_characteristics_are_encoded() {
        // BioMed13 is dominated by DESCRIBE queries.
        assert!(DatasetProfile::of(Dataset::BioMed13).form_mix.describe > 0.8);
        // LGD13 is dominated by CONSTRUCT queries.
        assert!(DatasetProfile::of(Dataset::Lgd13).form_mix.construct > 0.7);
        // BritM14 almost always uses DISTINCT.
        assert!(DatasetProfile::of(Dataset::BritM14).modifiers.distinct > 0.9);
        // BioPortal is the GRAPH-heavy source.
        assert!(DatasetProfile::of(Dataset::BioP13).operators.graph > 0.5);
        // WikiData17 uses ORDER BY and property paths far more than others.
        let wd = DatasetProfile::of(Dataset::WikiData17);
        assert!(wd.modifiers.order_by > 0.4);
        assert!(wd.operators.property_path > 0.25);
    }

    #[test]
    fn scaling_keeps_at_least_one_query() {
        let p = DatasetProfile::of(Dataset::WikiData17);
        assert!(p.scaled_total(0.000001) >= 1);
        assert_eq!(p.scaled_total(1.0), 309);
    }
}
