//! The seeded query-log synthesizer.
//!
//! Given a [`DatasetProfile`], the synthesizer emits a stream of log entries
//! (SPARQL query strings plus a calibrated share of non-query garbage and
//! duplicates) whose marginal statistics match the published per-dataset
//! numbers: query-form mix, triples-per-query distribution, operator,
//! modifier and aggregate usage, shape mix, and refinement streaks.

use crate::profile::{Dataset, DatasetProfile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Synthesizes the log of a single dataset.
#[derive(Debug)]
pub struct Synthesizer {
    profile: DatasetProfile,
    rng: StdRng,
    /// Recently emitted queries, used for duplicates and streak seeds.
    recent: VecDeque<String>,
    /// Remaining entries of an active refinement streak.
    streak: Option<(String, u32)>,
    counter: u64,
}

/// Predicate local names used to mint dataset-specific vocabulary.
const PREDICATES: &[&str] = &[
    "label",
    "name",
    "type",
    "birthPlace",
    "deathPlace",
    "genre",
    "nationality",
    "location",
    "partOf",
    "subClassOf",
    "seeAlso",
    "creator",
    "author",
    "date",
    "population",
    "abstract",
    "homepage",
    "starring",
    "director",
    "influencedBy",
];

/// Class local names.
const CLASSES: &[&str] = &[
    "Person", "Place", "Film", "Museum", "City", "Gene", "Protein", "Event", "Work", "Species",
];

impl Synthesizer {
    /// Creates a synthesizer for a dataset with an explicit seed.
    pub fn new(profile: DatasetProfile, seed: u64) -> Synthesizer {
        Synthesizer {
            profile,
            rng: StdRng::seed_from_u64(seed),
            recent: VecDeque::with_capacity(64),
            streak: None,
            counter: 0,
        }
    }

    /// Convenience constructor from a [`Dataset`].
    pub fn for_dataset(dataset: Dataset, seed: u64) -> Synthesizer {
        Synthesizer::new(DatasetProfile::of(dataset), seed)
    }

    /// Generates `count` log entries.
    pub fn generate_log(&mut self, count: u64) -> Vec<String> {
        (0..count).map(|_| self.next_entry()).collect()
    }

    /// Generates the next log entry: an invalid line, a duplicate, a streak
    /// refinement, or a fresh query.
    pub fn next_entry(&mut self) -> String {
        self.counter += 1;
        // Continue an active streak first.
        if let Some((seed, remaining)) = self.streak.take() {
            if remaining > 0 {
                let refined = self.refine(&seed);
                self.streak = Some((refined.clone(), remaining - 1));
                self.remember(refined.clone());
                return refined;
            }
        }
        // Invalid (non-query) log entries.
        if self.rng.gen_bool(1.0 - self.profile.valid_share) {
            return self.garbage();
        }
        // Duplicates of earlier queries.
        let dup_prob = (1.0 - self.profile.unique_share).clamp(0.0, 0.95);
        if !self.recent.is_empty() && self.rng.gen_bool(dup_prob) {
            let idx = self.rng.gen_range(0..self.recent.len());
            return self.recent[idx].clone();
        }
        let query = self.fresh_query();
        // Possibly start a refinement streak from this query.
        if self.profile.streak_start > 0.0 && self.rng.gen_bool(self.profile.streak_start) {
            let mut len = 1u32;
            while self.rng.gen_bool(self.profile.streak_continue) && len < 120 {
                len += 1;
            }
            self.streak = Some((query.clone(), len));
        }
        self.remember(query.clone());
        query
    }

    fn remember(&mut self, q: String) {
        self.recent.push_back(q);
        if self.recent.len() > 64 {
            self.recent.pop_front();
        }
    }

    fn garbage(&mut self) -> String {
        match self.rng.gen_range(0..3) {
            0 => format!(
                "GET /sparql?query=SELECT%20?x%20WHERE%20%7B%7D&id={} HTTP/1.1\"",
                self.counter
            ),
            1 => format!(
                "INSERT DATA {{ <http://x/{}> <http://p> <http://o> }}",
                self.counter
            ),
            _ => format!("SELECT ?x WHERE {{ ?x <http://broken/{}> ", self.counter),
        }
    }

    /// A small textual refinement of a previous query: the kind of change a
    /// user makes while iterating on a query at an endpoint.
    fn refine(&mut self, seed: &str) -> String {
        let mut q = seed.to_string();
        match self.rng.gen_range(0..4) {
            0 => {
                // Add or bump a LIMIT.
                if let Some(pos) = q.rfind("LIMIT") {
                    q.truncate(pos);
                    q.push_str(&format!("LIMIT {}", self.rng.gen_range(1..500)));
                } else {
                    q.push_str(&format!(" LIMIT {}", self.rng.gen_range(1..500)));
                }
            }
            1 => {
                // Toggle DISTINCT.
                if q.contains("SELECT DISTINCT") {
                    q = q.replacen("SELECT DISTINCT", "SELECT", 1);
                } else {
                    q = q.replacen("SELECT", "SELECT DISTINCT", 1);
                }
            }
            2 => {
                // Change a numeric constant.
                q = q.replace("100", &format!("{}", self.rng.gen_range(2..999)));
                if !q.contains("OFFSET") {
                    q.push_str(&format!(" OFFSET {}", self.rng.gen_range(1..50)));
                }
            }
            _ => {
                // Change a resource identifier.
                let new_id = self.rng.gen_range(0..10_000);
                if let Some(start) = q.find("/resource/R") {
                    let end = q[start + 11..]
                        .find(|c: char| !c.is_ascii_digit())
                        .map(|e| start + 11 + e)
                        .unwrap_or(q.len());
                    q.replace_range(start + 11..end, &new_id.to_string());
                } else {
                    q.push(' ');
                }
            }
        }
        q
    }

    // ------------------------------------------------------------------
    // Vocabulary helpers
    // ------------------------------------------------------------------

    fn predicate(&mut self) -> String {
        let ns = self.profile.dataset.namespace();
        let p = PREDICATES[self.rng.gen_range(0..PREDICATES.len())];
        format!("<{ns}{p}>")
    }

    fn class(&mut self) -> String {
        let ns = self.profile.dataset.namespace();
        let c = CLASSES[self.rng.gen_range(0..CLASSES.len())];
        format!("<{ns}{c}>")
    }

    fn resource(&mut self) -> String {
        let ns = self.profile.dataset.namespace();
        format!("<{ns}resource/R{}>", self.rng.gen_range(0..10_000))
    }

    fn literal(&mut self) -> String {
        match self.rng.gen_range(0..3) {
            0 => format!("\"value{}\"", self.rng.gen_range(0..1000)),
            1 => format!("\"label {}\"@en", self.rng.gen_range(0..1000)),
            _ => format!("{}", self.rng.gen_range(0..5000)),
        }
    }

    // ------------------------------------------------------------------
    // Query generation
    // ------------------------------------------------------------------

    /// Generates a fresh SPARQL query following the profile.
    pub fn fresh_query(&mut self) -> String {
        let mix = self.profile.form_mix;
        let roll: f64 = self.rng.gen();
        if roll < mix.describe {
            self.describe_query()
        } else if roll < mix.describe + mix.construct {
            self.construct_query()
        } else if roll < mix.describe + mix.construct + mix.ask {
            self.ask_query()
        } else {
            self.select_query()
        }
    }

    fn describe_query(&mut self) -> String {
        if self.rng.gen_bool(self.profile.describe_bodyless) {
            format!("DESCRIBE {}", self.resource())
        } else {
            let class = self.class();
            format!(
                "DESCRIBE ?x WHERE {{ ?x a {class} }} LIMIT {}",
                self.rng.gen_range(1..100)
            )
        }
    }

    fn construct_query(&mut self) -> String {
        let p = self.predicate();
        let q = self.predicate();
        if self.rng.gen_bool(0.5) {
            format!("CONSTRUCT {{ ?s {q} ?o }} WHERE {{ ?s {p} ?o }}")
        } else {
            let r = self.resource();
            format!(
                "CONSTRUCT {{ ?s ?p ?o }} WHERE {{ ?s ?p ?o . ?s {p} {r} }} LIMIT {}",
                self.rng.gen_range(10..1000)
            )
        }
    }

    fn ask_query(&mut self) -> String {
        // Most ASK queries in real logs check a concrete triple.
        if self.rng.gen_bool(0.7) {
            let s = self.resource();
            let p = self.predicate();
            let o = if self.rng.gen_bool(0.5) {
                self.resource()
            } else {
                self.literal()
            };
            format!("ASK {{ {s} {p} {o} }}")
        } else {
            let (body, _) = self.body();
            format!("ASK {{ {body} }}")
        }
    }

    fn select_query(&mut self) -> String {
        let (body, vars) = self.body();
        let m = self.profile.modifiers;
        let ops = self.profile.operators;

        // Projection: star, all variables, or a strict subset (projection).
        let use_aggregate = self.rng.gen_bool(ops.aggregate) && !vars.is_empty();
        let group_by = use_aggregate || self.rng.gen_bool(m.group_by);
        let projection = if use_aggregate {
            let agg_var = &vars[self.rng.gen_range(0..vars.len())];
            let kind =
                ["COUNT", "COUNT", "COUNT", "MAX", "MIN", "AVG", "SUM"][self.rng.gen_range(0..7)];
            if group_by && vars.len() > 1 {
                format!("?{} ({kind}({agg_var}) AS ?agg)", grouping_var(&vars))
            } else {
                format!("({kind}({agg_var}) AS ?agg)")
            }
        } else {
            // Calibrated so that roughly 15 % of SELECT queries project a
            // strict subset of their variables (Section 4.4 of the paper).
            match self.rng.gen_range(0..20) {
                0..=6 => "*".to_string(),
                7..=15 => vars.join(" "),
                _ => {
                    let keep = self.rng.gen_range(1..=vars.len());
                    vars[..keep].join(" ")
                }
            }
        };

        let distinct = if self.rng.gen_bool(m.distinct) {
            "DISTINCT "
        } else {
            ""
        };
        let mut query = format!("SELECT {distinct}{projection} WHERE {{ {body} }}");

        if group_by && use_aggregate && vars.len() > 1 {
            query.push_str(&format!(" GROUP BY ?{}", grouping_var(&vars)));
            // HAVING is rare in the logs (0.02 % of queries, Table 2) but
            // present; attach one to a small share of grouped queries.
            if self.rng.gen_bool(0.05) {
                let agg_var = &vars[vars.len() - 1];
                query.push_str(&format!(
                    " HAVING (COUNT({agg_var}) > {})",
                    self.rng.gen_range(1..20)
                ));
            }
        }
        if self.rng.gen_bool(m.order_by) && !vars.is_empty() {
            let dir = if self.rng.gen_bool(0.5) {
                "ASC"
            } else {
                "DESC"
            };
            query.push_str(&format!(" ORDER BY {dir}({})", vars[0]));
        }
        if self.rng.gen_bool(m.limit) {
            query.push_str(&format!(" LIMIT {}", self.rng.gen_range(1..1000)));
            if self.rng.gen_bool(m.offset / m.limit.max(1e-9)) {
                query.push_str(&format!(" OFFSET {}", self.rng.gen_range(1..100)));
            }
        }
        query
    }

    /// Generates a WHERE-clause body and returns it with its variable list.
    fn body(&mut self) -> (String, Vec<String>) {
        let triples = self.sample_triple_count();
        let ops = self.profile.operators;
        let shape = self.sample_shape(triples);
        let (mut parts, mut vars) = self.shaped_triples(triples.max(1), shape);

        // FILTER
        if self.rng.gen_bool(ops.filter) && !vars.is_empty() {
            parts.push(self.filter(&vars));
        }
        // OPTIONAL
        if self.rng.gen_bool(ops.optional) && !vars.is_empty() {
            let p = self.predicate();
            let anchor = vars[self.rng.gen_range(0..vars.len())].clone();
            if vars.len() >= 2 && self.rng.gen_bool(0.03) {
                // Rarely, the OPTIONAL shares *two* variables with the outer
                // pattern — such queries have interface width 2 and fall
                // outside CQOF (the paper found 310 of them).
                let other = vars[(self.rng.gen_range(1..vars.len())
                    + vars.iter().position(|v| *v == anchor).unwrap_or(0))
                    % vars.len()]
                .clone();
                parts.push(format!("OPTIONAL {{ {anchor} {p} {other} }}"));
            } else {
                let opt_var = format!("?opt{}", self.rng.gen_range(0..9));
                parts.push(format!("OPTIONAL {{ {anchor} {p} {opt_var} }}"));
                // The optionally-bound variable is in scope, so queries
                // selecting "all variables" should list it too (keeps the
                // projection share close to the paper's Section 4.4 numbers).
                vars.push(opt_var);
            }
        }
        // FILTER EXISTS (rare, Table 2 reports 0.01 %).
        if self.rng.gen_bool(0.002) && !vars.is_empty() {
            let p = self.predicate();
            parts.push(format!("FILTER EXISTS {{ {} {p} ?ex }}", vars[0]));
        }
        // UNION
        if self.rng.gen_bool(ops.union) && !vars.is_empty() {
            let p1 = self.predicate();
            let p2 = self.predicate();
            let v = &vars[0];
            let o = self.resource();
            parts.push(format!("{{ {v} {p1} {o} }} UNION {{ {v} {p2} {o} }}"));
        }
        // GRAPH: wrap the whole body.
        let mut body = parts.join(" ");
        if self.rng.gen_bool(ops.graph) {
            let g = self.resource();
            body = format!("GRAPH {g} {{ {body} }}");
        }
        // MINUS
        if self.rng.gen_bool(ops.minus) && !vars.is_empty() {
            let p = self.predicate();
            let c = self.class();
            body.push_str(&format!(" MINUS {{ {} {p} {c} }}", vars[0]));
        }
        // NOT EXISTS
        if self.rng.gen_bool(ops.not_exists) && !vars.is_empty() {
            let p = self.predicate();
            body.push_str(&format!(" FILTER NOT EXISTS {{ {} {p} ?ne }}", vars[0]));
        }
        // BIND
        if self.rng.gen_bool(ops.bind) && !vars.is_empty() {
            body.push_str(&format!(" BIND(STR({}) AS ?bound)", vars[0]));
        }
        // Subquery
        if self.rng.gen_bool(ops.subquery) && !vars.is_empty() {
            let p = self.predicate();
            let v = &vars[0];
            body.push_str(&format!(
                " {{ SELECT {v} (COUNT(?inner) AS ?n) WHERE {{ {v} {p} ?inner }} GROUP BY {v} }}"
            ));
        }
        (body, vars)
    }

    fn filter(&mut self, vars: &[String]) -> String {
        let v = &vars[self.rng.gen_range(0..vars.len())];
        if vars.len() >= 2 && self.rng.gen_bool(self.profile.operators.complex_filter) {
            let w = &vars[(self.rng.gen_range(0..vars.len() - 1) + 1) % vars.len()];
            if self.rng.gen_bool(0.4) {
                format!("FILTER({v} = {w})")
            } else {
                format!("FILTER({v} < {w})")
            }
        } else {
            match self.rng.gen_range(0..4) {
                0 => format!("FILTER({v} > 100)"),
                1 => format!("FILTER(lang({v}) = \"en\")"),
                2 => format!(
                    "FILTER(regex(str({v}), \"pattern{}\"))",
                    self.rng.gen_range(0..50)
                ),
                _ => format!("FILTER({v} != {})", self.resource()),
            }
        }
    }

    fn sample_triple_count(&mut self) -> usize {
        let buckets = self.profile.triple_buckets;
        let total: f64 = buckets.iter().sum();
        let mut roll = self.rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
        for (i, b) in buckets.iter().enumerate() {
            if roll < *b {
                if i < 11 {
                    return i;
                }
                // Heavy tail: 11 .. ~3 × mean, geometric-ish around the mean.
                let mean = self.profile.heavy_tail_mean.max(12.0);
                let extra = self.rng.gen_range(0.0..(2.0 * (mean - 11.0)).max(1.0));
                return 11 + extra as usize;
            }
            roll -= b;
        }
        1
    }

    /// The shape of the body for the given triple count.
    fn sample_shape(&mut self, triples: usize) -> BodyShape {
        if triples <= 1 {
            return BodyShape::Chain;
        }
        let s = self.profile.shapes;
        let total = s.chain + s.star + s.tree + s.cycle + s.flower;
        let mut roll = self.rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
        for (shape, weight) in [
            (BodyShape::Chain, s.chain),
            (BodyShape::Star, s.star),
            (BodyShape::Tree, s.tree),
            (BodyShape::Cycle, s.cycle),
            (BodyShape::Flower, s.flower),
        ] {
            if roll < weight {
                // Cycles and flowers need at least 3 triples.
                if matches!(shape, BodyShape::Cycle | BodyShape::Flower) && triples < 3 {
                    return BodyShape::Chain;
                }
                return shape;
            }
            roll -= weight;
        }
        BodyShape::Chain
    }

    /// Emits `n` triple patterns of the given shape. Returns the rendered
    /// triple block (one string per `.`-joined group) and the variables used.
    fn shaped_triples(&mut self, n: usize, shape: BodyShape) -> (Vec<String>, Vec<String>) {
        let ops = self.profile.operators;
        let mut triples: Vec<(String, String, String)> = Vec::with_capacity(n);
        let var = |i: usize| format!("?x{i}");
        match shape {
            BodyShape::Chain => {
                for i in 0..n {
                    triples.push((var(i), String::new(), var(i + 1)));
                }
            }
            BodyShape::Star => {
                for i in 0..n {
                    triples.push((var(0), String::new(), var(i + 1)));
                }
            }
            BodyShape::Tree => {
                for i in 0..n {
                    let parent = if i == 0 { 0 } else { self.rng.gen_range(0..=i) };
                    triples.push((var(parent), String::new(), var(i + 1)));
                }
            }
            BodyShape::Cycle => {
                for i in 0..n {
                    triples.push((var(i), String::new(), var((i + 1) % n)));
                }
            }
            BodyShape::Flower => {
                // A petal of length 3-4 through the centre plus stamens.
                let petal = 3.min(n);
                for i in 0..petal {
                    triples.push((var(i), String::new(), var((i + 1) % petal)));
                }
                for i in petal..n {
                    triples.push((var(0), String::new(), var(i + 1)));
                }
            }
        }
        // Fill predicates, possibly variable predicates, possibly constant
        // objects (only for non-join positions: the last variable of a chain
        // or the leaves of a star keep shapes intact when replaced).
        let mut vars_used: Vec<String> = Vec::new();
        let mut rendered = Vec::with_capacity(triples.len());
        let path_roll = self.rng.gen_bool(ops.property_path);
        for (i, (s, _, o)) in triples.iter().enumerate() {
            let predicate = if self.rng.gen_bool(ops.var_predicate) {
                format!("?p{i}")
            } else if path_roll && i == 0 {
                self.property_path()
            } else if self.rng.gen_bool(0.15) {
                "a".to_string()
            } else {
                self.predicate()
            };
            let object = if self.rng.gen_bool(0.35) && is_leaf(&triples, o) {
                if predicate == "a" {
                    self.class()
                } else {
                    self.object_constant()
                }
            } else {
                o.clone()
            };
            for t in [s, &object] {
                if t.starts_with('?') && !vars_used.contains(t) {
                    vars_used.push(t.clone());
                }
            }
            rendered.push(format!("{s} {predicate} {object} ."));
        }
        if vars_used.is_empty() {
            vars_used.push("?x0".to_string());
            rendered.push(format!("?x0 {} {} .", self.predicate(), self.resource()));
        }
        (rendered, vars_used)
    }

    fn object_constant(&mut self) -> String {
        if self.rng.gen_bool(0.6) {
            self.resource()
        } else {
            self.literal()
        }
    }

    /// A property-path expression drawn from the Table-5 mix.
    fn property_path(&mut self) -> String {
        let p1 = self.predicate();
        let p2 = self.predicate();
        let p3 = self.predicate();
        match self.rng.gen_range(0..120) {
            0..=14 => format!("!{p1}"),
            15 => format!("^{p1}"),
            16..=54 => format!("({p1}|{p2})*"),
            55..=80 => format!("{p1}*"),
            81..=91 => format!("{p1}/{p2}"),
            92..=101 => format!("{p1}/{p2}*"),
            102..=109 => format!("{p1}|{p2}|{p3}"),
            110..=112 => format!("{p1}+"),
            113..=115 => format!("{p1}?/{p2}?"),
            116..=117 => format!("^{p1}/{p2}"),
            _ => format!("({p1}/{p2})*"),
        }
    }
}

fn grouping_var(vars: &[String]) -> String {
    vars[0].trim_start_matches('?').to_string()
}

fn is_leaf(triples: &[(String, String, String)], var: &str) -> bool {
    // A variable is a leaf if it occurs exactly once across all triples.
    let occurrences = triples
        .iter()
        .flat_map(|(s, _, o)| [s.as_str(), o.as_str()])
        .filter(|t| *t == var)
        .count();
    occurrences <= 1
}

/// The internal body shapes the generator produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BodyShape {
    Chain,
    Star,
    Tree,
    Cycle,
    Flower,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparqlog_algebra::QueryFeatures;
    use sparqlog_parser::parse_query;

    #[test]
    fn generated_valid_queries_parse() {
        // Garbage entries are expected to fail, but fresh queries must parse.
        for dataset in Dataset::ALL {
            let mut synth = Synthesizer::for_dataset(dataset, 99);
            for i in 0..300 {
                let q = synth.fresh_query();
                assert!(
                    parse_query(&q).is_ok(),
                    "dataset {dataset:?} query #{i} failed to parse: {q}"
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = Synthesizer::for_dataset(Dataset::DBpedia15, 7);
        let mut b = Synthesizer::for_dataset(Dataset::DBpedia15, 7);
        assert_eq!(a.generate_log(200), b.generate_log(200));
        let mut c = Synthesizer::for_dataset(Dataset::DBpedia15, 8);
        assert_ne!(a.generate_log(200), c.generate_log(200));
    }

    #[test]
    fn log_contains_expected_share_of_invalid_entries() {
        let mut synth = Synthesizer::for_dataset(Dataset::Lgd13, 3);
        let log = synth.generate_log(4000);
        let invalid = log.iter().filter(|e| parse_query(e).is_err()).count();
        let share = invalid as f64 / log.len() as f64;
        // LGD13 has ~18% invalid entries; allow a generous tolerance.
        assert!(share > 0.10 && share < 0.28, "invalid share {share}");
    }

    #[test]
    fn form_mix_roughly_matches_the_profile() {
        let mut synth = Synthesizer::for_dataset(Dataset::BioMed13, 5);
        let mut describe = 0usize;
        let mut total = 0usize;
        for _ in 0..1500 {
            let q = synth.fresh_query();
            if let Ok(parsed) = parse_query(&q) {
                total += 1;
                if parsed.form == sparqlog_parser::QueryForm::Describe {
                    describe += 1;
                }
            }
        }
        let share = describe as f64 / total as f64;
        assert!(
            share > 0.75,
            "BioMed13 should be DESCRIBE-dominated, got {share}"
        );
    }

    #[test]
    fn operator_probabilities_show_up() {
        let mut synth = Synthesizer::for_dataset(Dataset::BioP13, 11);
        let mut graph = 0usize;
        let mut total = 0usize;
        for _ in 0..800 {
            let q = synth.fresh_query();
            if let Ok(parsed) = parse_query(&q) {
                let f = QueryFeatures::of(&parsed);
                total += 1;
                if f.uses_graph {
                    graph += 1;
                }
            }
        }
        let share = graph as f64 / total as f64;
        assert!(
            share > 0.6,
            "BioPortal13 queries should be GRAPH-heavy, got {share}"
        );
    }

    #[test]
    fn duplicates_reduce_unique_share() {
        let mut synth = Synthesizer::for_dataset(Dataset::BioMed13, 13);
        let log = synth.generate_log(3000);
        let valid: Vec<&String> = log.iter().filter(|e| parse_query(e).is_ok()).collect();
        let unique: std::collections::BTreeSet<&String> = valid.iter().copied().collect();
        let share = unique.len() as f64 / valid.len() as f64;
        // BioMed13's unique share is ~3%; synthetic duplicates use a small
        // window so the share is higher, but must be far below 1.
        assert!(share < 0.5, "unique share {share}");
    }

    #[test]
    fn streaks_emit_similar_consecutive_queries() {
        let mut profile = DatasetProfile::of(Dataset::DBpedia14);
        profile.streak_start = 1.0;
        profile.streak_continue = 0.9;
        profile.valid_share = 1.0;
        profile.unique_share = 1.0;
        let mut synth = Synthesizer::new(profile, 21);
        let log = synth.generate_log(50);
        // With guaranteed streaks, consecutive entries are frequently small
        // textual modifications of each other.
        let mut similar_pairs = 0;
        for pair in log.windows(2) {
            let a = &pair[0];
            let b = &pair[1];
            let dist = strsim_like(a, b);
            if dist < 0.25 {
                similar_pairs += 1;
            }
        }
        assert!(
            similar_pairs > 10,
            "expected many near-duplicate neighbours, got {similar_pairs}"
        );
    }

    /// A crude normalized edit-distance approximation sufficient for the test
    /// (prefix/suffix agreement), avoiding a dev-dependency cycle on the
    /// streaks crate.
    fn strsim_like(a: &str, b: &str) -> f64 {
        let common_prefix = a.bytes().zip(b.bytes()).take_while(|(x, y)| x == y).count();
        let longer = a.len().max(b.len());
        1.0 - common_prefix as f64 / longer as f64
    }

    #[test]
    fn wikidata_profile_yields_paths_and_order_by() {
        let mut synth = Synthesizer::for_dataset(Dataset::WikiData17, 17);
        let mut paths = 0usize;
        let mut order_by = 0usize;
        let mut total = 0usize;
        for _ in 0..400 {
            let q = synth.fresh_query();
            if let Ok(parsed) = parse_query(&q) {
                let f = QueryFeatures::of(&parsed);
                total += 1;
                if f.uses_property_path {
                    paths += 1;
                }
                if f.uses_order_by {
                    order_by += 1;
                }
            }
        }
        assert!(paths as f64 / total as f64 > 0.1);
        assert!(order_by as f64 / total as f64 > 0.25);
    }
}
