//! The process-wide metric [`Registry`], the global enable switch, and the
//! mergeable [`MetricsSnapshot`] that crosses process boundaries and renders
//! the Prometheus-style text exposition.

use crate::metrics::{Counter, Gauge, HistogramSnapshot, LatencyHistogram};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// Tri-state enable flag: 0 = not yet resolved from the environment,
/// 1 = disabled, 2 = enabled.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Whether metrics are being recorded. The first call resolves
/// `SPARQLOG_METRICS` (`0`, `off` or `false` disable; anything else —
/// including unset — enables); after that it is a single relaxed atomic
/// load, so a disabled process pays nothing measurable per metric call.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        0 => resolve_from_env(),
        state => state == 2,
    }
}

#[cold]
fn resolve_from_env() -> bool {
    let on = !matches!(
        std::env::var("SPARQLOG_METRICS").as_deref(),
        Ok("0") | Ok("off") | Ok("false")
    );
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Overrides the enable flag in-process, taking precedence over the
/// environment. Used by tests and the overhead ablation to compare
/// enabled and disabled runs inside one process; spawned worker processes
/// still resolve from their inherited environment.
pub fn set_enabled(on: bool) {
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// The process-wide registry behind [`global`]: named counters, gauges and
/// histograms, plus every snapshot absorbed from worker processes.
/// Handles are `&'static` (leaked on first registration) so hot paths
/// hoist them once and never touch the registry lock again.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, &'static Counter>>,
    gauges: Mutex<BTreeMap<String, &'static Gauge>>,
    histograms: Mutex<BTreeMap<String, &'static LatencyHistogram>>,
    absorbed: Mutex<MetricsSnapshot>,
}

/// The process-wide registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::default)
}

impl Registry {
    /// A fresh, empty registry (tests; production code uses [`global`]).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, registered on first use. The handle is
    /// `&'static` — hoist it out of loops.
    pub fn counter(&self, name: &str) -> &'static Counter {
        let mut counters = self.counters.lock().expect("obs registry lock");
        if let Some(counter) = counters.get(name) {
            return counter;
        }
        let counter: &'static Counter = Box::leak(Box::new(Counter::new()));
        counters.insert(name.to_string(), counter);
        counter
    }

    /// The gauge named `name`, registered on first use.
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        let mut gauges = self.gauges.lock().expect("obs registry lock");
        if let Some(gauge) = gauges.get(name) {
            return gauge;
        }
        let gauge: &'static Gauge = Box::leak(Box::new(Gauge::new()));
        gauges.insert(name.to_string(), gauge);
        gauge
    }

    /// The latency histogram named `name`, registered on first use.
    pub fn histogram(&self, name: &str) -> &'static LatencyHistogram {
        let mut histograms = self.histograms.lock().expect("obs registry lock");
        if let Some(histogram) = histograms.get(name) {
            return histogram;
        }
        let histogram: &'static LatencyHistogram = Box::leak(Box::new(LatencyHistogram::new()));
        histograms.insert(name.to_string(), histogram);
        histogram
    }

    /// Folds a snapshot from another process (a shard worker's epilogue
    /// frame) into this registry. Absorbed values live beside the live
    /// metrics and appear merged in [`Registry::snapshot`]; absorption is
    /// commutative, so worker completion order never changes the result.
    pub fn absorb(&self, snapshot: &MetricsSnapshot) {
        self.absorbed
            .lock()
            .expect("obs registry lock")
            .merge(snapshot);
    }

    /// A point-in-time snapshot: every live metric with a non-zero value,
    /// merged with everything absorbed from worker processes. Sorted by
    /// name, so equal registries snapshot to equal bytes.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snapshot = MetricsSnapshot::default();
        for (name, counter) in self.counters.lock().expect("obs registry lock").iter() {
            let value = counter.value();
            if value > 0 {
                snapshot.counters.push((name.clone(), value));
            }
        }
        for (name, gauge) in self.gauges.lock().expect("obs registry lock").iter() {
            let value = gauge.value();
            if value != 0 {
                snapshot.gauges.push((name.clone(), value));
            }
        }
        for (name, histogram) in self.histograms.lock().expect("obs registry lock").iter() {
            let contents = histogram.snapshot();
            if contents.count > 0 {
                snapshot.histograms.push((name.clone(), contents));
            }
        }
        let absorbed = self.absorbed.lock().expect("obs registry lock");
        snapshot.merge(&absorbed);
        snapshot
    }

    /// Zeroes every live metric and drops everything absorbed (tests and
    /// ablation repeats). Handles stay valid.
    pub fn reset(&self) {
        for counter in self.counters.lock().expect("obs registry lock").values() {
            counter.reset();
        }
        for gauge in self.gauges.lock().expect("obs registry lock").values() {
            gauge.reset();
        }
        for histogram in self.histograms.lock().expect("obs registry lock").values() {
            histogram.reset();
        }
        *self.absorbed.lock().expect("obs registry lock") = MetricsSnapshot::default();
    }
}

/// A mergeable point-in-time copy of a registry: `(name, value)` pairs
/// sorted by name. Snapshots ride worker epilogue frames across the
/// process boundary, answer the service's `Metrics` request, and render
/// the text exposition.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter totals, ascending by name, zero values omitted.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, ascending by name, zero values omitted.
    pub gauges: Vec<(String, i64)>,
    /// Histogram contents, ascending by name, empty histograms omitted.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// Merges two sorted-by-name vectors, combining same-name values.
fn merge_sorted<T: Clone>(
    target: &mut Vec<(String, T)>,
    other: &[(String, T)],
    combine: impl Fn(&mut T, &T),
) {
    let mut merged = Vec::with_capacity(target.len() + other.len());
    let mut ours = std::mem::take(target).into_iter().peekable();
    let mut theirs = other.iter().peekable();
    loop {
        let take_ours = match (ours.peek(), theirs.peek()) {
            (Some((a, _)), Some((b, _))) => {
                if a == b {
                    let (name, mut value) = ours.next().expect("peeked");
                    let (_, addend) = theirs.next().expect("peeked");
                    combine(&mut value, addend);
                    merged.push((name, value));
                    continue;
                }
                a < b
            }
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        if take_ours {
            merged.push(ours.next().expect("peeked"));
        } else {
            merged.push(theirs.next().expect("peeked").clone());
        }
    }
    *target = merged;
}

impl MetricsSnapshot {
    /// Folds `other` into `self`: counters and gauges add, histograms
    /// merge bucket-wise. Commutative and associative.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        merge_sorted(&mut self.counters, &other.counters, |a, b| *a += *b);
        merge_sorted(&mut self.gauges, &other.gauges, |a, b| *a += *b);
        merge_sorted(&mut self.histograms, &other.histograms, |a, b| a.merge(b));
    }

    /// The counter named `name`, if it recorded anything.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|index| self.counters[index].1)
    }

    /// The gauge named `name`, if non-zero.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|index| self.gauges[index].1)
    }

    /// The histogram named `name`, if it recorded anything.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|index| &self.histograms[index].1)
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Prometheus-style text exposition: every metric prefixed
    /// `sparqlog_`, counters as `counter`, gauges as `gauge`, histograms
    /// as `summary` quantile series (p50/p90/p99) plus `_sum`, `_count`
    /// and `_max`.
    ///
    /// ```text
    /// # TYPE sparqlog_pipeline_entries_total counter
    /// sparqlog_pipeline_entries_total 100000
    /// # TYPE sparqlog_pipeline_parse_us summary
    /// sparqlog_pipeline_parse_us{quantile="0.5"} 1792
    /// sparqlog_pipeline_parse_us_sum 231731
    /// sparqlog_pipeline_parse_us_count 128
    /// sparqlog_pipeline_parse_us_max 3411
    /// ```
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "# TYPE sparqlog_{name} counter");
            let _ = writeln!(out, "sparqlog_{name} {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "# TYPE sparqlog_{name} gauge");
            let _ = writeln!(out, "sparqlog_{name} {value}");
        }
        for (name, histogram) in &self.histograms {
            let _ = writeln!(out, "# TYPE sparqlog_{name} summary");
            for (label, q) in [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99)] {
                if let Some(value) = histogram.quantile(q) {
                    let _ = writeln!(out, "sparqlog_{name}{{quantile=\"{label}\"}} {value}");
                }
            }
            let _ = writeln!(out, "sparqlog_{name}_sum {}", histogram.sum);
            let _ = writeln!(out, "sparqlog_{name}_count {}", histogram.count);
            let _ = writeln!(out, "sparqlog_{name}_max {}", histogram.max);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_hands_out_stable_handles_and_snapshots_sorted() {
        set_enabled(true);
        let registry = Registry::new();
        let a = registry.counter("zeta");
        let b = registry.counter("alpha");
        assert!(std::ptr::eq(registry.counter("zeta"), a));
        a.add(2);
        b.add(1);
        registry.gauge("open").set(3);
        registry.histogram("lat_us").record(10);
        let snapshot = registry.snapshot();
        assert_eq!(
            snapshot.counters,
            vec![("alpha".to_string(), 1), ("zeta".to_string(), 2)]
        );
        assert_eq!(snapshot.gauge("open"), Some(3));
        assert_eq!(snapshot.histogram("lat_us").unwrap().count, 1);
        registry.reset();
        assert!(registry.snapshot().is_empty());
        assert_eq!(a.value(), 0, "handles survive reset");
    }

    #[test]
    fn absorbed_snapshots_merge_into_the_registry_view() {
        set_enabled(true);
        let registry = Registry::new();
        registry.counter("pipeline_entries_total").add(10);
        let mut worker = MetricsSnapshot::default();
        worker
            .counters
            .push(("pipeline_entries_total".to_string(), 32));
        worker.counters.push(("worker_only_total".to_string(), 5));
        registry.absorb(&worker);
        registry.absorb(&worker);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("pipeline_entries_total"), Some(74));
        assert_eq!(snapshot.counter("worker_only_total"), Some(10));
    }

    #[test]
    fn snapshot_merge_is_commutative() {
        let mut left = MetricsSnapshot {
            counters: vec![("a".to_string(), 1), ("c".to_string(), 3)],
            gauges: vec![("g".to_string(), -2)],
            histograms: vec![(
                "h".to_string(),
                HistogramSnapshot {
                    count: 1,
                    sum: 5,
                    max: 5,
                    buckets: vec![(5, 1)],
                },
            )],
        };
        let right = MetricsSnapshot {
            counters: vec![("b".to_string(), 2), ("c".to_string(), 4)],
            gauges: vec![("g".to_string(), 7)],
            histograms: vec![(
                "h".to_string(),
                HistogramSnapshot {
                    count: 2,
                    sum: 20,
                    max: 12,
                    buckets: vec![(8, 2)],
                },
            )],
        };
        let mut mirrored = right.clone();
        mirrored.merge(&left.clone());
        left.merge(&right);
        assert_eq!(left, mirrored);
        assert_eq!(left.counter("c"), Some(7));
        assert_eq!(left.gauge("g"), Some(5));
        assert_eq!(left.histogram("h").unwrap().count, 3);
    }

    #[test]
    fn text_exposition_is_prometheus_shaped() {
        set_enabled(true);
        let registry = Registry::new();
        registry.counter("serve_jobs_total").add(2);
        registry.histogram("serve_recovery_us").record(100);
        let text = registry.snapshot().render_text();
        assert!(text.contains("# TYPE sparqlog_serve_jobs_total counter"));
        assert!(text.contains("sparqlog_serve_jobs_total 2"));
        assert!(text.contains("# TYPE sparqlog_serve_recovery_us summary"));
        assert!(text.contains("quantile=\"0.99\""));
        assert!(text.contains("sparqlog_serve_recovery_us_count 1"));
    }
}
