//! Dependency-free observability for the sparqlog stack: lock-free
//! [`Counter`]/[`Gauge`] tallies, a log-linear-bucket [`LatencyHistogram`]
//! (mergeable like every other tally in the system), a process-wide
//! [`Registry`] with a zero-overhead-when-disabled discipline, [`Span`]
//! timing guards, and the typed [`EventRecord`] journal schema the serve
//! daemon's event log speaks.
//!
//! # Design rules
//!
//! * **Metrics never influence results.** Instrumentation reads the
//!   pipeline; it must not perturb it. `tests/obs.rs` proves reports stay
//!   byte-identical with metrics on and off across every engine.
//! * **Disabled means free.** [`enabled`] is a single relaxed atomic load;
//!   when it is `false` a counter add is a load-and-return, and a
//!   [`Span`] never calls `Instant::now`. `SPARQLOG_METRICS=0` turns the
//!   whole layer off; [`set_enabled`] overrides in-process (tests, the
//!   overhead ablation).
//! * **Everything merges.** A worker process snapshots its registry into
//!   the epilogue frame of its result stream; the coordinator absorbs it
//!   with [`Registry::absorb`]. Histogram merge is commutative and
//!   associative — the same discipline as the report tallies.
//!
//! # Quickstart
//!
//! ```
//! use sparqlog_obs as obs;
//!
//! // Handles are `&'static` and cheap to look up; hoist them out of loops.
//! let entries = obs::global().counter("quickstart_entries_total");
//! let latency = obs::global().histogram("quickstart_parse_us");
//!
//! for _ in 0..3 {
//!     let _span = latency.span(); // records elapsed µs on drop
//!     entries.add(1);
//! }
//!
//! let snapshot = obs::global().snapshot();
//! assert_eq!(snapshot.counter("quickstart_entries_total"), Some(3));
//! let text = snapshot.render_text();
//! assert!(text.contains("sparqlog_quickstart_entries_total 3"));
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod journal;
pub mod metrics;
pub mod registry;

pub use journal::{EventRecord, ParseError};
pub use metrics::{Counter, Gauge, HistogramSnapshot, LatencyHistogram, Span};
pub use registry::{enabled, global, set_enabled, MetricsSnapshot, Registry};
