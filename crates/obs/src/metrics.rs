//! The metric primitives: sharded [`Counter`], [`Gauge`], log-linear
//! [`LatencyHistogram`] with a mergeable [`HistogramSnapshot`], and the
//! [`Span`] timing guard.
//!
//! Every primitive checks [`enabled`] on its write path, so
//! a disabled process pays one relaxed atomic load per call and nothing
//! else — no time source, no contention, no allocation.

use crate::registry::enabled;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Counter shards. A power of two so the thread-slot mask is a single AND;
/// eight 64-byte-aligned slots keep unrelated writer threads off each
/// other's cache lines without bloating idle registries.
const SHARDS: usize = 8;

/// One cache line per shard so concurrent writers do not false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
struct Padded(AtomicU64);

/// Round-robin thread→shard assignment: each thread draws a slot once and
/// keeps it for life, so a worker pool spreads evenly over the shards.
fn shard_slot() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    SLOT.with(|slot| *slot) & (SHARDS - 1)
}

/// A monotonically increasing sum, sharded across cache lines so the hot
/// worker threads never contend on one atomic.
#[derive(Debug, Default)]
pub struct Counter {
    shards: [Padded; SHARDS],
}

impl Counter {
    /// A fresh zero counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds `n` to this thread's shard. A no-op while metrics are disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if !enabled() {
            return;
        }
        self.shards[shard_slot()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Convenience for `add(1)`.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The summed value across every shard.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|shard| shard.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Resets the counter to zero (tests and ablation repeats).
    pub fn reset(&self) {
        for shard in &self.shards {
            shard.0.store(0, Ordering::Relaxed);
        }
    }
}

/// A signed up/down value (open sessions, queue depth). Gauges sit on cold
/// paths — one atomic is enough.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A fresh zero gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Adds `n` (may be negative). A no-op while metrics are disabled.
    #[inline]
    pub fn add(&self, n: i64) {
        if !enabled() {
            return;
        }
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Sets the gauge outright. A no-op while metrics are disabled.
    #[inline]
    pub fn set(&self, n: i64) {
        if !enabled() {
            return;
        }
        self.value.store(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets the gauge to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Sub-bucket resolution: 2³ = 8 linear sub-buckets per power of two, a
/// worst-case quantile error of 12.5% — plenty for latency percentiles.
const SUB_BITS: u32 = 3;
const SUBS: usize = 1 << SUB_BITS;

/// Bucket count covering the full `u64` range at `SUB_BITS` resolution:
/// values below `SUBS` map to themselves, and each of the `64 - SUB_BITS`
/// remaining octaves contributes `SUBS` buckets.
const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUBS;

/// The log-linear bucket index of `value`: exact below [`SUBS`], then
/// `SUBS` linear sub-buckets per power of two.
fn bucket_index(value: u64) -> usize {
    if value < SUBS as u64 {
        return value as usize;
    }
    let top = 63 - value.leading_zeros();
    let sub = ((value >> (top - SUB_BITS)) as usize) & (SUBS - 1);
    ((top - SUB_BITS + 1) as usize) * SUBS + sub
}

/// The inclusive lower bound of bucket `index` — the inverse of
/// [`bucket_index`] up to sub-bucket resolution.
fn bucket_bound(index: usize) -> u64 {
    if index < SUBS {
        return index as u64;
    }
    let octave = (index / SUBS) as u32;
    let sub = (index % SUBS) as u64;
    (SUBS as u64 + sub) << (octave - 1)
}

/// A log-linear latency histogram: exact counts below 8 µs, then eight
/// linear sub-buckets per power of two, covering the whole `u64` range in
/// a fixed array of atomics. Recording is wait-free; merging bucket
/// vectors is commutative and associative, so per-worker histograms fold
/// in any order to the same result — the same discipline as every report
/// tally in the system.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// A fresh empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation (microseconds by convention). A no-op while
    /// metrics are disabled.
    #[inline]
    pub fn record(&self, value: u64) {
        if !enabled() {
            return;
        }
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration, truncated to whole microseconds.
    #[inline]
    pub fn record_duration(&self, elapsed: Duration) {
        self.record(elapsed.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Starts a timing guard that records the elapsed time on drop. While
    /// metrics are disabled the guard is inert and never reads the clock.
    #[inline]
    pub fn span(&self) -> Span<'_> {
        Span {
            histogram: self,
            start: enabled().then(Instant::now),
        }
    }

    /// The current contents as a mergeable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(index, bucket)| {
                let count = bucket.load(Ordering::Relaxed);
                (count > 0).then(|| (bucket_bound(index), count))
            })
            .collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// Resets every bucket (tests and ablation repeats).
    pub fn reset(&self) {
        for bucket in self.buckets.iter() {
            bucket.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of a [`LatencyHistogram`]: total count, sum, true
/// max, and the non-empty `(bucket lower bound, count)` pairs in ascending
/// bound order. Snapshots merge commutatively, cross process boundaries in
/// worker epilogue frames, and answer quantile queries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (µs by convention).
    pub sum: u64,
    /// Largest observed value — exact, not bucket-rounded.
    pub max: u64,
    /// Non-empty buckets as `(inclusive lower bound, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Folds `other` into `self`. Commutative and associative: any merge
    /// order over any partition of the observations yields the same
    /// snapshot.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        let mut merged = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ba, ca)), Some(&&(bb, cb))) => {
                    if ba == bb {
                        merged.push((ba, ca + cb));
                        a.next();
                        b.next();
                    } else if ba < bb {
                        merged.push((ba, ca));
                        a.next();
                    } else {
                        merged.push((bb, cb));
                        b.next();
                    }
                }
                (Some(&&pair), None) => {
                    merged.push(pair);
                    a.next();
                }
                (None, Some(&&pair)) => {
                    merged.push(pair);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
    }

    /// The value at quantile `q` in `[0, 1]`, reported at bucket
    /// resolution (the lower bound of the bucket holding the target
    /// observation; the exact `max` for the top of the distribution).
    /// `None` on an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        if target >= self.count {
            return Some(self.max);
        }
        let mut seen = 0u64;
        for &(bound, count) in &self.buckets {
            seen += count;
            if seen >= target {
                return Some(bound.min(self.max));
            }
        }
        Some(self.max)
    }

    /// Mean observed value, `None` on an empty histogram.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }
}

/// A timing guard from [`LatencyHistogram::span`]: measures from creation
/// to drop and records the elapsed microseconds. Inert (no clock read at
/// either end) while metrics are disabled.
#[derive(Debug)]
pub struct Span<'a> {
    histogram: &'a LatencyHistogram,
    start: Option<Instant>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.histogram.record_duration(start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::set_enabled;

    #[test]
    fn bucket_index_and_bound_are_inverse_at_bucket_resolution() {
        for value in (0..64u32).map(|shift| 1u64 << shift).chain(0..2048) {
            let index = bucket_index(value);
            let bound = bucket_bound(index);
            assert!(bound <= value, "bound {bound} > value {value}");
            // The bucket's width is at most value / SUBS (12.5%).
            assert!(
                value - bound <= (value >> SUB_BITS),
                "value {value} bound {bound}"
            );
            assert_eq!(bucket_index(bound), index, "bound {bound} moved bucket");
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn counter_shards_sum_and_reset() {
        set_enabled(true);
        let counter = Counter::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        counter.incr();
                    }
                });
            }
        });
        assert_eq!(counter.value(), 4000);
        counter.reset();
        assert_eq!(counter.value(), 0);
    }

    #[test]
    fn disabled_primitives_record_nothing() {
        set_enabled(false);
        let counter = Counter::new();
        let gauge = Gauge::new();
        let histogram = LatencyHistogram::new();
        counter.add(5);
        gauge.add(5);
        gauge.set(9);
        histogram.record(5);
        drop(histogram.span());
        set_enabled(true);
        assert_eq!(counter.value(), 0);
        assert_eq!(gauge.value(), 0);
        assert_eq!(histogram.snapshot().count, 0);
    }

    #[test]
    fn quantiles_land_in_the_right_bucket() {
        set_enabled(true);
        let histogram = LatencyHistogram::new();
        for value in 1..=1000u64 {
            histogram.record(value);
        }
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.count, 1000);
        assert_eq!(snapshot.max, 1000);
        let p50 = snapshot.quantile(0.5).unwrap();
        assert!((440..=500).contains(&p50), "p50 {p50}");
        let p99 = snapshot.quantile(0.99).unwrap();
        assert!((900..=1000).contains(&p99), "p99 {p99}");
        assert_eq!(snapshot.quantile(1.0), Some(1000));
        assert_eq!(snapshot.mean(), Some(500.5));
    }

    #[test]
    fn snapshot_merge_equals_single_histogram() {
        set_enabled(true);
        let left = LatencyHistogram::new();
        let right = LatencyHistogram::new();
        let whole = LatencyHistogram::new();
        for value in 0..500u64 {
            left.record(value * 7);
            whole.record(value * 7);
        }
        for value in 0..500u64 {
            right.record(value * 13 + 1);
            whole.record(value * 13 + 1);
        }
        let mut ab = left.snapshot();
        ab.merge(&right.snapshot());
        let mut ba = right.snapshot();
        ba.merge(&left.snapshot());
        assert_eq!(ab, ba, "merge must be commutative");
        assert_eq!(ab, whole.snapshot(), "merge must equal the fused whole");
    }
}
