//! The structured event journal schema: a typed [`EventRecord`] over the
//! stable one-line `key=value` format the serve daemon's event log emits,
//! with a parser that understands quoting — so tools consume events through
//! typed accessors instead of scraping free text.
//!
//! The wire shape of a record is a single line of space-separated
//! `key=value` tokens. Values containing spaces or quotes render quoted
//! (`"` becomes `'`, newlines and tabs become spaces), so every line stays
//! one-line and loss-lessly parseable:
//!
//! ```text
//! t=340 seq=7 event=worker-death job=1 partition=0 attempt=0 error="exited with status 3"
//! ```
//!
//! ```
//! use sparqlog_obs::EventRecord;
//!
//! let record = EventRecord::new("partition-recovered")
//!     .with("job", 1u64)
//!     .with("partition", 0u64)
//!     .with("latency_ms", 55u64);
//! let line = record.render();
//! let parsed = EventRecord::parse(&line).unwrap();
//! assert_eq!(parsed.event(), "partition-recovered");
//! assert_eq!(parsed.u64("latency_ms"), Some(55));
//! assert_eq!(parsed, record);
//! ```

use std::fmt;

/// One structured event: ordered `key=value` fields with typed accessors.
/// Field order is preserved (events render stably), keys may repeat (the
/// accessors return the first match).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventRecord {
    fields: Vec<(String, String)>,
}

/// A structured parse failure: the byte offset and what went wrong there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the line where parsing failed.
    pub offset: usize,
    /// What was wrong.
    pub reason: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event line byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for ParseError {}

/// `true` for a key usable as a bare token: non-empty, no whitespace, no
/// `=`, no quote.
fn valid_key(key: &str) -> bool {
    !key.is_empty()
        && key
            .chars()
            .all(|ch| !ch.is_whitespace() && ch != '=' && ch != '"')
}

impl EventRecord {
    /// A record whose first field is `event=<event>` — the discriminator
    /// every journal consumer switches on.
    pub fn new(event: &str) -> EventRecord {
        EventRecord {
            fields: vec![("event".to_string(), event.to_string())],
        }
    }

    /// An empty record (for building timestamp-first lines).
    pub fn empty() -> EventRecord {
        EventRecord::default()
    }

    /// Appends a field, builder-style. `key` must be a bare token
    /// (checked in debug builds); any `Display` value is accepted and
    /// quoted on render if needed.
    pub fn with(mut self, key: &str, value: impl fmt::Display) -> EventRecord {
        self.push(key, value);
        self
    }

    /// Appends a field in place.
    pub fn push(&mut self, key: &str, value: impl fmt::Display) {
        debug_assert!(valid_key(key), "invalid event field key {key:?}");
        self.fields.push((key.to_string(), value.to_string()));
    }

    /// The first value for `key`, raw (unquoted).
    pub fn get(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(name, _)| name == key)
            .map(|(_, value)| value.as_str())
    }

    /// The first value for `key` parsed as `u64`.
    pub fn u64(&self, key: &str) -> Option<u64> {
        self.get(key)?.parse().ok()
    }

    /// The `event=` discriminator, or `""` if absent.
    pub fn event(&self) -> &str {
        self.get("event").unwrap_or("")
    }

    /// The `t=` timestamp (milliseconds since process start), if stamped.
    pub fn timestamp_ms(&self) -> Option<u64> {
        self.u64("t")
    }

    /// The `seq=` correlation id, if stamped.
    pub fn seq(&self) -> Option<u64> {
        self.u64("seq")
    }

    /// All fields in order.
    pub fn fields(&self) -> &[(String, String)] {
        &self.fields
    }

    /// Renders the one-line wire form. Values that are empty or contain
    /// whitespace or quotes render quoted, with `"` collapsed to `'` and
    /// line breaks to spaces — the same flattening the event log always
    /// applied — so the output is always a single parseable line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (index, (key, value)) in self.fields.iter().enumerate() {
            if index > 0 {
                out.push(' ');
            }
            out.push_str(key);
            out.push('=');
            let needs_quotes = value.is_empty()
                || value
                    .chars()
                    .any(|ch| ch.is_whitespace() || ch == '"' || ch == '=');
            if needs_quotes {
                out.push('"');
                for ch in value.chars() {
                    match ch {
                        '"' => out.push('\''),
                        '\n' | '\r' | '\t' => out.push(' '),
                        ch => out.push(ch),
                    }
                }
                out.push('"');
            } else {
                out.push_str(value);
            }
        }
        out
    }

    /// Parses one journal line back into a record. Understands bare and
    /// quoted values; fails with a positioned [`ParseError`] on anything
    /// else (a key without `=`, an unterminated quote).
    pub fn parse(line: &str) -> Result<EventRecord, ParseError> {
        let bytes = line.as_bytes();
        let mut fields = Vec::new();
        let mut cursor = 0usize;
        while cursor < bytes.len() {
            // Skip inter-token spaces.
            if bytes[cursor] == b' ' {
                cursor += 1;
                continue;
            }
            let key_start = cursor;
            while cursor < bytes.len() && bytes[cursor] != b'=' && bytes[cursor] != b' ' {
                cursor += 1;
            }
            if cursor >= bytes.len() || bytes[cursor] != b'=' {
                return Err(ParseError {
                    offset: key_start,
                    reason: "token without '='",
                });
            }
            let key = &line[key_start..cursor];
            if key.is_empty() {
                return Err(ParseError {
                    offset: key_start,
                    reason: "empty key",
                });
            }
            cursor += 1; // consume '='
            let value = if cursor < bytes.len() && bytes[cursor] == b'"' {
                cursor += 1;
                let value_start = cursor;
                while cursor < bytes.len() && bytes[cursor] != b'"' {
                    cursor += 1;
                }
                if cursor >= bytes.len() {
                    return Err(ParseError {
                        offset: value_start,
                        reason: "unterminated quote",
                    });
                }
                let value = &line[value_start..cursor];
                cursor += 1; // consume closing quote
                value
            } else {
                let value_start = cursor;
                while cursor < bytes.len() && bytes[cursor] != b' ' {
                    cursor += 1;
                }
                &line[value_start..cursor]
            };
            fields.push((key.to_string(), value.to_string()));
        }
        if fields.is_empty() {
            return Err(ParseError {
                offset: 0,
                reason: "no fields",
            });
        }
        Ok(EventRecord { fields })
    }
}

impl fmt::Display for EventRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_renders_and_round_trips() {
        let record = EventRecord::new("worker-start")
            .with("job", 3u64)
            .with("partition", 1u64)
            .with("attempt", 0u64)
            .with("pid", 4711u64);
        let line = record.render();
        assert_eq!(
            line,
            "event=worker-start job=3 partition=1 attempt=0 pid=4711"
        );
        assert_eq!(EventRecord::parse(&line).unwrap(), record);
    }

    #[test]
    fn quoted_values_round_trip() {
        let record = EventRecord::new("worker-death")
            .with("job", 1u64)
            .with("error", "shard 0: worker exited with status 3");
        let line = record.render();
        assert!(line.contains("error=\"shard 0: worker exited with status 3\""));
        let parsed = EventRecord::parse(&line).unwrap();
        assert_eq!(
            parsed.get("error"),
            Some("shard 0: worker exited with status 3")
        );
        assert_eq!(parsed, record);
    }

    #[test]
    fn disruptive_characters_flatten_like_the_event_log_always_did() {
        let record = EventRecord::new("e").with("msg", "a \"b\"\nc");
        let line = record.render();
        assert_eq!(line, "event=e msg=\"a 'b' c\"");
        assert_eq!(
            EventRecord::parse(&line).unwrap().get("msg"),
            Some("a 'b' c")
        );
    }

    #[test]
    fn typed_accessors_and_correlation_ids() {
        let parsed = EventRecord::parse(
            "t=340 seq=7 event=partition-recovered job=12 partition=2 latency_ms=55",
        )
        .unwrap();
        assert_eq!(parsed.timestamp_ms(), Some(340));
        assert_eq!(parsed.seq(), Some(7));
        assert_eq!(parsed.event(), "partition-recovered");
        assert_eq!(parsed.u64("job"), Some(12));
        assert_eq!(parsed.u64("latency_ms"), Some(55));
        assert_eq!(parsed.u64("missing"), None);
    }

    #[test]
    fn malformed_lines_fail_with_positions() {
        let error = EventRecord::parse("event=ok dangling").unwrap_err();
        assert_eq!(error.reason, "token without '='");
        assert_eq!(error.offset, 9);
        let error = EventRecord::parse("msg=\"unterminated").unwrap_err();
        assert_eq!(error.reason, "unterminated quote");
        assert!(EventRecord::parse("").is_err());
        assert!(EventRecord::parse("   ").is_err());
    }

    #[test]
    fn empty_values_render_quoted_and_survive() {
        let record = EventRecord::new("e").with("blank", "");
        let line = record.render();
        assert_eq!(line, "event=e blank=\"\"");
        assert_eq!(EventRecord::parse(&line).unwrap().get("blank"), Some(""));
    }
}
