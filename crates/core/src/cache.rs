//! The fingerprint-keyed analysis cache: each distinct canonical form is
//! analysed exactly once per corpus run.
//!
//! The source paper's central empirical fact is massive duplication in real
//! SPARQL logs — most entries repeat earlier queries — yet analysing the
//! "all" (Valid) population used to re-run the full [`QueryAnalysis`] (AST
//! walk, canonical-graph construction, shape / treewidth classification) for
//! every occurrence. The [`AnalysisCache`] memoizes the per-query record
//! under the 128-bit canonical fingerprint that ingestion already computes
//! for duplicate elimination, so duplicate occurrences — within a log,
//! across logs, and across the Unique/Valid population switch — fetch the
//! memoized record and fold it into the dataset tallies with one cheap
//! integer-counter pass per occurrence.
//!
//! **Soundness.** The cache key is exactly the dedup key: two queries share a
//! fingerprint iff they share a canonical form (modulo the same 128-bit
//! FNV-1a collision probability the Table-1 "Unique" numbers already accept),
//! and every measure [`QueryAnalysis::of`] computes is a function of the
//! canonical form — the only AST content canonicalization erases is the
//! prologue, which no analysis reads. Caching therefore cannot change any
//! report, which the differential tests prove corpus-wide.
//!
//! Like [`FingerprintShards`](crate::corpus::FingerprintShards), the cache is
//! **range-partitioned by the fingerprint's top bits** into lock-striped
//! shards: concurrent workers only contend when they touch the same shard,
//! any single rehash stays O(shard), and two caches (e.g. from different
//! processes in a future sharded deployment) combine with a commutative
//! shard-wise [`merge`](AnalysisCache::merge).
//!
//! ```
//! use sparqlog_core::cache::AnalysisCache;
//! use sparqlog_core::corpus::{ingest, RawLog};
//! use sparqlog_core::{CorpusAnalysis, EngineOptions, Population};
//!
//! let log = ingest(&RawLog::new(
//!     "example",
//!     vec![
//!         "SELECT ?x WHERE { ?x a <http://example.org/C> }".to_string(),
//!         "SELECT   ?x WHERE { ?x a <http://example.org/C> }".to_string(), // duplicate
//!         "ASK { ?x <http://example.org/p> ?y }".to_string(),
//!     ],
//! ));
//! let cache = AnalysisCache::new();
//! let (corpus, _) = CorpusAnalysis::analyze_cached(
//!     &[log],
//!     Population::Valid,
//!     EngineOptions::default(),
//!     &cache,
//! );
//! assert_eq!(corpus.combined.keywords.total_queries, 3); // occurrences still count
//! let stats = cache.stats();
//! assert_eq!((stats.distinct, stats.hits), (2, 1)); // but one analysis was reused
//! ```

use crate::corpus::FingerprintBuildHasher;
use crate::query_analysis::QueryAnalysis;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default shard count for [`AnalysisCache`], matching the dedup shards.
const CACHE_SHARDS: usize = 16;

/// Cumulative counters of an [`AnalysisCache`]: how many lookups were served
/// from the cache, how many had to analyse, and how many distinct canonical
/// forms the cache holds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that found a memoized analysis.
    pub hits: u64,
    /// Lookups that analysed the query (first occurrence of a fingerprint —
    /// or, rarely, a concurrent re-analysis that lost the insert race; the
    /// winning record is identical either way).
    pub misses: u64,
    /// Distinct canonical forms currently memoized.
    pub distinct: u64,
}

impl CacheStats {
    /// The share of lookups served from the cache — the corpus duplication
    /// rate as seen by the analysis engine.
    pub fn hit_rate(&self) -> f64 {
        self.hits as f64 / (self.hits + self.misses).max(1) as f64
    }
}

/// One lock-striped shard: the memo table plus its hit/miss counters.
#[derive(Debug, Default)]
struct CacheShard {
    map: Mutex<HashMap<u128, Arc<QueryAnalysis>, FingerprintBuildHasher>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A sharded, concurrent memo table mapping canonical fingerprints to their
/// [`QueryAnalysis`] records (see the [module docs](self) for the design and
/// the soundness argument).
#[derive(Debug)]
pub struct AnalysisCache {
    shards: Vec<CacheShard>,
    bits: u32,
}

impl Default for AnalysisCache {
    fn default() -> AnalysisCache {
        AnalysisCache::with_shards(CACHE_SHARDS)
    }
}

impl AnalysisCache {
    /// Creates a cache with the default shard count.
    pub fn new() -> AnalysisCache {
        AnalysisCache::default()
    }

    /// Creates a cache with `shard_count` shards, rounded up to a power of
    /// two (minimum 1).
    pub fn with_shards(shard_count: usize) -> AnalysisCache {
        let count = shard_count.max(1).next_power_of_two();
        AnalysisCache {
            shards: (0..count).map(|_| CacheShard::default()).collect(),
            bits: count.trailing_zeros(),
        }
    }

    /// The number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a fingerprint belongs to (its top bits — the same
    /// range partitioning as [`FingerprintShards`](crate::corpus::FingerprintShards)).
    pub fn shard_of(&self, fingerprint: u128) -> usize {
        if self.bits == 0 {
            0
        } else {
            (fingerprint >> (128 - self.bits)) as usize
        }
    }

    /// Returns the memoized analysis for `fingerprint`, or computes it with
    /// `analyze` and memoizes the result.
    ///
    /// The shard lock is **not** held while `analyze` runs, so two workers
    /// hitting the same cold fingerprint may both compute it; the first
    /// insert wins and both fold identical records, keeping reports
    /// deterministic for any schedule.
    pub fn get_or_insert_with(
        &self,
        fingerprint: u128,
        analyze: impl FnOnce() -> QueryAnalysis,
    ) -> Arc<QueryAnalysis> {
        let shard = &self.shards[self.shard_of(fingerprint)];
        if let Some(hit) = shard
            .map
            .lock()
            .expect("analysis cache shard poisoned")
            .get(&fingerprint)
        {
            shard.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        shard.misses.fetch_add(1, Ordering::Relaxed);
        let computed = Arc::new(analyze());
        let mut map = shard.map.lock().expect("analysis cache shard poisoned");
        Arc::clone(map.entry(fingerprint).or_insert(computed))
    }

    /// Records `occurrences` additional cache hits that were served without
    /// touching the shared table at all.
    ///
    /// The fused streaming engine ([`crate::fused`]) folds duplicates
    /// occurrence-weighted: workers count occurrences in lock-free local
    /// maps and consult the shared cache only once per distinct form per
    /// worker, so the hit/miss counters alone would no longer reflect the
    /// corpus duplication rate the way the staged engine's per-occurrence
    /// lookups do. Crediting the locally absorbed occurrences here keeps
    /// `hits + misses ==` total valid-occurrence lookups — the invariant
    /// the observability tests and harness banners rely on.
    pub fn record_reused(&self, occurrences: u64) {
        self.shards[0]
            .hits
            .fetch_add(occurrences, Ordering::Relaxed);
    }

    /// The memoized analysis for a fingerprint, if present. Does not count as
    /// a hit or a miss.
    pub fn get(&self, fingerprint: u128) -> Option<Arc<QueryAnalysis>> {
        self.shards[self.shard_of(fingerprint)]
            .map
            .lock()
            .expect("analysis cache shard poisoned")
            .get(&fingerprint)
            .cloned()
    }

    /// Number of distinct canonical forms memoized.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.map.lock().expect("analysis cache shard poisoned").len())
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the cumulative hit/miss counters and the entry count.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self
                .shards
                .iter()
                .map(|s| s.hits.load(Ordering::Relaxed))
                .sum(),
            misses: self
                .shards
                .iter()
                .map(|s| s.misses.load(Ordering::Relaxed))
                .sum(),
            distinct: self.len() as u64,
        }
    }

    /// Merges another cache into this one (shard-wise map union keeping
    /// existing entries, counters summed). Entries under the same
    /// fingerprint are interchangeable — they memoize the same canonical
    /// form — so the merge is commutative: merging per-process caches in any
    /// order yields a cache serving identical lookups. This is the
    /// cross-process reuse hook for a future sharded deployment.
    pub fn merge(&self, other: AnalysisCache) {
        for other_shard in other.shards {
            self.shards[0]
                .hits
                .fetch_add(other_shard.hits.load(Ordering::Relaxed), Ordering::Relaxed);
            self.shards[0].misses.fetch_add(
                other_shard.misses.load(Ordering::Relaxed),
                Ordering::Relaxed,
            );
            let entries = other_shard
                .map
                .into_inner()
                .expect("analysis cache shard poisoned");
            for (fingerprint, analysis) in entries {
                self.shards[self.shard_of(fingerprint)]
                    .map
                    .lock()
                    .expect("analysis cache shard poisoned")
                    .entry(fingerprint)
                    .or_insert(analysis);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparqlog_parser::parse_query;

    fn qa(text: &str) -> QueryAnalysis {
        QueryAnalysis::of(&parse_query(text).unwrap())
    }

    #[test]
    fn memoizes_per_fingerprint_and_counts_hits() {
        let cache = AnalysisCache::with_shards(4);
        let a = cache.get_or_insert_with(7, || qa("SELECT ?x WHERE { ?x a <http://C> }"));
        let b = cache.get_or_insert_with(7, || panic!("must be served from the cache"));
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.distinct), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
        assert!(cache.get(7).is_some());
        assert!(cache.get(8).is_none());
    }

    #[test]
    fn shard_boundary_fingerprints_land_in_distinct_shards() {
        let cache = AnalysisCache::with_shards(4);
        assert_eq!(cache.shard_of(0), 0);
        assert_eq!(cache.shard_of(u128::MAX), 3);
        // Fingerprints straddling a shard boundary stay distinct entries.
        let low = (1u128 << 126) - 1; // last fingerprint of shard 0
        let high = 1u128 << 126; // first fingerprint of shard 1
        cache.get_or_insert_with(low, || qa("ASK { ?x <http://p> ?y }"));
        cache.get_or_insert_with(high, || qa("ASK { ?x <http://q> ?y }"));
        assert_eq!(cache.shard_of(low), 0);
        assert_eq!(cache.shard_of(high), 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn merge_is_commutative() {
        let queries = [
            "SELECT ?x WHERE { ?x a <http://C> }",
            "ASK { ?x <http://p> ?y }",
            "DESCRIBE <http://r>",
            "SELECT ?x WHERE { ?x <http://p> <http://const> }",
        ];
        let build = |indices: &[usize]| {
            let cache = AnalysisCache::with_shards(4);
            for &i in indices {
                // Spread the keys over every shard.
                let fp = (i as u128) << 126 | i as u128;
                cache.get_or_insert_with(fp, || qa(queries[i]));
            }
            cache
        };
        let ab = build(&[0, 1]);
        ab.merge(build(&[2, 3, 0]));
        let ba = build(&[2, 3, 0]);
        ba.merge(build(&[0, 1]));
        assert_eq!(ab.len(), 4);
        assert_eq!(ab.len(), ba.len());
        for i in 0..queries.len() {
            let fp = (i as u128) << 126 | i as u128;
            let left = ab.get(fp).expect("entry present after merge");
            let right = ba.get(fp).expect("entry present after merge");
            assert_eq!(format!("{left:?}"), format!("{right:?}"), "fingerprint {i}");
        }
    }
}
