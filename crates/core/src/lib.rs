//! # sparqlog-core
//!
//! The corpus pipeline and report drivers of the `sparqlog` toolkit — the
//! primary contribution of *"An Analytical Study of Large SPARQL Query
//! Logs"* (Bonifati–Martens–Timm, VLDB 2017) turned into a reusable library:
//!
//! * [`corpus`] — log ingestion: streaming [`corpus::LogReader`]s feeding a
//!   parallel parse/fingerprint pool, validity accounting and sharded,
//!   zero-materialization duplicate elimination (Table 1).
//! * [`fused`] — the fused ingest→analyze engine
//!   ([`fused::analyze_streams`]): each batch is analysed as it parses,
//!   duplicates fold occurrence-weighted, and no query AST outlives its
//!   batch — the production path; the staged pipeline below is its
//!   differential baseline.
//! * [`incremental`] — store-aware ingestion: logs are keyed by a
//!   canonical identity (population + label + raw bytes) and served from a
//!   [`incremental::SnapshotMemo`] when already analysed — cold ingest
//!   once, warm re-serve forever, byte-identical reports either way.
//! * [`query_analysis`] — the single-pass per-query intermediate
//!   ([`QueryAnalysis`]): one AST traversal and one canonical-graph
//!   construction feed every measure.
//! * [`cache`] — the sharded, fingerprint-keyed [`cache::AnalysisCache`]:
//!   each distinct canonical form is analysed once per corpus run and
//!   duplicate occurrences fold the memoized record.
//! * [`analysis`] — the per-dataset / corpus-level analysis record combining
//!   the shallow, structural, property-path and width analyses of the paper,
//!   folded in parallel by a chunked work-stealing pool over per-worker term
//!   interners.
//! * [`baseline`] — the seed multi-walk path, kept as the reference for
//!   differential tests and benchmarks.
//! * [`recover`] — the malformed-input error model: the stable
//!   [`ErrorKind`] taxonomy, the per-log [`ErrorTally`], and the
//!   [`RecoveryPolicy`] (strict / lenient / error-budget) every engine
//!   honours identically.
//! * [`report`] — plain-text renderers, one per table and figure.
//!
//! ```
//! use sparqlog_core::{analysis::{CorpusAnalysis, Population}, corpus::{ingest, RawLog}, report};
//!
//! let log = ingest(&RawLog::new(
//!     "example",
//!     vec!["SELECT ?x WHERE { ?x a <http://example.org/C> }".to_string()],
//! ));
//! let corpus = CorpusAnalysis::analyze(&[log], Population::Unique);
//! println!("{}", report::table1(&corpus));
//! ```
//!
//! Dirty logs are first-class: in Lenient mode every malformed entry —
//! unparseable, invalid UTF-8, oversize, too deeply nested, even one that
//! panics the analyzer — is recovered and tallied per log, and a non-empty
//! tally appends an error table to the full report:
//!
//! ```
//! use sparqlog_core::corpus::{MemoryLogReader, LogReader};
//! use sparqlog_core::{analyze_streams_with, report, ErrorKind, FusedOptions, Population,
//!     RecoveryPolicy};
//!
//! let readers: Vec<Box<dyn LogReader>> = vec![Box::new(MemoryLogReader::new(
//!     "dirty",
//!     vec![
//!         "SELECT ?x WHERE { ?x a <http://example.org/C> }".to_string(),
//!         "SELECT ?x WHERE { ?x <http://p> \"unterminated".to_string(),
//!     ],
//! ))];
//! let fused = analyze_streams_with(
//!     readers,
//!     Population::Unique,
//!     FusedOptions { recovery: RecoveryPolicy::Lenient, ..FusedOptions::default() },
//! )?;
//! let tally = &fused.summaries[0].errors;
//! assert_eq!(tally.count(ErrorKind::Lex), 1);
//! assert!(report::full_report(&fused.corpus).contains("first errors: lex@1"));
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod baseline;
pub mod cache;
pub mod corpus;
pub mod fused;
pub mod incremental;
pub mod query_analysis;
pub mod recover;
pub mod report;

pub use analysis::{
    AnalysisStats, CachePolicy, CorpusAnalysis, DatasetAnalysis, EngineOptions, Population,
};
pub use cache::{AnalysisCache, CacheStats};
pub use corpus::{
    default_workers, ingest, ingest_all, ingest_all_materializing, ingest_streams,
    ingest_streams_with, CorpusCounts, FileLogReader, FingerprintShards, IngestedLog,
    LineLogReader, LogReader, MemoryLogReader, RawLog, SliceLogReader, StreamOptions,
};
pub use fused::{
    analyze_streams, analyze_streams_cached, analyze_streams_with, FusedAnalysis, FusedOptions,
    FusedStats, LogSummary,
};
pub use incremental::{
    analyze_files_incremental, file_identity, log_identity, IncrementalAnalysis, MemoStats,
    PersistedLog, SnapshotMemo,
};
pub use query_analysis::QueryAnalysis;
pub use recover::{BudgetExceeded, ErrorTally, ReaderDefect, RecoveryPolicy};
pub use sparqlog_parser::ErrorKind;
