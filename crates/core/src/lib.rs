//! # sparqlog-core
//!
//! The corpus pipeline and report drivers of the `sparqlog` toolkit — the
//! primary contribution of *"An Analytical Study of Large SPARQL Query
//! Logs"* (Bonifati–Martens–Timm, VLDB 2017) turned into a reusable library:
//!
//! * [`corpus`] — log ingestion: streaming [`corpus::LogReader`]s feeding a
//!   parallel parse/fingerprint pool, validity accounting and sharded,
//!   zero-materialization duplicate elimination (Table 1).
//! * [`fused`] — the fused ingest→analyze engine
//!   ([`fused::analyze_streams`]): each batch is analysed as it parses,
//!   duplicates fold occurrence-weighted, and no query AST outlives its
//!   batch — the production path; the staged pipeline below is its
//!   differential baseline.
//! * [`query_analysis`] — the single-pass per-query intermediate
//!   ([`QueryAnalysis`]): one AST traversal and one canonical-graph
//!   construction feed every measure.
//! * [`cache`] — the sharded, fingerprint-keyed [`cache::AnalysisCache`]:
//!   each distinct canonical form is analysed once per corpus run and
//!   duplicate occurrences fold the memoized record.
//! * [`analysis`] — the per-dataset / corpus-level analysis record combining
//!   the shallow, structural, property-path and width analyses of the paper,
//!   folded in parallel by a chunked work-stealing pool over per-worker term
//!   interners.
//! * [`baseline`] — the seed multi-walk path, kept as the reference for
//!   differential tests and benchmarks.
//! * [`report`] — plain-text renderers, one per table and figure.
//!
//! ```
//! use sparqlog_core::{analysis::{CorpusAnalysis, Population}, corpus::{ingest, RawLog}, report};
//!
//! let log = ingest(&RawLog::new(
//!     "example",
//!     vec!["SELECT ?x WHERE { ?x a <http://example.org/C> }".to_string()],
//! ));
//! let corpus = CorpusAnalysis::analyze(&[log], Population::Unique);
//! println!("{}", report::table1(&corpus));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod baseline;
pub mod cache;
pub mod corpus;
pub mod fused;
pub mod query_analysis;
pub mod report;

pub use analysis::{
    AnalysisStats, CachePolicy, CorpusAnalysis, DatasetAnalysis, EngineOptions, Population,
};
pub use cache::{AnalysisCache, CacheStats};
pub use corpus::{
    default_workers, ingest, ingest_all, ingest_all_materializing, ingest_streams,
    ingest_streams_with, CorpusCounts, FileLogReader, FingerprintShards, IngestedLog,
    LineLogReader, LogReader, MemoryLogReader, RawLog, SliceLogReader, StreamOptions,
};
pub use fused::{
    analyze_streams, analyze_streams_cached, analyze_streams_with, FusedAnalysis, FusedOptions,
    FusedStats, LogSummary,
};
pub use query_analysis::QueryAnalysis;
