//! # sparqlog-core
//!
//! The corpus pipeline and report drivers of the `sparqlog` toolkit — the
//! primary contribution of *"An Analytical Study of Large SPARQL Query
//! Logs"* (Bonifati–Martens–Timm, VLDB 2017) turned into a reusable library:
//!
//! * [`corpus`] — log ingestion: parsing, validity accounting and duplicate
//!   elimination (Table 1).
//! * [`analysis`] — the per-dataset / corpus-level analysis record combining
//!   the shallow, structural, property-path and width analyses of the paper.
//! * [`report`] — plain-text renderers, one per table and figure.
//!
//! ```
//! use sparqlog_core::{analysis::{CorpusAnalysis, Population}, corpus::{ingest, RawLog}, report};
//!
//! let log = ingest(&RawLog::new(
//!     "example",
//!     vec!["SELECT ?x WHERE { ?x a <http://example.org/C> }".to_string()],
//! ));
//! let corpus = CorpusAnalysis::analyze(&[log], Population::Unique);
//! println!("{}", report::table1(&corpus));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod corpus;
pub mod report;

pub use analysis::{CorpusAnalysis, DatasetAnalysis, Population};
pub use corpus::{ingest, ingest_all, CorpusCounts, IngestedLog, RawLog};
