//! The fused ingest→analyze streaming engine: each batch is analysed as it
//! parses, and no query AST ever outlives its batch.
//!
//! The staged pipeline ([`ingest_streams`](crate::corpus::ingest_streams)
//! followed by
//! [`CorpusAnalysis::analyze_cached`](crate::analysis::CorpusAnalysis::analyze_cached))
//! materializes every valid query's AST in
//! [`IngestedLog::valid_queries`](crate::corpus::IngestedLog) before the
//! analysis engine runs — a two-phase design whose peak memory is
//! O(corpus) and whose parse pool idles during analysis (and vice versa).
//! [`analyze_streams`] fuses the phases into one self-scheduling worker
//! pool: workers pull batches from [`LogReader`]s, parse each entry,
//! fingerprint its canonical form, and immediately resolve the occurrence
//! against a lock-free per-worker occurrence map backed by the shared
//! [`AnalysisCache`]:
//!
//! * a **first occurrence** is analysed on the spot (one
//!   [`QueryAnalysis`] through the worker's term
//!   [`Interner`](sparqlog_parser::intern)) and memoized under its
//!   fingerprint — only the fingerprint and the analysis survive;
//! * a **duplicate occurrence** bumps a per-worker occurrence counter and
//!   its AST is dropped right there — it is never pushed into a
//!   corpus-wide vec, never re-fingerprinted, never re-folded.
//!
//! After the stream drains, per-worker occurrence maps merge into per-log
//! [`LogSummary`] records (Table-1 counts plus the distinct fingerprints
//! with their occurrence counts — the shard-ready replacement for AST
//! retention), and one **occurrence-weighted fold**
//! ([`DatasetAnalysis::add_times`]) builds the corpus analysis: the Unique
//! population folds each distinct fingerprint once per log, the Valid
//! population folds it with its occurrence count. Peak residency is
//! O(in-flight batches + distinct analyses) instead of O(corpus), each
//! worker holds at most one AST at a time, and parse/analyze overlap
//! recovers the wall-clock the staged pipeline wastes at its phase
//! barrier.
//!
//! **Determinism and parity.** Every fold is a commutative sum or an
//! idempotent extremum over exact integers, so reports are byte-identical
//! for any worker count, batch size or schedule — and byte-identical to
//! the staged pipeline's, which survives as the differential baseline
//! (`tests/fused.rs`, the `ablation_fused` harness). The soundness of
//! folding a memoized record for every occurrence is the cache-key
//! argument of [`crate::cache`]: the fingerprint *is* the canonical form.
//!
//! ```
//! use sparqlog_core::corpus::{analyze_streams, LogReader, MemoryLogReader};
//! use sparqlog_core::{report, Population};
//!
//! let readers: Vec<Box<dyn LogReader>> = vec![Box::new(MemoryLogReader::new(
//!     "example",
//!     vec![
//!         "SELECT ?x WHERE { ?x a <http://example.org/C> }".to_string(),
//!         "SELECT   ?x WHERE { ?x a <http://example.org/C> }".to_string(), // duplicate
//!         "ASK { ?x <http://example.org/p> ?y }".to_string(),
//!         "not a query".to_string(),
//!     ],
//! ))];
//! let fused = analyze_streams(readers, Population::Valid).expect("in-memory streams");
//! assert_eq!(fused.summaries[0].counts.valid, 3);
//! assert_eq!(fused.summaries[0].counts.unique, 2);
//! assert_eq!(fused.corpus.combined.keywords.total_queries, 3);
//! println!("{}", report::table1(&fused.corpus));
//! ```

use crate::analysis::{
    chunked_fold_pool, merge_into_corpus, AnalysisStats, CorpusAnalysis, DatasetAnalysis,
    Population,
};
use crate::cache::AnalysisCache;
use crate::corpus::{
    clamp_workers, default_workers, BatchSource, CorpusCounts, FingerprintBuildHasher, LogReader,
    INGEST_CHUNK,
};
use crate::query_analysis::QueryAnalysis;
use crate::recover::{enforce_budget, ErrorTally, RecoveryContext, RecoveryPolicy};
use serde::{Deserialize, Serialize};
use sparqlog_obs as obs;
use sparqlog_parser::intern::{InternStats, Interner};
use sparqlog_parser::{canonical_fingerprint_of_ref, Arena, ErrorKind};
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Tuning knobs for the fused engine. The report never depends on them —
/// only the schedule and the memory profile do.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusedOptions {
    /// Worker threads; `0` uses [`default_workers`] (which honours the
    /// `SPARQLOG_WORKERS` environment override).
    pub workers: usize,
    /// Entries per batch pulled from a reader; `0` picks the default (512).
    pub batch: usize,
    /// What to do on defective entries (invalid UTF-8 lines, tripped
    /// resource guards, caught panics); see [`RecoveryPolicy`].
    pub recovery: RecoveryPolicy,
}

impl FusedOptions {
    fn resolve(&self) -> (usize, usize) {
        (
            if self.workers > 0 {
                self.workers
            } else {
                default_workers()
            },
            if self.batch > 0 {
                self.batch
            } else {
                INGEST_CHUNK
            },
        )
    }
}

/// What the fused engine keeps per log instead of the ASTs: the Table-1
/// counts and the distinct canonical fingerprints with their occurrence
/// counts. Two summaries of the same log shards merge by summing matching
/// fingerprints, which is what a future cross-process deployment combines.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogSummary {
    /// The dataset label.
    pub label: String,
    /// Table-1 counts (`unique` is the number of distinct fingerprints,
    /// `valid` the sum of their occurrence counts).
    pub counts: CorpusCounts,
    /// `(fingerprint, occurrences)` for every distinct canonical form, in
    /// ascending fingerprint order (deterministic for any schedule).
    pub occurrences: Vec<(u128, u64)>,
    /// The malformed-entry tally of this log: per-kind counts and the
    /// earliest offending entry positions, identical for every engine,
    /// worker count and batch schedule.
    pub errors: ErrorTally,
}

impl LogSummary {
    /// Merges another summary of the **same log** (e.g. one produced by a
    /// different process over a different slice of the log's entries):
    /// `total`, `valid` and `bodyless` add, matching fingerprints sum their
    /// occurrence counts, and `unique` is recomputed from the merged
    /// distinct set. The operation is commutative and keeps the sorted-order
    /// invariant of [`LogSummary::occurrences`], so per-shard summaries can
    /// be combined in any order with identical results — the cross-process
    /// merge hook of the `sparqlog-shard` subsystem.
    pub fn merge(&mut self, other: &LogSummary) {
        debug_assert_eq!(
            self.label, other.label,
            "LogSummary::merge combines shards of one log"
        );
        let mut merged = Vec::with_capacity(self.occurrences.len() + other.occurrences.len());
        let (mut left, mut right) = (self.occurrences.iter(), other.occurrences.iter());
        let (mut a, mut b) = (left.next(), right.next());
        loop {
            match (a, b) {
                (Some(&(fa, ca)), Some(&(fb, cb))) => {
                    if fa < fb {
                        merged.push((fa, ca));
                        a = left.next();
                    } else if fb < fa {
                        merged.push((fb, cb));
                        b = right.next();
                    } else {
                        merged.push((fa, ca + cb));
                        a = left.next();
                        b = right.next();
                    }
                }
                (Some(&pair), None) => {
                    merged.push(pair);
                    a = left.next();
                }
                (None, Some(&pair)) => {
                    merged.push(pair);
                    b = right.next();
                }
                (None, None) => break,
            }
        }
        self.occurrences = merged;
        self.counts.total += other.counts.total;
        self.counts.valid += other.counts.valid;
        self.counts.bodyless += other.counts.bodyless;
        self.counts.unique = self.occurrences.len() as u64;
        self.errors.merge(&other.errors);
    }

    /// The occurrence count of a fingerprint, or 0 if the log never saw it.
    pub fn occurrences_of(&self, fingerprint: u128) -> u64 {
        self.occurrences
            .binary_search_by_key(&fingerprint, |&(fp, _)| fp)
            .map(|i| self.occurrences[i].1)
            .unwrap_or(0)
    }
}

/// Residency observability of one fused run — evidence for the
/// O(in-flight + distinct) memory claim, printed by the `ablation_fused`
/// harness. Never part of the corpus report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FusedStats {
    /// Batches pulled from the readers.
    pub batches: u64,
    /// The largest number of raw entries resident in worker batches at any
    /// instant — the in-flight bound (≤ workers × batch size) that replaces
    /// the staged pipeline's O(corpus) residency. Each worker additionally
    /// holds at most **one** parsed AST at a time.
    pub peak_inflight_entries: usize,
    /// Distinct canonical forms seen by *this run's* streams (what survives
    /// the stream) — not the size of the backing cache, which may carry
    /// entries from other corpora when the caller shares it across runs.
    pub distinct_forms: u64,
}

/// The result of a fused run: per-log summaries (counts + fingerprints),
/// the corpus analysis over the requested population, and the run's
/// cache/interner/residency counters.
#[derive(Debug, Clone)]
pub struct FusedAnalysis {
    /// Per-log summaries, in reader order.
    pub summaries: Vec<LogSummary>,
    /// The corpus analysis (byte-identical to the staged pipeline's).
    pub corpus: CorpusAnalysis,
    /// Cache and interner counters of the run.
    pub stats: AnalysisStats,
    /// Residency counters of the run.
    pub fused: FusedStats,
}

/// One worker's private state: lock-free per-log occurrence maps, the term
/// interner threaded through every analysis, the bump arena every AST is
/// parsed into, and the number of shared-cache consultations
/// (first-local-occurrence lookups).
struct FusedWorker {
    counts: Vec<HashMap<u128, u64, FingerprintBuildHasher>>,
    tallies: Vec<ErrorTally>,
    interner: Interner,
    arena: Arena,
    lookups: u64,
    /// Analyze-stage latency, recorded only on cache misses (first
    /// occurrence of a canonical form), so duplicates stay untimed.
    analyze_us: &'static obs::LatencyHistogram,
}

impl FusedWorker {
    fn new(log_count: usize) -> FusedWorker {
        FusedWorker {
            counts: (0..log_count).map(|_| HashMap::default()).collect(),
            tallies: vec![ErrorTally::default(); log_count],
            interner: Interner::new(),
            arena: Arena::new(),
            lookups: 0,
            analyze_us: obs::global().histogram("pipeline_analyze_us"),
        }
    }

    /// Parses, fingerprints and resolves one batch. Each valid entry's AST
    /// is bump-allocated into the worker's arena and lives exactly as long
    /// as this loop's iteration: the arena is reset before the next entry
    /// parses, so a first occurrence is analysed into the cache (fingerprint
    /// and analysis own their data), a duplicate only bumps the local
    /// counter, and steady-state parsing touches the global allocator only
    /// when a canonical form is new.
    ///
    /// Every entry parses through the shared guarded helper
    /// ([`RecoveryContext::parse_entry`]): resource-guard trips and caught
    /// panics either abort with a structured error (strict mode) or are
    /// tallied at the entry's batch-assigned position; plain lex/syntax
    /// failures are tallied in every mode, exactly as the staged pipeline
    /// counts them.
    fn process_batch(
        &mut self,
        log_index: usize,
        start: u64,
        batch: &[String],
        cache: &AnalysisCache,
        ctx: &RecoveryContext,
        label: &str,
    ) -> io::Result<()> {
        for (offset, entry) in batch.iter().enumerate() {
            self.arena.reset();
            let map = &mut self.counts[log_index];
            let interner = &mut self.interner;
            let lookups = &mut self.lookups;
            let analyze_us = self.analyze_us;
            let parsed = ctx.parse_entry(entry, &self.arena, |query| {
                let fingerprint = canonical_fingerprint_of_ref(&query);
                let slot = map.entry(fingerprint).or_insert(0);
                if *slot == 0 {
                    *lookups += 1;
                    cache.get_or_insert_with(fingerprint, || {
                        let _span = analyze_us.span();
                        QueryAnalysis::of_ref(&query, interner)
                    });
                }
                *slot += 1;
            });
            if let Err(error) = parsed {
                if error.kind == ErrorKind::WorkerPanic {
                    // The unwind may have left a partially filled chunk;
                    // release the arena's memory entirely.
                    self.arena.trim();
                }
                if ctx.fatal(error.kind) {
                    return Err(ctx.fatal_error(label, start + offset as u64, &error));
                }
                self.tallies[log_index].record(error.kind, start + offset as u64);
            }
        }
        Ok(())
    }
}

/// Streams every reader through the fused ingest→analyze pipeline with
/// default options and a run-scoped [`AnalysisCache`].
///
/// Equivalent to [`ingest_streams`](crate::corpus::ingest_streams) followed
/// by [`CorpusAnalysis::analyze_cached`] — proven byte-identical by
/// `tests/fused.rs` — but no AST survives its batch and the two phases
/// share one worker pool.
pub fn analyze_streams(
    readers: Vec<Box<dyn LogReader + '_>>,
    population: Population,
) -> io::Result<FusedAnalysis> {
    analyze_streams_with(readers, population, FusedOptions::default())
}

/// [`analyze_streams`] with explicit options. The output is identical for
/// any worker count or batch size.
pub fn analyze_streams_with(
    readers: Vec<Box<dyn LogReader + '_>>,
    population: Population,
    options: FusedOptions,
) -> io::Result<FusedAnalysis> {
    let cache = AnalysisCache::new();
    analyze_streams_cached(readers, population, options, &cache)
}

/// [`analyze_streams`] against a caller-owned [`AnalysisCache`]: analyses
/// memoized by earlier runs — other logs, the other population — are
/// reused, so switching populations over the same streams re-analyses
/// nothing.
pub fn analyze_streams_cached(
    readers: Vec<Box<dyn LogReader + '_>>,
    population: Population,
    options: FusedOptions,
    cache: &AnalysisCache,
) -> io::Result<FusedAnalysis> {
    let (workers, batch_size) = options.resolve();
    let workers = clamp_workers(&readers, workers, batch_size).max(1);
    let ctx = RecoveryContext::new(options.recovery);
    let labels: Vec<String> = readers.iter().map(|r| r.label().to_string()).collect();
    let log_count = readers.len();
    let mut source = BatchSource::new(readers, batch_size, ctx.policy.recovers());

    // Observability handles, hoisted once: spans are batch-granular (one
    // clock pair per batch, never per entry) and counters flush totals in
    // the epilogue below, so instrumentation stays inside the overhead
    // budget `ablation_obs` gates — and is entirely free when disabled.
    let metrics_on = obs::enabled();
    let cache_before = cache.stats();
    let read_us = obs::global().histogram("pipeline_read_us");
    let parse_us = obs::global().histogram("pipeline_parse_us");
    let read_bytes = obs::global().counter("pipeline_read_bytes_total");

    let batches = AtomicU64::new(0);
    let inflight = AtomicUsize::new(0);
    let peak_inflight = AtomicUsize::new(0);
    let note_claimed = |entries: usize| {
        batches.fetch_add(1, Ordering::Relaxed);
        let now = inflight.fetch_add(entries, Ordering::Relaxed) + entries;
        peak_inflight.fetch_max(now, Ordering::Relaxed);
    };
    let note_done = |entries: usize| {
        inflight.fetch_sub(entries, Ordering::Relaxed);
    };

    let states: Vec<FusedWorker> = if workers == 1 {
        let mut worker = FusedWorker::new(log_count);
        let mut batch = Vec::new();
        loop {
            let claimed = {
                let _read_span = read_us.span();
                source.next_batch(&mut batch)?
            };
            let Some((log_index, _sequence, start)) = claimed else {
                break;
            };
            note_claimed(batch.len());
            if metrics_on {
                read_bytes.add(batch.iter().map(|entry| entry.len() as u64).sum());
            }
            {
                let _parse_span = parse_us.span();
                worker.process_batch(log_index, start, &batch, cache, &ctx, &labels[log_index])?;
            }
            note_done(batch.len());
            batch.clear();
        }
        vec![worker]
    } else {
        let source = Mutex::new(&mut source);
        let failure: Mutex<Option<io::Error>> = Mutex::new(None);
        let states = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut worker = FusedWorker::new(log_count);
                        let mut batch = Vec::new();
                        loop {
                            batch.clear();
                            let claimed = {
                                let _read_span = read_us.span();
                                source
                                    .lock()
                                    .expect("fused workers must not panic")
                                    .next_batch(&mut batch)
                            };
                            match claimed {
                                Ok(Some((log_index, _sequence, start))) => {
                                    note_claimed(batch.len());
                                    if metrics_on {
                                        read_bytes.add(
                                            batch.iter().map(|entry| entry.len() as u64).sum(),
                                        );
                                    }
                                    let processed = {
                                        let _parse_span = parse_us.span();
                                        worker.process_batch(
                                            log_index,
                                            start,
                                            &batch,
                                            cache,
                                            &ctx,
                                            &labels[log_index],
                                        )
                                    };
                                    note_done(batch.len());
                                    if let Err(error) = processed {
                                        failure
                                            .lock()
                                            .expect("fused workers must not panic")
                                            .get_or_insert(error);
                                        break;
                                    }
                                }
                                Ok(None) => break,
                                Err(error) => {
                                    failure
                                        .lock()
                                        .expect("fused workers must not panic")
                                        .get_or_insert(error);
                                    break;
                                }
                            }
                        }
                        worker
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("fused workers must not panic"))
                .collect()
        });
        if let Some(error) = failure.into_inner().expect("no poisoned workers") {
            return Err(error);
        }
        states
    };

    // Merge the per-worker occurrence maps and error tallies per log
    // (commutative, so worker order is irrelevant), collect counters. The
    // reader-level defect tallies accumulated at the batch source seed the
    // per-log totals. The merge span covers everything from here to the
    // folded corpus: per-worker state union, summary construction, the
    // budget check and the occurrence-weighted fold.
    let _merge_span = obs::global().histogram("pipeline_merge_us").span();
    let mut merged: Vec<HashMap<u128, u64, FingerprintBuildHasher>> =
        (0..log_count).map(|_| HashMap::default()).collect();
    let mut tallies: Vec<ErrorTally> = std::mem::take(&mut source.tallies);
    let mut interner_stats = InternStats::default();
    let mut lookups = 0u64;
    for state in states {
        interner_stats.merge(&state.interner.stats());
        lookups += state.lookups;
        for (log_index, tally) in state.tallies.iter().enumerate() {
            tallies[log_index].merge(tally);
        }
        for (log_index, map) in state.counts.into_iter().enumerate() {
            let target = &mut merged[log_index];
            if target.is_empty() {
                *target = map;
            } else {
                for (fingerprint, count) in map {
                    *target.entry(fingerprint).or_insert(0) += count;
                }
            }
        }
    }

    // Fetch each distinct record from the shared cache exactly once; the
    // summary pass and the fold below then read this lock-free map. Its
    // size is also this run's distinct-form count — correct even when a
    // caller-owned cache carries entries from other corpora.
    let mut records: HashMap<u128, Arc<QueryAnalysis>, FingerprintBuildHasher> = HashMap::default();
    for map in &merged {
        for &fingerprint in map.keys() {
            records.entry(fingerprint).or_insert_with(|| {
                cache
                    .get(fingerprint)
                    .expect("every streamed fingerprint is memoized")
            });
        }
    }

    // Per-log summaries: sorted occurrence lists make every downstream
    // iteration deterministic; `bodyless` folds the memoized records'
    // occurrence counts (body-ness is a function of the canonical form).
    let mut summaries = Vec::with_capacity(log_count);
    for (log_index, (label, map)) in labels.into_iter().zip(merged).enumerate() {
        let mut occurrences: Vec<(u128, u64)> = map.into_iter().collect();
        occurrences.sort_unstable_by_key(|&(fingerprint, _)| fingerprint);
        let mut valid = 0u64;
        let mut bodyless = 0u64;
        for &(fingerprint, count) in &occurrences {
            valid += count;
            if !records[&fingerprint].features.has_body {
                bodyless += count;
            }
        }
        summaries.push(LogSummary {
            label,
            counts: CorpusCounts {
                total: source.totals[log_index],
                valid,
                unique: occurrences.len() as u64,
                bodyless,
            },
            occurrences,
            errors: std::mem::take(&mut tallies[log_index]),
        });
    }

    // The budget check runs once, over the merged end-of-run tallies. The
    // shard workers and the serve path stream as Lenient and leave this
    // check to their coordinator, so every deployment reaches the same
    // verdict over the same merged tallies.
    let mut combined_errors = ErrorTally::default();
    let mut total_entries = 0u64;
    for summary in &summaries {
        combined_errors.merge(&summary.errors);
        total_entries += summary.counts.total;
    }
    enforce_budget(ctx.policy, &combined_errors, total_entries)?;

    // Duplicate occurrences were absorbed by the local maps without touching
    // the shared cache; credit them so `hits + misses` still equals the
    // number of valid occurrences, as in the staged engine.
    let valid_total: u64 = summaries.iter().map(|s| s.counts.valid).sum();
    cache.record_reused(valid_total - lookups);

    let corpus = fold_populations(&summaries, population, &records, workers);
    let stats = AnalysisStats {
        cache: Some(cache.stats()),
        interner: interner_stats,
    };
    let fused = FusedStats {
        batches: batches.into_inner(),
        peak_inflight_entries: peak_inflight.into_inner(),
        distinct_forms: records.len() as u64,
    };

    // The per-entry facts flush as whole-run totals here — one counter add
    // per run per fact, instead of one per entry on the hot path. Cache
    // counters flush as this run's delta, so a caller-owned cache shared
    // across runs is not double-counted.
    if metrics_on {
        let registry = obs::global();
        registry.counter("pipeline_runs_total").incr();
        registry
            .counter("pipeline_batches_total")
            .add(fused.batches);
        registry
            .counter("pipeline_entries_total")
            .add(total_entries);
        registry.counter("pipeline_valid_total").add(valid_total);
        registry
            .counter("pipeline_errors_total")
            .add(combined_errors.total());
        registry
            .counter("pipeline_distinct_forms_total")
            .add(fused.distinct_forms);
        let cache_after = stats.cache.unwrap_or_default();
        registry
            .counter("cache_hits_total")
            .add(cache_after.hits.saturating_sub(cache_before.hits));
        registry
            .counter("cache_misses_total")
            .add(cache_after.misses.saturating_sub(cache_before.misses));
        registry
            .gauge("cache_distinct_forms")
            .set(cache_after.distinct as i64);
    }

    Ok(FusedAnalysis {
        summaries,
        corpus,
        stats,
        fused,
    })
}

/// The occurrence-weighted fold: each distinct fingerprint of each log folds
/// its memoized analysis exactly once — with weight 1 on the Unique
/// population ("distinct fingerprints") and with its occurrence count on the
/// Valid population. O(distinct) tally work regardless of duplication,
/// parallelised over the same chunked self-scheduling pattern as the staged
/// engine; the weighted adds are exact integer sums, so any schedule yields
/// the same bytes.
fn fold_populations(
    summaries: &[LogSummary],
    population: Population,
    records: &HashMap<u128, Arc<QueryAnalysis>, FingerprintBuildHasher>,
    workers: usize,
) -> CorpusAnalysis {
    let items: Vec<(usize, u128, u64)> = summaries
        .iter()
        .enumerate()
        .flat_map(|(log_index, summary)| {
            summary
                .occurrences
                .iter()
                .map(move |&(fingerprint, count)| (log_index, fingerprint, count))
        })
        .collect();
    let chunk_size = (items.len() / (workers * 8).max(1)).clamp(16, 1024);
    let results = chunked_fold_pool(
        &items,
        summaries.len(),
        workers,
        chunk_size,
        || (),
        |acc, (), &(log_index, fingerprint, count)| {
            let weight = match population {
                Population::Unique => 1,
                Population::Valid => count,
            };
            acc[log_index].add_times(&records[&fingerprint], weight);
        },
    );

    let datasets: Vec<DatasetAnalysis> = summaries
        .iter()
        .map(|summary| DatasetAnalysis {
            label: summary.label.clone(),
            counts: summary.counts,
            errors: summary.errors.clone(),
            ..DatasetAnalysis::default()
        })
        .collect();
    let accumulators: Vec<Vec<DatasetAnalysis>> =
        results.into_iter().map(|(acc, ())| acc).collect();
    merge_into_corpus(datasets, &accumulators)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{ingest, MemoryLogReader, RawLog};
    use crate::report::full_report;

    fn readers_of(entries: &[&str]) -> Vec<Box<dyn LogReader + 'static>> {
        vec![Box::new(MemoryLogReader::new(
            "test",
            entries.iter().map(|s| s.to_string()).collect(),
        ))]
    }

    const ENTRIES: [&str; 6] = [
        "SELECT ?x WHERE { ?x a <http://C> }",
        "SELECT   ?x   WHERE { ?x a <http://C> }", // duplicate modulo whitespace
        "not a sparql query at all",
        "ASK { <http://s> <http://p> <http://o> }",
        "DESCRIBE <http://r>",
        "SELECT ?x WHERE { ?x a <http://C> }", // duplicate again
    ];

    #[test]
    fn summary_counts_match_the_staged_ingest() {
        let fused = analyze_streams(readers_of(&ENTRIES), Population::Unique).unwrap();
        let staged = ingest(&RawLog::new(
            "test",
            ENTRIES.iter().map(|s| s.to_string()).collect(),
        ));
        assert_eq!(fused.summaries[0].counts, staged.counts);
        let summary = &fused.summaries[0];
        assert_eq!(summary.occurrences.len(), 3);
        let total: u64 = summary.occurrences.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, summary.counts.valid);
        assert!(summary
            .occurrences
            .windows(2)
            .all(|pair| pair[0].0 < pair[1].0));
        let (fp, count) = summary.occurrences[0];
        assert_eq!(summary.occurrences_of(fp), count);
        let absent = summary
            .occurrences
            .iter()
            .map(|&(f, _)| f)
            .max()
            .expect("non-empty summary")
            .wrapping_add(1);
        assert_eq!(summary.occurrences_of(absent), 0);
    }

    #[test]
    fn split_log_summaries_merge_back_to_the_whole_log() {
        // Split the log's entries at a point that separates duplicates of
        // one canonical form, summarize each half independently (the
        // cross-process scenario), and merge: the result must equal the
        // whole-log summary, in either merge order.
        let whole = analyze_streams(readers_of(&ENTRIES), Population::Valid).unwrap();
        let first = analyze_streams(readers_of(&ENTRIES[..3]), Population::Valid).unwrap();
        let second = analyze_streams(readers_of(&ENTRIES[3..]), Population::Valid).unwrap();
        let mut ab = first.summaries[0].clone();
        ab.merge(&second.summaries[0]);
        let mut ba = second.summaries[0].clone();
        ba.merge(&first.summaries[0]);
        assert_eq!(ab, whole.summaries[0]);
        assert_eq!(ba, whole.summaries[0]);
        assert!(ab.occurrences.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn fused_reports_match_the_staged_pipeline_on_both_populations() {
        for population in [Population::Unique, Population::Valid] {
            let fused = analyze_streams(readers_of(&ENTRIES), population).unwrap();
            let staged_logs = vec![ingest(&RawLog::new(
                "test",
                ENTRIES.iter().map(|s| s.to_string()).collect(),
            ))];
            let staged = CorpusAnalysis::analyze(&staged_logs, population);
            assert_eq!(
                full_report(&fused.corpus),
                full_report(&staged),
                "fused vs staged mismatch on {population:?}"
            );
        }
    }

    #[test]
    fn table1_from_summaries_matches_the_analysis_rendering() {
        let fused = analyze_streams(readers_of(&ENTRIES), Population::Unique).unwrap();
        assert_eq!(
            crate::report::table1_from_summaries(&fused.summaries),
            crate::report::table1(&fused.corpus)
        );
    }

    #[test]
    fn occurrence_accounting_covers_every_valid_entry() {
        let fused = analyze_streams(readers_of(&ENTRIES), Population::Valid).unwrap();
        let cache_stats = fused.stats.cache.expect("fused runs always use a cache");
        assert_eq!(cache_stats.hits + cache_stats.misses, 5);
        assert_eq!(cache_stats.distinct, 3);
        assert_eq!(fused.fused.distinct_forms, 3);
        assert!(fused.fused.batches >= 1);
        assert!(fused.fused.peak_inflight_entries >= ENTRIES.len().min(INGEST_CHUNK));
    }

    #[test]
    fn distinct_forms_counts_this_run_not_the_shared_cache() {
        let cache = AnalysisCache::new();
        let first = analyze_streams_cached(
            readers_of(&ENTRIES),
            Population::Valid,
            FusedOptions::default(),
            &cache,
        )
        .unwrap();
        assert_eq!(first.fused.distinct_forms, 3);
        // A second, smaller corpus on the same cache: its stats must count
        // its own two distinct forms, not the cache's accumulated four.
        let second = analyze_streams_cached(
            readers_of(&["ASK { ?a <http://q> ?b }", "DESCRIBE <http://r>"]),
            Population::Valid,
            FusedOptions::default(),
            &cache,
        )
        .unwrap();
        assert_eq!(second.fused.distinct_forms, 2);
        assert_eq!(cache.len(), 4); // DESCRIBE <http://r> was already memoized
    }

    #[test]
    fn tiny_batches_and_worker_counts_agree() {
        let reference = analyze_streams(readers_of(&ENTRIES), Population::Valid).unwrap();
        for workers in [1, 2, 8] {
            for batch in [1, 2, 64] {
                let fused = analyze_streams_with(
                    readers_of(&ENTRIES),
                    Population::Valid,
                    FusedOptions {
                        workers,
                        batch,
                        recovery: RecoveryPolicy::default(),
                    },
                )
                .unwrap();
                assert_eq!(
                    full_report(&fused.corpus),
                    full_report(&reference.corpus),
                    "workers {workers}, batch {batch}"
                );
                assert_eq!(fused.summaries, reference.summaries);
            }
        }
    }
}
