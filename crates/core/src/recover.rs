//! Malformed-input recovery: the per-log error tally, the run-wide
//! [`RecoveryPolicy`], and the guarded per-entry parse every pipeline path
//! shares.
//!
//! The paper's corpora are real production logs: HTTP noise, truncated
//! strings, invalid UTF-8 and the occasional adversarially deep query all
//! show up between valid entries. This module gives every engine — fused,
//! staged, sharded, served — one error model:
//!
//! * **Taxonomy.** Every per-entry failure is classified as a stable
//!   [`ErrorKind`] (defined in the parser crate, wire codes append-only).
//! * **Tally.** Each log carries an [`ErrorTally`]: a count per kind plus
//!   the first few exemplar entry positions. Tallies merge commutatively,
//!   so per-worker, per-shard and per-process tallies combine in any order
//!   with identical results — the same contract as every other fold in the
//!   pipeline.
//! * **Policy.** A [`RecoveryPolicy`] decides what happens on a *defect*
//!   (invalid UTF-8 from a reader, a tripped resource guard, a caught
//!   panic): `Strict` fails the run, `Lenient` tallies and moves on,
//!   `ErrorBudget` tallies and fails the run at the end if the error rate
//!   exceeds the budget. Plain lex/syntax failures are *invalid entries*,
//!   not defects: they are tallied in every mode and never fatal, exactly
//!   as the Table-1 accounting has always treated them.
//!
//! Determinism: entry positions are assigned at the single-lock batch
//! source, so exemplar positions — like every other report byte — are
//! identical for any worker count, batch size or engine.

use serde::{Deserialize, Serialize};
use sparqlog_parser::{parse_query_in_with_limits, Arena, ErrorKind, ParseError, ParseLimits};
use std::fmt;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// How many exemplar positions an [`ErrorTally`] retains per log: enough to
/// point a log owner at the first few offending entries, small enough to
/// bound snapshot frames on a pathological corpus.
pub const EXEMPLAR_CAP: usize = 8;

/// The per-log malformed-entry tally: one counter per [`ErrorKind`] plus the
/// earliest [`EXEMPLAR_CAP`] offending entry positions.
///
/// Positions are 0-based entry indices within the log (a reader-level
/// defect, e.g. an invalid-UTF-8 line, occupies an entry position of its
/// own and is counted in the log's `total`). Exemplars are kept sorted by
/// `(position, wire code)` and truncated to the cap; because each producer
/// keeps its *earliest* cap-many positions, merging any partition of the
/// log reproduces the exact same exemplar set — the merge is commutative
/// and associative like every other fold in the pipeline.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorTally {
    /// Entries that failed lexical analysis.
    pub lex: u64,
    /// Entries that tokenized but did not parse.
    pub syntax: u64,
    /// Log lines that were not valid UTF-8 (never reached the lexer).
    pub invalid_utf8: u64,
    /// Entries that tripped the byte or token cap.
    pub oversize_entry: u64,
    /// Entries that nested deeper than the recursion guard.
    pub depth_exceeded: u64,
    /// Entries whose parse panicked; the panic was caught and recorded.
    pub worker_panic: u64,
    /// The earliest offending positions, as `(wire code, entry position)`
    /// sorted by `(position, code)`, at most [`EXEMPLAR_CAP`] of them.
    pub exemplars: Vec<(u8, u64)>,
}

impl ErrorTally {
    /// Records one failure of `kind` at the 0-based entry `position`.
    pub fn record(&mut self, kind: ErrorKind, position: u64) {
        *self.slot(kind) += 1;
        let key = (position, kind.wire_code());
        let at = self
            .exemplars
            .partition_point(|&(code, pos)| (pos, code) < key);
        if at < EXEMPLAR_CAP {
            self.exemplars.insert(at, (kind.wire_code(), position));
            self.exemplars.truncate(EXEMPLAR_CAP);
        }
    }

    fn slot(&mut self, kind: ErrorKind) -> &mut u64 {
        match kind {
            ErrorKind::Lex => &mut self.lex,
            ErrorKind::Syntax => &mut self.syntax,
            ErrorKind::InvalidUtf8 => &mut self.invalid_utf8,
            ErrorKind::OversizeEntry => &mut self.oversize_entry,
            ErrorKind::DepthExceeded => &mut self.depth_exceeded,
            ErrorKind::WorkerPanic => &mut self.worker_panic,
        }
    }

    /// The count for one kind.
    pub fn count(&self, kind: ErrorKind) -> u64 {
        match kind {
            ErrorKind::Lex => self.lex,
            ErrorKind::Syntax => self.syntax,
            ErrorKind::InvalidUtf8 => self.invalid_utf8,
            ErrorKind::OversizeEntry => self.oversize_entry,
            ErrorKind::DepthExceeded => self.depth_exceeded,
            ErrorKind::WorkerPanic => self.worker_panic,
        }
    }

    /// Total failures of every kind.
    pub fn total(&self) -> u64 {
        ErrorKind::ALL.iter().map(|&k| self.count(k)).sum()
    }

    /// Failures that are *defects* under the recovery policy (everything
    /// except plain lex/syntax invalidity) — what [`RecoveryPolicy::Strict`]
    /// fails on and what an error budget meters.
    pub fn defects(&self) -> u64 {
        self.invalid_utf8 + self.oversize_entry + self.depth_exceeded + self.worker_panic
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total() == 0 && self.exemplars.is_empty()
    }

    /// Merges another tally (e.g. another worker's or shard's slice of the
    /// same log, or another log's tally into a corpus total). Counts add;
    /// exemplars concatenate, re-sort by `(position, code)` and truncate to
    /// the cap. Commutative and associative.
    pub fn merge(&mut self, other: &ErrorTally) {
        let ErrorTally {
            lex,
            syntax,
            invalid_utf8,
            oversize_entry,
            depth_exceeded,
            worker_panic,
            exemplars,
        } = other;
        self.lex += lex;
        self.syntax += syntax;
        self.invalid_utf8 += invalid_utf8;
        self.oversize_entry += oversize_entry;
        self.depth_exceeded += depth_exceeded;
        self.worker_panic += worker_panic;
        self.exemplars.extend_from_slice(exemplars);
        self.exemplars
            .sort_unstable_by_key(|&(code, position)| (position, code));
        self.exemplars.truncate(EXEMPLAR_CAP);
    }
}

/// What the pipeline does when an entry is a *defect* — invalid UTF-8 from
/// the reader, a tripped resource guard, or a caught panic. Plain
/// lex/syntax failures are invalid entries in every mode and are only
/// tallied, never fatal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryPolicy {
    /// Follow the `SPARQLOG_RECOVERY` environment variable (`strict`,
    /// `lenient` or `budget:<max-per-10k>`); unset or unparsable means
    /// [`RecoveryPolicy::Strict`]. The same pattern as the
    /// `SPARQLOG_WORKERS` / `SPARQLOG_ANALYSIS_CACHE` overrides.
    #[default]
    Auto,
    /// Fail the run on the first defect (the historical reader behaviour,
    /// now with a structured, position-carrying error).
    Strict,
    /// Recover per entry: tally the defect, count the entry as invalid and
    /// keep streaming. Never fails on malformed *content* (real I/O errors
    /// still abort).
    Lenient,
    /// Stream like [`RecoveryPolicy::Lenient`], then fail the run at the
    /// end if defects exceed `max_per_10k` per 10 000 log entries. The
    /// check runs once, over the merged end-of-run tallies, so every
    /// engine reaches the identical verdict.
    ErrorBudget {
        /// Permitted defects per 10 000 entries (e.g. `10` ≈ 0.1 %).
        max_per_10k: u32,
    },
}

impl RecoveryPolicy {
    /// Resolves [`RecoveryPolicy::Auto`] against the `SPARQLOG_RECOVERY`
    /// environment variable; the other variants resolve to themselves.
    pub fn resolve(self) -> RecoveryPolicy {
        match self {
            RecoveryPolicy::Auto => std::env::var("SPARQLOG_RECOVERY")
                .ok()
                .and_then(|v| RecoveryPolicy::parse(&v))
                .unwrap_or(RecoveryPolicy::Strict),
            other => other,
        }
    }

    /// Parses a policy spelling: `strict`, `lenient` or `budget:<n>`
    /// (defects per 10 000 entries). Returns `None` for anything else.
    pub fn parse(value: &str) -> Option<RecoveryPolicy> {
        let value = value.trim().to_ascii_lowercase();
        match value.as_str() {
            "strict" => Some(RecoveryPolicy::Strict),
            "lenient" => Some(RecoveryPolicy::Lenient),
            _ => {
                let rate = value.strip_prefix("budget:")?;
                rate.trim()
                    .parse::<u32>()
                    .ok()
                    .map(|max_per_10k| RecoveryPolicy::ErrorBudget { max_per_10k })
            }
        }
    }

    /// Whether a resolved policy recovers from defects (Lenient or budget).
    pub fn recovers(self) -> bool {
        !matches!(self.resolve(), RecoveryPolicy::Strict)
    }

    /// The defect budget of a resolved policy, if it has one.
    pub fn budget(self) -> Option<u32> {
        match self.resolve() {
            RecoveryPolicy::ErrorBudget { max_per_10k } => Some(max_per_10k),
            _ => None,
        }
    }

    /// The canonical spelling accepted back by [`RecoveryPolicy::parse`] —
    /// the form the shard worker command line and the serve protocol carry.
    pub fn spelling(self) -> String {
        match self {
            RecoveryPolicy::Auto => RecoveryPolicy::Strict.spelling(),
            RecoveryPolicy::Strict => "strict".to_string(),
            RecoveryPolicy::Lenient => "lenient".to_string(),
            RecoveryPolicy::ErrorBudget { max_per_10k } => format!("budget:{max_per_10k}"),
        }
    }
}

/// The error a budgeted run fails with when the end-of-run defect rate
/// exceeds the budget. Carried as the payload of an
/// [`io::Error`] of kind `InvalidData`; downcast to get the
/// preserved tally.
#[derive(Debug, Clone)]
pub struct BudgetExceeded {
    /// Defects observed across the whole run.
    pub defects: u64,
    /// Total log entries across the whole run.
    pub total: u64,
    /// The budget that was exceeded (defects per 10 000 entries).
    pub max_per_10k: u32,
    /// The merged end-of-run tally, preserved for postmortems.
    pub tally: ErrorTally,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "error budget exceeded: {} defects in {} entries (budget {} per 10k)",
            self.defects, self.total, self.max_per_10k
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// The payload of the [`io::Error`] a [`LogReader`](crate::corpus::LogReader)
/// (crate::corpus::LogReader) raises on a malformed stream, carrying the
/// log label and the 1-based line number so a strict-mode failure names
/// the offending line and a lenient run can tally it.
#[derive(Debug, Clone)]
pub struct ReaderDefect {
    /// The label of the log whose stream was malformed.
    pub label: String,
    /// The 1-based line number of the malformed line.
    pub line: u64,
}

impl fmt::Display for ReaderDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "log {:?}, line {}: stream did not contain valid UTF-8",
            self.label, self.line
        )
    }
}

impl std::error::Error for ReaderDefect {}

/// Whether an I/O error is a recoverable reader defect (a malformed line,
/// as opposed to a real I/O failure, which no policy recovers from).
pub(crate) fn reader_defect(error: &io::Error) -> bool {
    error
        .get_ref()
        .is_some_and(|payload| payload.is::<ReaderDefect>())
}

/// Checks a merged end-of-run tally against a resolved policy's budget.
/// Called exactly once per run, at the top-level merge point (the
/// in-process engines check their own totals; the shard coordinator and
/// the serve job table check after merging worker partitions).
pub fn enforce_budget(policy: RecoveryPolicy, tally: &ErrorTally, total: u64) -> io::Result<()> {
    let Some(max_per_10k) = policy.budget() else {
        return Ok(());
    };
    let defects = tally.defects();
    // defects / total > max_per_10k / 10_000, in exact integer arithmetic.
    if u128::from(defects) * 10_000 > u128::from(max_per_10k) * u128::from(total) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            BudgetExceeded {
                defects,
                total,
                max_per_10k,
                tally: tally.clone(),
            },
        ));
    }
    Ok(())
}

/// The per-run recovery context threaded through every parse worker: the
/// resolved policy, the hard resource guards, and the panic-drill needle
/// (resolved once per run from `SPARQLOG_PANIC_DRILL`, so the drill fires
/// identically on every engine and worker count).
#[derive(Debug, Clone)]
pub(crate) struct RecoveryContext {
    pub(crate) policy: RecoveryPolicy,
    pub(crate) limits: ParseLimits,
    drill: Option<String>,
}

impl RecoveryContext {
    /// Resolves the policy and the panic drill for one run.
    pub(crate) fn new(policy: RecoveryPolicy) -> RecoveryContext {
        RecoveryContext {
            policy: policy.resolve(),
            limits: ParseLimits::default(),
            drill: std::env::var("SPARQLOG_PANIC_DRILL")
                .ok()
                .filter(|needle| !needle.is_empty()),
        }
    }

    /// Whether a parse failure of `kind` aborts the run under this policy.
    pub(crate) fn fatal(&self, kind: ErrorKind) -> bool {
        !matches!(kind, ErrorKind::Lex | ErrorKind::Syntax) && !self.policy.recovers()
    }

    /// Parses one entry under the guards with panic isolation: the drill
    /// and any genuine parser panic are caught here, at the batch
    /// boundary, and surface as a structured
    /// [`ErrorKind::WorkerPanic`] error instead of unwinding into the
    /// worker pool (which would poison the shared batch-source mutex).
    ///
    /// `convert` runs inside the isolation boundary too, so a panic while
    /// fingerprinting or copying the AST out of the arena is also caught.
    /// After a caught panic the caller must [`Arena::trim`] the arena it
    /// passed, since the unwind may have left a partially filled chunk.
    pub(crate) fn parse_entry<'a, T>(
        &self,
        entry: &'a str,
        arena: &'a Arena,
        convert: impl FnOnce(sparqlog_parser::ast_ref::Query<'a>) -> T,
    ) -> Result<T, ParseError> {
        let guarded = catch_unwind(AssertUnwindSafe(|| {
            if let Some(needle) = &self.drill {
                if entry.contains(needle.as_str()) {
                    panic!("SPARQLOG_PANIC_DRILL tripped");
                }
            }
            parse_query_in_with_limits(entry, arena, &self.limits).map(convert)
        }));
        match guarded {
            Ok(parsed) => parsed,
            Err(payload) => {
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "parser panicked".to_string());
                Err(ParseError::with_kind(ErrorKind::WorkerPanic, message, 0, 0))
            }
        }
    }

    /// The structured error a strict-mode run fails with: the log label,
    /// the 0-based entry position and the underlying parse error.
    pub(crate) fn fatal_error(&self, label: &str, position: u64, error: &ParseError) -> io::Error {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("log {label:?}, entry {position}: {error}"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_records_counts_and_sorted_exemplars() {
        let mut tally = ErrorTally::default();
        tally.record(ErrorKind::Syntax, 7);
        tally.record(ErrorKind::Lex, 2);
        tally.record(ErrorKind::Syntax, 2);
        assert_eq!(tally.syntax, 2);
        assert_eq!(tally.lex, 1);
        assert_eq!(tally.total(), 3);
        assert_eq!(tally.defects(), 0);
        // Sorted by (position, code): lex (0) before syntax (1) at pos 2.
        assert_eq!(tally.exemplars, vec![(0, 2), (1, 2), (1, 7)]);
    }

    #[test]
    fn tally_keeps_the_earliest_cap_exemplars() {
        let mut tally = ErrorTally::default();
        for position in (0..32).rev() {
            tally.record(ErrorKind::DepthExceeded, position);
        }
        assert_eq!(tally.depth_exceeded, 32);
        assert_eq!(tally.defects(), 32);
        let expected: Vec<(u8, u64)> = (0..EXEMPLAR_CAP as u64)
            .map(|p| (ErrorKind::DepthExceeded.wire_code(), p))
            .collect();
        assert_eq!(tally.exemplars, expected);
    }

    #[test]
    fn tally_merge_is_commutative_and_matches_the_whole() {
        // Partition one log's failures arbitrarily; merging the partitions
        // must reproduce the whole-log tally in either order.
        let failures: Vec<(ErrorKind, u64)> = (0..40)
            .map(|i| (ErrorKind::ALL[i % ErrorKind::COUNT], (i * 7 % 29) as u64))
            .collect();
        let mut whole = ErrorTally::default();
        let mut left = ErrorTally::default();
        let mut right = ErrorTally::default();
        for (i, &(kind, position)) in failures.iter().enumerate() {
            whole.record(kind, position);
            if i % 3 == 0 {
                left.record(kind, position);
            } else {
                right.record(kind, position);
            }
        }
        let mut ab = left.clone();
        ab.merge(&right);
        let mut ba = right;
        ba.merge(&left);
        assert_eq!(ab, ba);
        assert_eq!(ab.total(), whole.total());
        assert_eq!(ab.exemplars, whole.exemplars);
    }

    #[test]
    fn policy_parsing_and_spelling_round_trip() {
        assert_eq!(
            RecoveryPolicy::parse("strict"),
            Some(RecoveryPolicy::Strict)
        );
        assert_eq!(
            RecoveryPolicy::parse(" Lenient "),
            Some(RecoveryPolicy::Lenient)
        );
        assert_eq!(
            RecoveryPolicy::parse("budget:25"),
            Some(RecoveryPolicy::ErrorBudget { max_per_10k: 25 })
        );
        assert_eq!(RecoveryPolicy::parse("budget:"), None);
        assert_eq!(RecoveryPolicy::parse("nonsense"), None);
        for policy in [
            RecoveryPolicy::Strict,
            RecoveryPolicy::Lenient,
            RecoveryPolicy::ErrorBudget { max_per_10k: 3 },
        ] {
            assert_eq!(RecoveryPolicy::parse(&policy.spelling()), Some(policy));
        }
    }

    #[test]
    fn budget_enforcement_is_an_exact_rate_check() {
        let mut tally = ErrorTally::default();
        tally.record(ErrorKind::WorkerPanic, 0);
        // 1 defect in 1000 entries = 10 per 10k: at the boundary, passes.
        let policy = RecoveryPolicy::ErrorBudget { max_per_10k: 10 };
        assert!(enforce_budget(policy, &tally, 1000).is_ok());
        // 1 defect in 999 entries exceeds 10 per 10k.
        let error = enforce_budget(policy, &tally, 999).unwrap_err();
        let payload = error
            .get_ref()
            .and_then(|e| e.downcast_ref::<BudgetExceeded>())
            .expect("budget failures carry the tally");
        assert_eq!(payload.defects, 1);
        assert_eq!(payload.total, 999);
        assert_eq!(payload.tally.worker_panic, 1);
        // Lex/syntax invalidity never counts against the budget.
        let mut noisy = ErrorTally::default();
        for position in 0..500 {
            noisy.record(ErrorKind::Syntax, position);
        }
        assert!(enforce_budget(policy, &noisy, 500).is_ok());
    }

    #[test]
    fn context_classifies_guard_trips_and_catches_the_drill() {
        let ctx = RecoveryContext {
            policy: RecoveryPolicy::Lenient,
            limits: ParseLimits {
                max_entry_bytes: 64,
                ..ParseLimits::default()
            },
            drill: Some("DRILL-ME".to_string()),
        };
        let mut arena = Arena::new();
        let ok = ctx.parse_entry("ASK { ?x <http://p> ?y }", &arena, |q| q.to_owned());
        assert!(ok.is_ok());

        arena.reset();
        let oversize = format!("SELECT ?x WHERE {{ ?x <http://{}> ?y }}", "p".repeat(80));
        let error = ctx
            .parse_entry(&oversize, &arena, |q| q.to_owned())
            .unwrap_err();
        assert_eq!(error.kind, ErrorKind::OversizeEntry);

        arena.reset();
        let error = ctx
            .parse_entry("ASK { ?x <http://DRILL-ME> ?y }", &arena, |q| q.to_owned())
            .unwrap_err();
        assert_eq!(error.kind, ErrorKind::WorkerPanic);
        assert!(error.message.contains("SPARQLOG_PANIC_DRILL"));

        assert!(!ctx.fatal(ErrorKind::Syntax));
        assert!(!ctx.fatal(ErrorKind::WorkerPanic));
        let strict = RecoveryContext {
            policy: RecoveryPolicy::Strict,
            limits: ParseLimits::default(),
            drill: None,
        };
        assert!(!strict.fatal(ErrorKind::Lex));
        assert!(strict.fatal(ErrorKind::DepthExceeded));
        assert!(strict.fatal(ErrorKind::WorkerPanic));
    }
}
