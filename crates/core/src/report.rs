//! Plain-text report rendering: one function per table / figure of the
//! paper. Each function returns a formatted string whose rows mirror the
//! paper's presentation, so the harness binaries in `sparqlog-bench` can
//! print them directly.

use crate::analysis::{CorpusAnalysis, DatasetAnalysis};
use crate::recover::ErrorTally;
use sparqlog_parser::ErrorKind;
use sparqlog_streaks::StreakHistogram;
use std::fmt::Write as _;

fn pct(fraction: f64) -> String {
    format!("{:.2}%", fraction * 100.0)
}

/// Table 1: sizes of the query logs (Total / Valid / Unique per dataset).
pub fn table1(corpus: &CorpusAnalysis) -> String {
    table1_rows(
        corpus.datasets.iter().map(|d| (d.label.as_str(), d.counts)),
        corpus.combined.counts,
    )
}

/// Table 1 rendered directly from the fused engine's per-log
/// [`LogSummary`](crate::fused::LogSummary) records — byte-identical to
/// [`table1`] over the corresponding analysis, for counts-only runs that
/// never need the full fold.
pub fn table1_from_summaries(summaries: &[crate::fused::LogSummary]) -> String {
    let mut combined = crate::corpus::CorpusCounts::default();
    for summary in summaries {
        combined.merge(&summary.counts);
    }
    table1_rows(
        summaries.iter().map(|s| (s.label.as_str(), s.counts)),
        combined,
    )
}

fn table1_rows<'a>(
    rows: impl Iterator<Item = (&'a str, crate::corpus::CorpusCounts)>,
    combined: crate::corpus::CorpusCounts,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>12} {:>12} {:>12}",
        "Source", "Total #Q", "Valid #Q", "Unique #Q"
    );
    for (label, counts) in rows {
        let _ = writeln!(
            out,
            "{:<14} {:>12} {:>12} {:>12}",
            label, counts.total, counts.valid, counts.unique
        );
    }
    let _ = writeln!(
        out,
        "{:<14} {:>12} {:>12} {:>12}",
        "Total", combined.total, combined.valid, combined.unique
    );
    out
}

/// Table 2 (or Table 7 on the duplicate-keeping population): keyword counts.
pub fn table2_keywords(combined: &DatasetAnalysis) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>12} {:>9}",
        "Element", "Absolute", "Relative"
    );
    for (label, count, share) in combined.keywords.rows() {
        let _ = writeln!(out, "{:<12} {:>12} {:>9}", label, count, pct(share));
    }
    out
}

/// Figure 1 (or Figure 8): triples-per-query distribution per dataset, with
/// the S/A share and average triple count rows.
pub fn figure1_triples(corpus: &CorpusAnalysis) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>7} {:>7} {}",
        "Dataset",
        "S/A",
        "Avg#T",
        (0..=10).map(|i| format!("{i:>6}")).collect::<String>() + &format!("{:>6}", "11+")
    );
    for d in &corpus.datasets {
        let shares = d.triples.shares();
        let mut row = format!(
            "{:<14} {:>7} {:>7.2}",
            d.label,
            pct(d.triples.select_ask_share()),
            d.triples.average_triples()
        );
        for s in shares {
            let _ = write!(row, "{:>6}", format!("{:.1}%", s * 100.0));
        }
        let _ = writeln!(out, "{row}");
    }
    let t = &corpus.combined.triples;
    let _ = writeln!(
        out,
        "corpus: <=1 triple {}, <=6 triples {}, <=12 triples {}, max {}",
        pct(t.cumulative_share_at_most(1)),
        pct(t.cumulative_share_at_most(6)),
        pct(t
            .cumulative_share_at_most(11)
            .max(t.cumulative_share_at_most(10))),
        t.max_triples
    );
    out
}

/// Table 3 (or Table 8): operator-set distribution with CPF roll-ups.
pub fn table3_opsets(combined: &DatasetAnalysis) -> String {
    let ops = &combined.opsets;
    let total = ops.total.max(1) as f64;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<18} {:>12} {:>9}",
        "Operator Set", "Absolute", "Relative"
    );
    for (label, count, share) in ops.rows() {
        let _ = writeln!(out, "{:<18} {:>12} {:>9}", label, count, pct(share));
    }
    let _ = writeln!(
        out,
        "{:<18} {:>12} {:>9}",
        "CPF subtotal",
        ops.cpf_subtotal(),
        pct(ops.cpf_subtotal() as f64 / total)
    );
    let _ = writeln!(
        out,
        "{:<18} {:>12} {:>9}",
        "CPF+O",
        ops.cpf_plus_opt_increment(),
        format!("+{}", pct(ops.cpf_plus_opt_increment() as f64 / total))
    );
    let _ = writeln!(
        out,
        "{:<18} {:>12} {:>9}",
        "CPF+G",
        ops.cpf_plus_graph_increment(),
        format!("+{}", pct(ops.cpf_plus_graph_increment() as f64 / total))
    );
    let _ = writeln!(
        out,
        "{:<18} {:>12} {:>9}",
        "CPF+U",
        ops.cpf_plus_union_increment(),
        format!("+{}", pct(ops.cpf_plus_union_increment() as f64 / total))
    );
    out
}

/// Section 4.4: subqueries and projection.
pub fn section44_projection(combined: &DatasetAnalysis) -> String {
    let p = &combined.projection;
    let mut out = String::new();
    let total = p.total.max(1) as f64;
    let _ = writeln!(
        out,
        "queries with subqueries: {} ({})",
        p.with_subqueries,
        pct(p.with_subqueries as f64 / total)
    );
    let _ = writeln!(
        out,
        "projection used: between {} and {} ({} SELECT + {} ASK; {} unknown due to BIND)",
        pct(p.projection_share_lower()),
        pct(p.projection_share_upper()),
        pct(p.select_yes as f64 / total),
        pct(p.ask_yes as f64 / total),
        pct(p.unknown as f64 / total),
    );
    out
}

/// Section 5.2: fragment shares of the AOF patterns.
pub fn section52_fragments(combined: &DatasetAnalysis) -> String {
    let f = &combined.fragments;
    let mut out = String::new();
    let _ = writeln!(out, "Select/Ask queries:          {}", f.select_ask);
    let _ = writeln!(
        out,
        "AOF patterns:                {} ({} of Select/Ask)",
        f.aof,
        pct(f.aof_share())
    );
    let _ = writeln!(
        out,
        "CQ   (of AOF):               {} ({})",
        f.cq,
        pct(f.cq_share_of_aof())
    );
    let _ = writeln!(
        out,
        "CQF  (of AOF):               {} ({})",
        f.cqf,
        pct(f.cqf_share_of_aof())
    );
    let _ = writeln!(
        out,
        "well-designed (of AOF):      {} ({})",
        f.well_designed,
        pct(f.well_designed_share_of_aof())
    );
    let _ = writeln!(
        out,
        "CQOF (of AOF):               {} ({})",
        f.cqof,
        pct(f.cqof_share_of_aof())
    );
    let _ = writeln!(out, "AOF with variable predicate: {}", f.aof_var_predicate);
    let _ = writeln!(out, "interface width > 1:         {}", f.wide_interface);
    out
}

/// Figure 5 (or Figure 9): sizes of CQ-like queries with at least two triples.
pub fn figure5_sizes(combined: &DatasetAnalysis) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<6} {:>12} {}",
        "Class",
        "1-triple%",
        (2..=10).map(|i| format!("{i:>8}")).collect::<String>() + &format!("{:>8}", "11+")
    );
    for (name, h) in [
        ("CQ", &combined.sizes_cq),
        ("CQF", &combined.sizes_cqf),
        ("CQOF", &combined.sizes_cqof),
    ] {
        let multi = (h.total
            - h.one_triple
            - (h.total - h.one_triple - h.buckets.iter().sum::<u64>() - h.eleven_plus))
            .max(1);
        let multi_total = (h.buckets.iter().sum::<u64>() + h.eleven_plus).max(1) as f64;
        let _ = multi;
        let mut row = format!("{:<6} {:>12}", name, pct(h.one_triple_share()));
        for b in h.buckets {
            let _ = write!(
                row,
                "{:>8}",
                format!("{:.1}%", b as f64 / multi_total * 100.0)
            );
        }
        let _ = write!(
            row,
            "{:>8}",
            format!("{:.1}%", h.eleven_plus as f64 / multi_total * 100.0)
        );
        let _ = writeln!(out, "{row}   (max {} triples)", h.max_triples);
    }
    out
}

/// Table 4 (or Table 9): cumulative shape analysis of CQ / CQF / CQOF.
pub fn table4_shapes(combined: &DatasetAnalysis) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>12} {:>9}   {:>12} {:>9}   {:>12} {:>9}",
        "Shape", "CQ", "%", "CQF", "%", "CQOF", "%"
    );
    let cq = combined.shapes_cq.rows();
    let cqf = combined.shapes_cqf.rows();
    let cqof = combined.shapes_cqof.rows();
    for i in 0..cq.len() {
        let _ = writeln!(
            out,
            "{:<16} {:>12} {:>9}   {:>12} {:>9}   {:>12} {:>9}",
            cq[i].0,
            cq[i].1,
            pct(cq[i].2),
            cqf[i].1,
            pct(cqf[i].2),
            cqof[i].1,
            pct(cqof[i].2)
        );
    }
    out
}

/// Section 6.1: constants rerun and shortest-cycle lengths.
pub fn section61_cycles(combined: &DatasetAnalysis) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "single-edge CQ-like queries whose edge involves a constant: {}",
        combined.single_edge_with_constants
    );
    let _ = writeln!(
        out,
        "shortest cycle length distribution (cyclic CQ-like queries):"
    );
    for (len, count) in &combined.cycle_lengths {
        let _ = writeln!(out, "  girth {len:>2}: {count}");
    }
    if combined.cycle_lengths.is_empty() {
        let _ = writeln!(out, "  (no cyclic queries)");
    }
    out
}

/// Section 6.2: hypertree width of variable-predicate CQOF queries.
pub fn section62_hypertree(combined: &DatasetAnalysis) -> String {
    let h = &combined.hypertree;
    let mut out = String::new();
    let _ = writeln!(out, "variable-predicate CQOF queries analysed: {}", h.total);
    let _ = writeln!(out, "  hypertree width 1: {}", h.width1);
    let _ = writeln!(out, "  hypertree width 2: {}", h.width2);
    let _ = writeln!(out, "  hypertree width 3: {}", h.width3);
    let _ = writeln!(out, "  wider / inexact:   {}", h.wider_or_unknown);
    let _ = writeln!(
        out,
        "  decompositions with > 100 nodes: {}",
        h.over_100_nodes
    );
    let _ = writeln!(out, "  largest decomposition: {} nodes", h.max_nodes);
    out
}

/// Table 5 (or Figure 10): structure of navigational property paths.
pub fn table5_paths(combined: &DatasetAnalysis) -> String {
    let p = &combined.paths;
    let mut out = String::new();
    let _ = writeln!(out, "property paths total: {}", p.total);
    let _ = writeln!(
        out,
        "  !a: {}   ^a: {}",
        p.negated_literal, p.inverse_literal
    );
    let _ = writeln!(
        out,
        "  navigational: {} ({} use inverse, {} outside C_tract)",
        p.navigational(),
        p.with_inverse,
        p.potentially_hard
    );
    let _ = writeln!(
        out,
        "{:<24} {:>10} {:>9} {:>8}",
        "Expression Type", "Absolute", "Relative", "k"
    );
    for (label, count, share, range) in p.rows() {
        let k = match range {
            Some((a, b)) if a == b => format!("{a}"),
            Some((a, b)) => format!("{a}-{b}"),
            None => String::new(),
        };
        let _ = writeln!(
            out,
            "{:<24} {:>10} {:>9} {:>8}",
            label,
            count,
            pct(share),
            k
        );
    }
    out
}

/// The malformed-entry tally table: one row per dataset plus the merged
/// Total row, one column per [`ErrorKind`] in wire-code order, and a final
/// line naming the earliest offending entry positions. Appended to
/// [`full_report`] only when the corpus recorded at least one failure, so
/// clean-corpus reports are byte-identical to earlier releases.
pub fn error_table(corpus: &CorpusAnalysis) -> String {
    error_rows(
        corpus
            .datasets
            .iter()
            .map(|d| (d.label.as_str(), &d.errors)),
        &corpus.combined.errors,
    )
}

/// The error table rendered directly from the fused engine's per-log
/// [`LogSummary`](crate::fused::LogSummary) records — byte-identical to
/// [`error_table`] over the corresponding analysis.
pub fn error_table_from_summaries(summaries: &[crate::fused::LogSummary]) -> String {
    let mut combined = ErrorTally::default();
    for summary in summaries {
        combined.merge(&summary.errors);
    }
    error_rows(
        summaries.iter().map(|s| (s.label.as_str(), &s.errors)),
        &combined,
    )
}

fn error_rows<'a>(
    rows: impl Iterator<Item = (&'a str, &'a ErrorTally)>,
    combined: &ErrorTally,
) -> String {
    let mut out = String::new();
    let mut header = format!("{:<14}", "Source");
    for kind in ErrorKind::ALL {
        let _ = write!(header, " {:>14}", kind.label());
    }
    let _ = writeln!(out, "{header} {:>10}", "Errors");
    let mut line = |label: &str, tally: &ErrorTally| {
        let mut row = format!("{label:<14}");
        for kind in ErrorKind::ALL {
            let _ = write!(row, " {:>14}", tally.count(kind));
        }
        let _ = writeln!(out, "{row} {:>10}", tally.total());
    };
    for (label, tally) in rows {
        line(label, tally);
    }
    line("Total", combined);
    if !combined.exemplars.is_empty() {
        let list = combined
            .exemplars
            .iter()
            .map(|&(code, position)| {
                let label = ErrorKind::from_wire_code(code)
                    .map(ErrorKind::label)
                    .unwrap_or("unknown");
                format!("{label}@{position}")
            })
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(out, "first errors: {list}");
    }
    out
}

/// The full corpus report: every table, figure and section renderer above
/// (except the streak table, which runs on raw single-day logs rather than a
/// [`CorpusAnalysis`]) concatenated in paper order. This is the
/// byte-comparison unit of the differential gates: two analysis paths agree
/// iff their full reports are identical strings.
pub fn full_report(corpus: &CorpusAnalysis) -> String {
    let combined = &corpus.combined;
    let mut sections = vec![
        table1(corpus),
        table2_keywords(combined),
        figure1_triples(corpus),
        table3_opsets(combined),
        section44_projection(combined),
        section52_fragments(combined),
        figure5_sizes(combined),
        table4_shapes(combined),
        section61_cycles(combined),
        section62_hypertree(combined),
        table5_paths(combined),
    ];
    // Appended only when something was tallied: a clean corpus renders the
    // exact report of releases that predate the error model.
    if !combined.errors.is_empty() {
        sections.push(error_table(corpus));
    }
    sections.join("\n")
}

/// Table 6: streak-length histograms for a set of single-day logs.
pub fn table6_streaks(histograms: &[(String, StreakHistogram)]) -> String {
    let mut out = String::new();
    let mut header = format!("{:<14}", "Streak length");
    for (label, _) in histograms {
        let _ = write!(header, " {label:>12}");
    }
    let _ = writeln!(out, "{header}");
    for bucket in 0..11 {
        let label = if bucket < 10 {
            format!("{}–{}", bucket * 10 + 1, (bucket + 1) * 10)
        } else {
            ">100".to_string()
        };
        let mut row = format!("{label:<14}");
        for (_, h) in histograms {
            let value = if bucket < 10 {
                h.decades[bucket]
            } else {
                h.over_100
            };
            let _ = write!(row, " {value:>12}");
        }
        let _ = writeln!(out, "{row}");
    }
    let mut row = format!("{:<14}", "longest");
    for (_, h) in histograms {
        let _ = write!(row, " {:>12}", h.longest);
    }
    let _ = writeln!(out, "{row}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{CorpusAnalysis, Population};
    use crate::corpus::{ingest, RawLog};

    fn small_corpus() -> CorpusAnalysis {
        let logs = vec![
            ingest(&RawLog::new(
                "A",
                vec![
                    "SELECT ?x WHERE { ?x a <http://C> . ?x <http://p> ?y FILTER(?y > 3) } LIMIT 5"
                        .to_string(),
                    "ASK { ?a <http://p> ?b . ?b <http://p> ?c . ?c <http://p> ?a }".to_string(),
                    "SELECT ?x WHERE { ?x <http://a>/<http://b>* ?y }".to_string(),
                    "garbage entry".to_string(),
                ],
            )),
            ingest(&RawLog::new(
                "B",
                vec![
                    "DESCRIBE <http://r>".to_string(),
                    "ASK { <http://s> <http://p> <http://o> }".to_string(),
                ],
            )),
        ];
        CorpusAnalysis::analyze(&logs, Population::Unique)
    }

    #[test]
    fn all_reports_render_nonempty_text() {
        let corpus = small_corpus();
        let combined = &corpus.combined;
        for report in [
            table1(&corpus),
            table2_keywords(combined),
            figure1_triples(&corpus),
            table3_opsets(combined),
            section44_projection(combined),
            section52_fragments(combined),
            figure5_sizes(combined),
            table4_shapes(combined),
            section61_cycles(combined),
            section62_hypertree(combined),
            table5_paths(combined),
        ] {
            assert!(!report.trim().is_empty());
        }
    }

    #[test]
    fn table1_contains_dataset_rows_and_total() {
        let corpus = small_corpus();
        let t = table1(&corpus);
        assert!(t.contains("A"));
        assert!(t.contains("B"));
        assert!(t.contains("Total"));
        // Dataset A has 4 entries, 3 valid.
        assert!(t.contains('4'));
    }

    #[test]
    fn table4_has_all_shape_rows() {
        let corpus = small_corpus();
        let t = table4_shapes(&corpus.combined);
        for row in [
            "single edge",
            "chain",
            "star",
            "tree",
            "forest",
            "cycle",
            "flower",
            "treewidth",
        ] {
            assert!(t.contains(row), "missing row {row} in:\n{t}");
        }
    }

    #[test]
    fn error_table_lists_malformed_entries_and_total() {
        let corpus = small_corpus();
        let t = error_table(&corpus);
        assert!(t.contains("syntax"), "missing syntax column in:\n{t}");
        assert!(t.contains("Total"));
        // "garbage entry" sits at 0-based position 3 of log A.
        assert!(
            t.contains("first errors: syntax@3"),
            "bad exemplars in:\n{t}"
        );
        assert!(full_report(&corpus).contains("first errors: syntax@3"));
    }

    #[test]
    fn clean_corpora_render_no_error_table() {
        let logs = vec![ingest(&RawLog::new(
            "clean",
            vec!["ASK { <http://s> <http://p> <http://o> }".to_string()],
        ))];
        let corpus = CorpusAnalysis::analyze(&logs, Population::Unique);
        assert!(corpus.combined.errors.is_empty());
        assert!(!full_report(&corpus).contains("first errors"));
        assert!(!full_report(&corpus).contains("worker-panic"));
    }

    #[test]
    fn table6_renders_histograms_side_by_side() {
        let h1 = StreakHistogram {
            decades: [5, 1, 0, 0, 0, 0, 0, 0, 0, 0],
            over_100: 0,
            total: 6,
            longest: 17,
        };
        let h2 = StreakHistogram {
            decades: [2, 0, 0, 0, 0, 0, 0, 0, 0, 0],
            over_100: 1,
            total: 3,
            longest: 169,
        };
        let t = table6_streaks(&[("DBP'15".to_string(), h1), ("DBP'16".to_string(), h2)]);
        assert!(t.contains("DBP'15"));
        assert!(t.contains("169"));
        assert!(t.contains(">100"));
    }
}
