//! Incremental (store-aware) ingestion: analyze only the logs a snapshot
//! memo has not seen, and reuse the persisted per-log results for the rest.
//!
//! Every engine so far — fused, staged, sharded, served — re-analyzes the
//! whole corpus on every run. This module adds the HTAP-style shortcut the
//! ROADMAP's persistent-store item calls for: each log gets a **canonical
//! identity** (a 128-bit FNV-1a over its population, label and raw bytes —
//! computed *before* any parsing, so a hit skips the parse/analyze pipeline
//! entirely), and [`analyze_files_incremental`] consults a [`SnapshotMemo`]
//! by that identity. A **hit** replays the memoized
//! ([`LogSummary`], [`DatasetAnalysis`]) pair; a **miss** runs the fused
//! engine and records the fresh pair back into the memo.
//!
//! The soundness argument is the same one the shard workers rely on:
//! per-log summaries and per-dataset folds never depend on which other logs
//! share the run, so a corpus assembled from any mix of memoized and
//! freshly-analysed logs renders **byte-identical reports** to a cold
//! end-to-end run (`tests/persist.rs` gates this against the fused engine).
//!
//! The memo itself is just a trait: `sparqlog-core` stays storage-agnostic,
//! and the durable implementation (CRC-checked append-only log, commit
//! records, torn-write recovery) lives in the `sparqlog-persist` crate.
//!
//! # Recovery-policy interplay
//!
//! A memoized pair is the *lenient* truth about a log: the tallies are
//! identical under every policy, but [`RecoveryPolicy::Strict`] would have
//! failed the run at the log's first defect instead of producing them. So a
//! hit with a non-empty defect tally is only taken under a policy that
//! recovers; under `Strict` the log is re-analysed, which reproduces the
//! exact strict failure. Budgeted runs stream leniently and meter the
//! budget once over the merged tallies of hits *and* misses — the same
//! single-enforcement-point contract as the shard coordinator and the serve
//! job table.

use crate::analysis::{CorpusAnalysis, DatasetAnalysis, Population};
use crate::fused::{analyze_streams_with, FusedOptions, LogSummary};
use crate::recover::{enforce_budget, ErrorTally, RecoveryPolicy};
use std::io::{self, Read};
use std::path::{Path, PathBuf};

/// 128-bit FNV-1a offset basis (the same constants as the canonical
/// fingerprint hasher in `sparqlog-parser`).
const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// 128-bit FNV-1a prime.
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// How many bytes [`file_identity`] reads per chunk while hashing a log.
const IDENTITY_CHUNK: usize = 64 * 1024;

/// A persisted per-log analysis: exactly what a shard worker ships per log
/// and what a job slot merges — the unit of reuse.
#[derive(Debug, Clone, PartialEq)]
pub struct PersistedLog {
    /// The fused engine's per-log summary (Table-1 counts, fingerprint /
    /// occurrence pairs, error tally).
    pub summary: LogSummary,
    /// The full per-dataset analysis — every tally of the report.
    pub analysis: DatasetAnalysis,
}

/// The storage hook of the incremental path: look a log up by identity,
/// record a fresh analysis under its identity. Implemented by the durable
/// snapshot store in `sparqlog-persist`; an in-memory `HashMap` works for
/// tests.
pub trait SnapshotMemo {
    /// The persisted pair for `key`, if this log was analysed before.
    fn load(&mut self, key: u128) -> Option<PersistedLog>;

    /// Records a freshly analysed log under `key`. Implementations decide
    /// durability (the persist store appends + commits; a map just
    /// inserts).
    fn record(&mut self, key: u128, log: &PersistedLog);
}

/// A [`SnapshotMemo`] that remembers nothing: every log misses, nothing is
/// recorded. [`analyze_files_incremental`] over it is exactly a cold run.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoMemo;

impl SnapshotMemo for NoMemo {
    fn load(&mut self, _key: u128) -> Option<PersistedLog> {
        None
    }
    fn record(&mut self, _key: u128, _log: &PersistedLog) {}
}

/// Hit/miss counters of one incremental run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Logs served from the memo without re-analysis.
    pub hits: u64,
    /// Logs analysed by the fused engine this run (and recorded back).
    pub misses: u64,
}

/// The result of [`analyze_files_incremental`]: per-log summaries and the
/// corpus analysis in input order — the same shape the fused engine
/// produces, rendering the same report bytes — plus the memo counters.
#[derive(Debug, Clone)]
pub struct IncrementalAnalysis {
    /// Per-log summaries, in input order.
    pub summaries: Vec<LogSummary>,
    /// The corpus analysis (per-dataset records + re-merged "Total" row).
    pub corpus: CorpusAnalysis,
    /// How much work the memo absorbed.
    pub stats: MemoStats,
}

/// The canonical identity of a log: 128-bit FNV-1a over the population, the
/// label (length-prefixed, so `("ab", "c")` and `("a", "bc")` differ) and
/// the raw log bytes.
///
/// The population is part of the key because the per-dataset fold weights
/// differ between [`Population::Unique`] and [`Population::Valid`] — one
/// log legitimately has two distinct persisted analyses. The recovery
/// policy is *not* part of the key: tallies are policy-independent, and the
/// policy interplay is handled at lookup time (see the module docs).
pub fn log_identity(population: Population, label: &str, contents: &[u8]) -> u128 {
    let mut state = identity_header(population, label);
    fnv_extend(&mut state, contents);
    state
}

/// [`log_identity`] streamed over a file, in fixed-size chunked reads
/// — hashing never loads the log into memory, so identity computation is
/// cheap even for corpora larger than RAM.
pub fn file_identity(population: Population, label: &str, path: &Path) -> io::Result<u128> {
    let mut state = identity_header(population, label);
    let mut file = std::fs::File::open(path)?;
    let mut chunk = vec![0u8; IDENTITY_CHUNK];
    loop {
        match file.read(&mut chunk) {
            Ok(0) => return Ok(state),
            Ok(n) => fnv_extend(&mut state, &chunk[..n]),
            Err(error) if error.kind() == io::ErrorKind::Interrupted => continue,
            Err(error) => return Err(error),
        }
    }
}

fn identity_header(population: Population, label: &str) -> u128 {
    let mut state = FNV_OFFSET;
    fnv_extend(
        &mut state,
        &[match population {
            Population::Unique => 0,
            Population::Valid => 1,
        }],
    );
    fnv_extend(&mut state, &(label.len() as u64).to_le_bytes());
    fnv_extend(&mut state, label.as_bytes());
    state
}

fn fnv_extend(state: &mut u128, bytes: &[u8]) {
    for &byte in bytes {
        *state ^= u128::from(byte);
        *state = state.wrapping_mul(FNV_PRIME);
    }
}

/// Whether a memoized pair may substitute for re-analysis under `policy`:
/// always, except under a strict policy when the log has defects (strict
/// would have failed the run — the re-analysis reproduces that failure).
fn hit_usable(policy: RecoveryPolicy, summary: &LogSummary) -> bool {
    match policy.resolve() {
        RecoveryPolicy::Strict => summary.errors.defects() == 0,
        _ => true,
    }
}

/// Analyses `(label, path)` logs incrementally: logs whose identity the
/// memo knows are served from it; the rest run through the fused engine
/// (one sub-run over all misses) and are recorded back. Reports rendered
/// from the result are byte-identical to a cold fused run over the same
/// files — see the module docs for the argument and `tests/persist.rs` for
/// the gate.
pub fn analyze_files_incremental(
    files: &[(String, PathBuf)],
    population: Population,
    options: FusedOptions,
    memo: &mut dyn SnapshotMemo,
) -> io::Result<IncrementalAnalysis> {
    let policy = options.recovery.resolve();

    // Identity + lookup pass: no parsing, just one hashing read per file.
    let mut slots: Vec<Option<PersistedLog>> = Vec::with_capacity(files.len());
    let mut miss_keys = Vec::new();
    let mut misses: Vec<(usize, &String, &PathBuf)> = Vec::new();
    let mut stats = MemoStats::default();
    for (slot, (label, path)) in files.iter().enumerate() {
        let key = file_identity(population, label, path)?;
        match memo
            .load(key)
            .filter(|hit| hit_usable(policy, &hit.summary))
        {
            Some(hit) => {
                stats.hits += 1;
                slots.push(Some(hit));
            }
            None => {
                stats.misses += 1;
                slots.push(None);
                miss_keys.push(key);
                misses.push((slot, label, path));
            }
        }
    }

    // One fused sub-run over the misses. A budgeted policy streams
    // leniently here — the budget is a whole-run rate over hits and misses
    // together, metered once below (the shard-worker contract).
    if !misses.is_empty() {
        let readers = misses
            .iter()
            .map(|(_, label, path)| {
                crate::corpus::FileLogReader::open((*label).clone(), path)
                    .map(|reader| Box::new(reader) as Box<dyn crate::corpus::LogReader>)
            })
            .collect::<io::Result<Vec<_>>>()?;
        let fused = analyze_streams_with(
            readers,
            population,
            FusedOptions {
                recovery: match policy {
                    RecoveryPolicy::ErrorBudget { .. } => RecoveryPolicy::Lenient,
                    other => other,
                },
                ..options
            },
        )?;
        let pairs = fused
            .summaries
            .into_iter()
            .zip(fused.corpus.datasets)
            .zip(miss_keys);
        for (((summary, analysis), key), (slot, _, _)) in pairs.zip(&misses) {
            let log = PersistedLog { summary, analysis };
            memo.record(key, &log);
            slots[*slot] = Some(log);
        }
    }

    // Assemble in input order and re-merge the "Total" row — the same
    // commutative merge the serve job table uses, which is byte-identical
    // to the fused engine's own combined row.
    let logs: Vec<PersistedLog> = slots
        .into_iter()
        .map(|slot| slot.expect("every slot is a hit or a recorded miss"))
        .collect();
    let mut combined = DatasetAnalysis {
        label: "Total".to_string(),
        ..DatasetAnalysis::default()
    };
    let mut tally = ErrorTally::default();
    let mut entries = 0u64;
    for log in &logs {
        combined.merge(&log.analysis);
        tally.merge(&log.summary.errors);
        entries += log.summary.counts.total;
    }
    // The single budget-enforcement point over the whole (hit + miss) run.
    enforce_budget(policy, &tally, entries)?;

    let mut summaries = Vec::with_capacity(logs.len());
    let mut datasets = Vec::with_capacity(logs.len());
    for log in logs {
        summaries.push(log.summary);
        datasets.push(log.analysis);
    }
    Ok(IncrementalAnalysis {
        summaries,
        corpus: CorpusAnalysis { datasets, combined },
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::full_report;
    use std::collections::HashMap;
    use std::io::Write as _;

    #[derive(Default)]
    struct MapMemo {
        map: HashMap<u128, PersistedLog>,
        loads: u64,
        records: u64,
    }

    impl SnapshotMemo for MapMemo {
        fn load(&mut self, key: u128) -> Option<PersistedLog> {
            self.loads += 1;
            self.map.get(&key).cloned()
        }
        fn record(&mut self, key: u128, log: &PersistedLog) {
            self.records += 1;
            self.map.insert(key, log.clone());
        }
    }

    fn write_logs(dir: &Path, logs: &[(&str, &[&str])]) -> Vec<(String, PathBuf)> {
        logs.iter()
            .enumerate()
            .map(|(index, (label, entries))| {
                let path = dir.join(format!("{index}.log"));
                let mut file = std::fs::File::create(&path).unwrap();
                for entry in *entries {
                    writeln!(file, "{entry}").unwrap();
                }
                (label.to_string(), path)
            })
            .collect()
    }

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sparqlog-incremental-{name}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    const CLEAN: [&str; 3] = [
        "SELECT ?x WHERE { ?x a <http://C> }",
        "ASK { <http://s> <http://p> <http://o> }",
        "DESCRIBE <http://r>",
    ];

    #[test]
    fn identities_separate_population_label_and_content() {
        let id = log_identity(Population::Unique, "a", b"xyz");
        assert_ne!(id, log_identity(Population::Valid, "a", b"xyz"));
        assert_ne!(id, log_identity(Population::Unique, "b", b"xyz"));
        assert_ne!(id, log_identity(Population::Unique, "a", b"xyw"));
        // Length-prefixed label: shifting bytes between label and content
        // changes the key.
        assert_ne!(
            log_identity(Population::Unique, "ab", b"c"),
            log_identity(Population::Unique, "a", b"bc")
        );
    }

    #[test]
    fn file_identity_matches_in_memory_identity() {
        let dir = scratch("file-id");
        let path = dir.join("log");
        std::fs::write(&path, b"some log bytes\nmore\n").unwrap();
        assert_eq!(
            file_identity(Population::Unique, "lbl", &path).unwrap(),
            log_identity(Population::Unique, "lbl", b"some log bytes\nmore\n")
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_runs_skip_analysis_and_render_identical_reports() {
        let dir = scratch("warm");
        let files = write_logs(&dir, &[("alpha", &CLEAN), ("beta", &CLEAN[..2])]);
        let mut memo = MapMemo::default();

        let cold = analyze_files_incremental(
            &files,
            Population::Unique,
            FusedOptions::default(),
            &mut memo,
        )
        .unwrap();
        assert_eq!(cold.stats, MemoStats { hits: 0, misses: 2 });
        assert_eq!(memo.records, 2);

        let warm = analyze_files_incremental(
            &files,
            Population::Unique,
            FusedOptions::default(),
            &mut memo,
        )
        .unwrap();
        assert_eq!(warm.stats, MemoStats { hits: 2, misses: 0 });
        assert_eq!(memo.records, 2, "a warm run records nothing new");
        assert_eq!(full_report(&warm.corpus), full_report(&cold.corpus));
        assert_eq!(warm.summaries, cold.summaries);

        // And both match a cold fused run exactly (the no-memo reference).
        let reference = analyze_files_incremental(
            &files,
            Population::Unique,
            FusedOptions::default(),
            &mut NoMemo,
        )
        .unwrap();
        assert_eq!(full_report(&reference.corpus), full_report(&cold.corpus));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_changed_file_misses_and_only_it_reanalyzes() {
        let dir = scratch("changed");
        let files = write_logs(&dir, &[("alpha", &CLEAN), ("beta", &CLEAN[..2])]);
        let mut memo = MapMemo::default();
        analyze_files_incremental(
            &files,
            Population::Unique,
            FusedOptions::default(),
            &mut memo,
        )
        .unwrap();

        // Append an entry to beta: alpha stays a hit, beta re-analyzes.
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&files[1].1)
            .unwrap();
        writeln!(file, "SELECT ?y WHERE {{ ?y a <http://D> }}").unwrap();
        drop(file);
        let second = analyze_files_incremental(
            &files,
            Population::Unique,
            FusedOptions::default(),
            &mut memo,
        )
        .unwrap();
        assert_eq!(second.stats, MemoStats { hits: 1, misses: 1 });
        assert_eq!(second.summaries[1].counts.total, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn strict_policy_refuses_defective_hits_and_reproduces_the_failure() {
        let dir = scratch("strict");
        // An invalid-UTF-8 line is a *defect* (not mere invalidity).
        let path = dir.join("dirty.log");
        let mut file = std::fs::File::create(&path).unwrap();
        file.write_all(b"SELECT ?x WHERE { ?x a <http://C> }\n\xFF\xFE\n")
            .unwrap();
        drop(file);
        let files = vec![("dirty".to_string(), path)];

        // Lenient cold run persists the (defective) tally.
        let mut memo = MapMemo::default();
        let lenient = |memo: &mut MapMemo| {
            analyze_files_incremental(
                &files,
                Population::Unique,
                FusedOptions {
                    recovery: RecoveryPolicy::Lenient,
                    ..FusedOptions::default()
                },
                memo,
            )
        };
        let cold = lenient(&mut memo).unwrap();
        assert_eq!(cold.summaries[0].errors.defects(), 1);

        // A strict warm run must NOT serve the hit: it re-analyses and
        // fails exactly like a cold strict run would.
        let strict = analyze_files_incremental(
            &files,
            Population::Unique,
            FusedOptions {
                recovery: RecoveryPolicy::Strict,
                ..FusedOptions::default()
            },
            &mut memo,
        );
        assert!(strict.is_err());

        // A lenient warm run still hits.
        let warm = lenient(&mut memo).unwrap();
        assert_eq!(warm.stats, MemoStats { hits: 1, misses: 0 });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budget_is_metered_over_hits_and_misses_together() {
        let dir = scratch("budget");
        let path = dir.join("dirty.log");
        let mut file = std::fs::File::create(&path).unwrap();
        // 1 defect in 2 entries: 5000 per 10k.
        file.write_all(b"SELECT ?x WHERE { ?x a <http://C> }\n\xFF\xFE\n")
            .unwrap();
        drop(file);
        let files = vec![("dirty".to_string(), path)];
        let mut memo = MapMemo::default();
        let run = |memo: &mut MapMemo, max_per_10k| {
            analyze_files_incremental(
                &files,
                Population::Unique,
                FusedOptions {
                    recovery: RecoveryPolicy::ErrorBudget { max_per_10k },
                    ..FusedOptions::default()
                },
                memo,
            )
        };
        // Generous budget: cold run persists.
        run(&mut memo, 9_000).unwrap();
        // Tight budget on a warm run: the hit is taken, but the budget is
        // still enforced over the merged tallies — the run fails.
        assert!(run(&mut memo, 1).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
