//! The original multi-walk analysis path, preserved verbatim as a reference
//! implementation.
//!
//! The seed pipeline analysed each query by calling four independent entry
//! points — [`QueryFeatures::of`], [`collect_property_paths`],
//! [`sparqlog_algebra::ProjectionTally::add`] and [`StructuralReport::of`] —
//! each of which
//! traverses the AST on its own. The single-pass engine
//! ([`crate::query_analysis::QueryAnalysis`]) replaces that with one shared
//! traversal; this module keeps the old composition alive so that
//!
//! * the differential tests can assert byte-identical results between the
//!   two paths on arbitrary corpora, and
//! * the `single_pass` benchmark can measure the speedup.

use crate::analysis::{CorpusAnalysis, DatasetAnalysis, Population};
use crate::corpus::IngestedLog;
use sparqlog_algebra::fragments::{classify_fragments, variable_equalities};
use sparqlog_algebra::opsets::classify_from_features;
use sparqlog_algebra::pattern_tree::PatternTree;
use sparqlog_algebra::{collect_property_paths, QueryFeatures};
use sparqlog_graph::analyze::HypertreeReportEntry;
use sparqlog_graph::{
    generalized_hypertree_width, treewidth, CanonicalGraph, GraphMode, Hypergraph, ShapeReport,
    StructuralReport, Treewidth,
};
use sparqlog_parser::Query;

/// Folds one query into the tallies through the seed multi-walk path: every
/// measure re-traverses the query independently.
pub fn add_query_multiwalk(analysis: &mut DatasetAnalysis, query: &Query) {
    let features = QueryFeatures::of(query);
    analysis.keywords.add(&features);
    analysis.triples.add(&features);
    analysis.projection.add(query);
    for p in collect_property_paths(query) {
        analysis.paths.add(p);
    }
    if features.is_select_or_ask() {
        analysis.opsets.add(classify_from_features(&features));
    }
    let structural = structural_report_multiwalk(query);
    analysis.fold_structural(&structural);
}

/// The seed implementation of `StructuralReport::of`, verbatim: the fragment
/// classification runs its own body walk, the pattern tree is built twice
/// (once inside `classify_fragments`, once here), the tree's triples are
/// cloned, and the two graph modes are constructed in two separate passes.
pub fn structural_report_multiwalk(query: &Query) -> StructuralReport {
    let fragments = classify_fragments(query);
    let mut report = StructuralReport {
        fragments,
        shape: None,
        shape_vars_only: None,
        treewidth: None,
        shortest_cycle: None,
        hypertree: None,
        triples: fragments.triples,
    };
    if !fragments.in_cqof() || !fragments.select_or_ask {
        return report;
    }
    let Some(tree) = PatternTree::build(query) else {
        return report;
    };
    let triples: Vec<_> = tree.all_triples().into_iter().cloned().collect();
    let filters = tree.all_filters();
    let equalities = variable_equalities(&filters);

    if fragments.has_var_predicate {
        let hg = Hypergraph::from_triples(&triples, &equalities);
        report.hypertree = generalized_hypertree_width(&hg, 5).map(HypertreeReportEntry::from);
        return report;
    }
    if let Some(graph) =
        CanonicalGraph::from_triples(&triples, &equalities, GraphMode::WithConstants)
    {
        report.shape = Some(ShapeReport::classify(&graph));
        report.treewidth = Some(match treewidth(&graph) {
            Treewidth::Exact(k) | Treewidth::UpperBound(k) => k,
        });
        report.shortest_cycle = graph.girth();
    }
    if let Some(graph) =
        CanonicalGraph::from_triples(&triples, &equalities, GraphMode::VariablesOnly)
    {
        report.shape_vars_only = Some(ShapeReport::classify(&graph));
    }
    report
}

/// Analyses a corpus sequentially through the multi-walk path — the seed
/// behaviour of `CorpusAnalysis::analyze`.
pub fn analyze_multiwalk(logs: &[IngestedLog], population: Population) -> CorpusAnalysis {
    let mut datasets = Vec::with_capacity(logs.len());
    for log in logs {
        let mut analysis = DatasetAnalysis {
            label: log.label.clone(),
            counts: log.counts,
            errors: log.errors.clone(),
            ..DatasetAnalysis::default()
        };
        match population {
            Population::Unique => {
                for q in log.unique_queries() {
                    add_query_multiwalk(&mut analysis, q);
                }
            }
            Population::Valid => {
                for q in &log.valid_queries {
                    add_query_multiwalk(&mut analysis, q);
                }
            }
        }
        datasets.push(analysis);
    }
    let mut combined = DatasetAnalysis {
        label: "Total".to_string(),
        ..DatasetAnalysis::default()
    };
    for d in &datasets {
        combined.merge(d);
    }
    CorpusAnalysis { datasets, combined }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{ingest, RawLog};

    #[test]
    fn multiwalk_agrees_with_single_pass_on_a_small_log() {
        let log = ingest(&RawLog::new(
            "t",
            [
                "SELECT ?x WHERE { ?x a <http://C> . ?x <http://p> ?y FILTER(?y > 3) }",
                "ASK { ?a <http://p> ?b . ?b <http://p> ?c . ?c <http://p> ?a }",
                "SELECT ?x WHERE { ?x <http://a>/<http://b>* ?y }",
                "DESCRIBE <http://r>",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        ));
        let logs = [log];
        let multi = analyze_multiwalk(&logs, Population::Unique);
        let single = CorpusAnalysis::analyze(&logs, Population::Unique);
        assert_eq!(format!("{multi:?}"), format!("{single:?}"));
    }
}
