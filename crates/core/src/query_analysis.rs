//! The shared per-query intermediate of the single-pass analysis engine.
//!
//! [`QueryAnalysis::of`] is the only place in the pipeline that looks at a
//! query's AST: it runs one [`QueryWalk`] over the body and derives every
//! per-query measure — features, projection use, property-path tallies and
//! the structural report — from that single traversal, with one canonical-
//! graph construction shared by the shape, treewidth, girth and
//! constants-excluded analyses. [`crate::analysis::DatasetAnalysis::add`]
//! then folds the intermediate into the corpus tallies without touching the
//! AST again.
//!
//! The original per-measure path (four-plus traversals per query) survives in
//! [`crate::baseline`] as the reference the differential tests compare
//! against.

use sparqlog_algebra::{
    classify_fragments_from_walk, classify_fragments_from_walk_ref, projection_use_from_walk,
    projection_use_from_walk_ref, ProjectionUse, QueryFeatures, QueryWalk, QueryWalkRef,
};
use sparqlog_graph::StructuralReport;
use sparqlog_parser::ast::QueryForm;
use sparqlog_parser::ast_ref;
use sparqlog_parser::intern::Interner;
use sparqlog_parser::Query;
use sparqlog_paths::PathTally;

/// Everything the corpus tallies need to know about one query, computed in a
/// single pass.
#[derive(Debug, Clone)]
pub struct QueryAnalysis {
    /// The query form.
    pub form: QueryForm,
    /// The shallow features (keywords, triples, operator sets).
    pub features: QueryFeatures,
    /// Whether the query uses projection (SPARQL 1.1 §18.2.1).
    pub projection: ProjectionUse,
    /// Whether the body contains subqueries.
    pub has_subqueries: bool,
    /// The per-query property-path tally (merged into the dataset tally).
    pub paths: PathTally,
    /// Fragment membership, shape, treewidth and hypertree width.
    pub structural: StructuralReport,
}

impl QueryAnalysis {
    /// Analyses one query with exactly one AST traversal and (for CQ-like
    /// queries) one canonical-graph construction, using a throwaway term
    /// interner. Workers analysing many queries should prefer
    /// [`QueryAnalysis::of_with`] with a long-lived interner so term strings
    /// repeated across queries are stored once.
    pub fn of(query: &Query) -> QueryAnalysis {
        QueryAnalysis::of_with(query, &mut Interner::new())
    }

    /// [`QueryAnalysis::of`] with an explicit per-worker [`Interner`]: the
    /// walk's
    /// visible-variable set, the projection test and the canonical-graph
    /// construction all run over `u32` symbols instead of strings. The
    /// result is byte-identical for any interner state (symbols never leak
    /// into the returned record).
    pub fn of_with(query: &Query, interner: &mut Interner) -> QueryAnalysis {
        let walk = QueryWalk::of(query, interner);
        let features = QueryFeatures::from_walk(query, &walk);
        let projection = projection_use_from_walk(query, &walk, interner);
        let fragments = classify_fragments_from_walk(query, &walk);
        let structural =
            StructuralReport::from_walk_interned(fragments, walk.tree.as_ref(), interner);
        let mut paths = PathTally::new();
        for p in &walk.paths {
            paths.add(p);
        }
        QueryAnalysis {
            form: query.form,
            features,
            projection,
            has_subqueries: walk.ops.subqueries > 0,
            paths,
            structural,
        }
    }

    /// [`QueryAnalysis::of_with`] over a borrowed, arena-allocated AST
    /// ([`ast_ref::Query`]): the analysis runs directly on the zero-copy
    /// parse result without first materializing an owned AST. Property
    /// paths are the only nodes converted to owned form (per path, at
    /// tally time); everything else walks the borrowed tree. The returned
    /// record is byte-identical to `of_with(&query.to_owned(), interner)`
    /// and owns no arena data, so the caller may reset the arena as soon
    /// as this returns.
    pub fn of_ref(query: &ast_ref::Query<'_>, interner: &mut Interner) -> QueryAnalysis {
        let walk = QueryWalkRef::of(query, interner);
        let features = QueryFeatures::from_walk_ref(query, &walk);
        let projection = projection_use_from_walk_ref(query, &walk, interner);
        let fragments = classify_fragments_from_walk_ref(query, &walk);
        let structural =
            StructuralReport::from_walk_interned(fragments, walk.tree.as_ref(), interner);
        let mut paths = PathTally::new();
        for p in &walk.paths {
            paths.add(&p.to_owned());
        }
        QueryAnalysis {
            form: query.form,
            features,
            projection,
            has_subqueries: walk.ops.subqueries > 0,
            paths,
            structural,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparqlog_parser::parse_query;

    fn qa(text: &str) -> QueryAnalysis {
        QueryAnalysis::of(&parse_query(text).unwrap())
    }

    #[test]
    fn single_pass_matches_multiwalk_entry_points() {
        for text in [
            "SELECT ?x WHERE { ?x a <http://C> . ?x <http://p> ?y FILTER(?y > 3) } LIMIT 5",
            "ASK { <http://s> <http://p> <http://o> }",
            "SELECT ?x WHERE { ?x <http://a>/<http://b>* ?y }",
            "ASK { ?a <http://p> ?b . ?b <http://p> ?c . ?c <http://p> ?a }",
            "DESCRIBE <http://r>",
            "SELECT * WHERE { ?A <name> ?N OPTIONAL { ?A <email> ?E } }",
            "SELECT ?x WHERE { { ?x <p> ?y } UNION { ?x <q> ?y } }",
            "SELECT ?x WHERE { ?x a <http://C> FILTER NOT EXISTS { ?x <http://p> ?y } }",
            "ASK { ?x1 ?p ?x2 . ?x2 <http://a> ?x3 . ?x3 ?p ?x4 }",
        ] {
            let q = parse_query(text).unwrap();
            let single = QueryAnalysis::of(&q);
            assert_eq!(single.features, QueryFeatures::of(&q), "{text}");
            assert_eq!(
                single.projection,
                sparqlog_algebra::projection_use(&q),
                "{text}"
            );
            assert_eq!(single.structural, StructuralReport::of(&q), "{text}");
            let mut paths = PathTally::new();
            for p in sparqlog_algebra::collect_property_paths(&q) {
                paths.add(p);
            }
            assert_eq!(single.paths, paths, "{text}");
        }
    }

    #[test]
    fn reused_interner_does_not_change_results() {
        // A worker's interner accumulates symbols across queries; the
        // analysis of each query must not depend on that state.
        let mut interner = Interner::new();
        for text in [
            "SELECT ?x WHERE { ?x a <http://C> . ?x <http://p> ?y FILTER(?y > 3) } LIMIT 5",
            "SELECT ?y WHERE { ?y a <http://C> . ?y <http://p> ?x }",
            "ASK { ?a <http://p> ?b . ?b <http://p> ?c . ?c <http://p> ?a }",
            "SELECT ?x WHERE { ?x <http://p> <http://const> }",
            "SELECT * WHERE { ?a <http://p> ?b . ?b <http://p> ?c FILTER(?c = ?a) }",
        ] {
            let q = parse_query(text).unwrap();
            let fresh = QueryAnalysis::of(&q);
            let reused = QueryAnalysis::of_with(&q, &mut interner);
            assert_eq!(format!("{fresh:?}"), format!("{reused:?}"), "{text}");
        }
        assert!(interner.stats().hits > 0);
    }

    #[test]
    fn path_tally_collects_every_path() {
        let a = qa("SELECT * WHERE { ?x <a>/<b> ?y . ?y <c>* ?z GRAPH ?g { ?z ^<d> ?w } }");
        assert_eq!(a.paths.total, 3);
    }

    #[test]
    fn borrowed_ast_analysis_matches_owned_ast_analysis() {
        use sparqlog_parser::{parse_query_in, Arena};
        let arena = Arena::new();
        for text in [
            "SELECT ?x WHERE { ?x a <http://C> . ?x <http://p> ?y FILTER(?y > 3) } LIMIT 5",
            "ASK { <http://s> <http://p> <http://o> }",
            "SELECT ?x WHERE { ?x <http://a>/<http://b>* ?y }",
            "DESCRIBE <http://r>",
            "SELECT * WHERE { ?A <name> ?N OPTIONAL { ?A <email> ?E } }",
            "SELECT ?x WHERE { { ?x <p> ?y } UNION { ?x <q> ?y } }",
            "SELECT ?x WHERE { ?x a <http://C> FILTER NOT EXISTS { ?x <http://p> ?y } }",
            "SELECT (COUNT(?x) AS ?n) WHERE { ?x ?p ?o } GROUP BY ?p HAVING(COUNT(?x) > 1)",
            "SELECT * WHERE { SERVICE <http://ep> { ?s ?p ?o } VALUES ?s { <http://a> } }",
            "SELECT * WHERE { ?x <a>/<b> ?y . ?y <c>* ?z GRAPH ?g { ?z ^<d> ?w } }",
        ] {
            let borrowed = parse_query_in(text, &arena).unwrap();
            let owned = borrowed.to_owned();
            let mut interner = Interner::new();
            let via_ref = QueryAnalysis::of_ref(&borrowed, &mut interner);
            let mut interner2 = Interner::new();
            let via_owned = QueryAnalysis::of_with(&owned, &mut interner2);
            assert_eq!(format!("{via_ref:?}"), format!("{via_owned:?}"), "{text}");
        }
    }
}
