//! The per-dataset and corpus-level analysis record combining every measure
//! of the paper: shallow statistics, fragments, shapes, widths, property
//! paths.
//!
//! Folding is driven by the single-pass [`QueryAnalysis`] intermediate: each
//! query's AST is traversed exactly once, and [`CorpusAnalysis::analyze`]
//! distributes the queries of *all* datasets over a chunked work-stealing
//! pool bounded by the available cores, merging per-worker accumulators with
//! the commutative `merge` methods (so the result is independent of worker
//! count and chunk schedule).

use crate::cache::{AnalysisCache, CacheStats};
use crate::corpus::{CorpusCounts, IngestedLog};
use crate::query_analysis::QueryAnalysis;
use crate::recover::{ErrorTally, RecoveryPolicy};
use serde::{Deserialize, Serialize};
use sparqlog_algebra::opsets::classify_from_features;
use sparqlog_algebra::{FragmentTally, KeywordTally, OpSetTally, ProjectionTally, TripleHistogram};
use sparqlog_graph::{ShapeTally, StructuralReport};
use sparqlog_parser::intern::{InternStats, Interner};
use sparqlog_parser::Query;
use sparqlog_paths::PathTally;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Size histogram of CQ-like queries with at least two triples (Figure 5 /
/// Figure 9): buckets for 2..=10 triples and 11+.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FragmentSizeHistogram {
    /// Counts for exactly 2..=10 triples (index 0 = 2 triples).
    pub buckets: [u64; 9],
    /// Count for 11 or more triples.
    pub eleven_plus: u64,
    /// Queries with exactly one triple (reported in the Figure-5 caption).
    pub one_triple: u64,
    /// Total queries in the fragment.
    pub total: u64,
    /// The largest query observed (number of triples).
    pub max_triples: u32,
}

impl FragmentSizeHistogram {
    /// Records one query of the fragment with the given triple count.
    pub fn add(&mut self, triples: u32) {
        self.total += 1;
        self.max_triples = self.max_triples.max(triples);
        match triples {
            0 | 1 => self.one_triple += u64::from(triples == 1),
            2..=10 => self.buckets[(triples - 2) as usize] += 1,
            _ => self.eleven_plus += 1,
        }
    }

    /// Merges another histogram.
    pub fn merge(&mut self, other: &FragmentSizeHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.eleven_plus += other.eleven_plus;
        self.one_triple += other.one_triple;
        self.total += other.total;
        self.max_triples = self.max_triples.max(other.max_triples);
    }

    /// Multiplies every additive counter by `times`, leaving the
    /// `max_triples` extremum untouched (a maximum is idempotent under
    /// repeated adds of the same value). Used by the fused engine's
    /// occurrence-weighted fold.
    pub fn scale(&mut self, times: u64) {
        for bucket in &mut self.buckets {
            *bucket *= times;
        }
        self.eleven_plus *= times;
        self.one_triple *= times;
        self.total *= times;
    }

    /// The share of one-triple queries in the fragment.
    pub fn one_triple_share(&self) -> f64 {
        self.one_triple as f64 / self.total.max(1) as f64
    }
}

/// Aggregated hypertree-width results for variable-predicate CQOF queries
/// (Section 6.2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HypertreeTally {
    /// Queries analysed through their hypergraph.
    pub total: u64,
    /// Hypertree width 1 (acyclic).
    pub width1: u64,
    /// Hypertree width 2.
    pub width2: u64,
    /// Hypertree width 3.
    pub width3: u64,
    /// Width 4 or more, or inexact results.
    pub wider_or_unknown: u64,
    /// Decompositions with more than 100 nodes.
    pub over_100_nodes: u64,
    /// The largest decomposition node count observed.
    pub max_nodes: u64,
}

impl HypertreeTally {
    /// Records a hypertree result.
    pub fn add(&mut self, width: usize, nodes: usize, exact: bool) {
        self.total += 1;
        if !exact {
            self.wider_or_unknown += 1;
        } else {
            match width {
                0 | 1 => self.width1 += 1,
                2 => self.width2 += 1,
                3 => self.width3 += 1,
                _ => self.wider_or_unknown += 1,
            }
        }
        self.max_nodes = self.max_nodes.max(nodes as u64);
        if nodes > 100 {
            self.over_100_nodes += 1;
        }
    }

    /// Merges another tally.
    pub fn merge(&mut self, other: &HypertreeTally) {
        self.total += other.total;
        self.width1 += other.width1;
        self.width2 += other.width2;
        self.width3 += other.width3;
        self.wider_or_unknown += other.wider_or_unknown;
        self.over_100_nodes += other.over_100_nodes;
        self.max_nodes = self.max_nodes.max(other.max_nodes);
    }

    /// Multiplies every additive counter by `times`, leaving the `max_nodes`
    /// extremum untouched. Used by the fused engine's occurrence-weighted
    /// fold.
    pub fn scale(&mut self, times: u64) {
        self.total *= times;
        self.width1 *= times;
        self.width2 *= times;
        self.width3 *= times;
        self.wider_or_unknown *= times;
        self.over_100_nodes *= times;
    }
}

/// The complete analysis of one dataset (or of the whole corpus, when
/// merged).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DatasetAnalysis {
    /// The dataset label.
    pub label: String,
    /// Table-1 counts.
    pub counts: CorpusCounts,
    /// The malformed-entry tally of this dataset (per-kind counts and the
    /// earliest offending positions). Set from the log header like
    /// `counts`, never from the per-query fold — worker accumulators carry
    /// empty tallies, and the corpus-level merge aggregates them into the
    /// "Total" row.
    pub errors: ErrorTally,
    /// Keyword census (Table 2 / 7).
    pub keywords: KeywordTally,
    /// Triples-per-query histogram (Figure 1 / 8).
    pub triples: TripleHistogram,
    /// Operator-set distribution over SELECT/ASK queries (Table 3 / 8).
    pub opsets: OpSetTally,
    /// Projection statistics (Section 4.4).
    pub projection: ProjectionTally,
    /// Fragment shares (Section 5.2).
    pub fragments: FragmentTally,
    /// Shape analysis of the (cumulative) CQ fragment (Table 4, left).
    pub shapes_cq: ShapeTally,
    /// Shape analysis of the CQF fragment (Table 4, middle).
    pub shapes_cqf: ShapeTally,
    /// Shape analysis of the CQOF fragment (Table 4, right).
    pub shapes_cqof: ShapeTally,
    /// Size histograms of the CQ / CQF / CQOF fragments (Figure 5 / 9).
    pub sizes_cq: FragmentSizeHistogram,
    /// Size histogram of the CQF fragment.
    pub sizes_cqf: FragmentSizeHistogram,
    /// Size histogram of the CQOF fragment.
    pub sizes_cqof: FragmentSizeHistogram,
    /// Shortest-cycle-length distribution of cyclic queries (Section 6.1).
    pub cycle_lengths: BTreeMap<usize, u64>,
    /// Hypertree-width results for variable-predicate queries (Section 6.2).
    pub hypertree: HypertreeTally,
    /// Property-path statistics (Table 5 / Figure 10, Section 7).
    pub paths: PathTally,
    /// Single-edge CQs whose edge involves a constant (Section 6.1 rerun).
    pub single_edge_with_constants: u64,
}

impl DatasetAnalysis {
    /// Analyses one query and folds it into the tallies. The per-query work
    /// performs exactly one AST traversal and one canonical-graph
    /// construction (see [`QueryAnalysis::of`]).
    pub fn add_query(&mut self, query: &Query) {
        self.add(&QueryAnalysis::of(query));
    }

    /// [`DatasetAnalysis::add_query`] through a caller-owned term interner —
    /// the pattern the analysis workers use, so term strings repeated across
    /// a fold loop are interned once.
    pub fn add_query_with(&mut self, query: &Query, interner: &mut Interner) {
        self.add(&QueryAnalysis::of_with(query, interner));
    }

    /// Folds an already-computed per-query analysis into the tallies `times`
    /// times at once — the occurrence-weighted fold of the fused streaming
    /// engine ([`crate::fused::analyze_streams`]), which records each
    /// distinct canonical form together with its occurrence count instead of
    /// re-folding the memoized record per occurrence.
    ///
    /// Exactly equivalent to calling [`DatasetAnalysis::add`] `times` times:
    /// every tally is a combination of additive counters (which scale by
    /// `times`) and extrema (which are idempotent under repeated adds of the
    /// same record). `times == 0` is a no-op.
    pub fn add_times(&mut self, qa: &QueryAnalysis, times: u64) {
        match times {
            0 => {}
            1 => self.add(qa),
            _ => {
                let mut unit = DatasetAnalysis::default();
                unit.add(qa);
                unit.scale(times);
                self.merge(&unit);
            }
        }
    }

    /// Multiplies every additive counter of every tally by `times`, leaving
    /// extrema (`max_triples`, `max_nodes`, observed path-`k` ranges)
    /// untouched. A `DatasetAnalysis` built from one [`DatasetAnalysis::add`]
    /// and then scaled equals `times` repeated adds of the same record —
    /// the building block of [`DatasetAnalysis::add_times`].
    pub fn scale(&mut self, times: u64) {
        // `errors` is deliberately untouched: error tallies are header
        // state (set per log, like `label`), never part of the per-query
        // fold, so scaled accumulators always carry an empty tally.
        self.counts.scale(times);
        self.keywords.scale(times);
        self.triples.scale(times);
        self.opsets.scale(times);
        self.projection.scale(times);
        self.fragments.scale(times);
        self.shapes_cq.scale(times);
        self.shapes_cqf.scale(times);
        self.shapes_cqof.scale(times);
        self.sizes_cq.scale(times);
        self.sizes_cqf.scale(times);
        self.sizes_cqof.scale(times);
        for count in self.cycle_lengths.values_mut() {
            *count *= times;
        }
        self.hypertree.scale(times);
        self.paths.scale(times);
        self.single_edge_with_constants *= times;
    }

    /// Folds an already-computed per-query analysis into the tallies without
    /// touching the query again.
    pub fn add(&mut self, qa: &QueryAnalysis) {
        self.keywords.add(&qa.features);
        self.triples.add(&qa.features);
        self.projection
            .record(qa.form, qa.projection, qa.has_subqueries);
        self.paths.merge(&qa.paths);
        if qa.features.is_select_or_ask() {
            self.opsets.add(classify_from_features(&qa.features));
        }
        self.fold_structural(&qa.structural);
    }

    /// Folds a structural report into the fragment, shape, size, cycle and
    /// width tallies (shared by the single-pass and the
    /// [`crate::baseline`] multi-walk paths).
    pub(crate) fn fold_structural(&mut self, structural: &StructuralReport) {
        self.fragments.add(&structural.fragments);
        if structural.fragments.select_or_ask {
            let tw = structural.treewidth.unwrap_or(1);
            if let Some(shape) = &structural.shape {
                if structural.fragments.in_cq() {
                    self.shapes_cq.add(shape, tw);
                }
                if structural.fragments.in_cqf() {
                    self.shapes_cqf.add(shape, tw);
                }
                if structural.fragments.in_cqof() {
                    self.shapes_cqof.add(shape, tw);
                }
                if shape.single_edge {
                    if let Some(vars_only) = &structural.shape_vars_only {
                        if !vars_only.single_edge {
                            self.single_edge_with_constants += 1;
                        }
                    }
                }
            }
            if structural.fragments.in_cq() {
                self.sizes_cq.add(structural.triples);
            }
            if structural.fragments.in_cqf() {
                self.sizes_cqf.add(structural.triples);
            }
            if structural.fragments.in_cqof() {
                self.sizes_cqof.add(structural.triples);
            }
            if let Some(girth) = structural.shortest_cycle {
                *self.cycle_lengths.entry(girth).or_insert(0) += 1;
            }
            if let Some(ht) = structural.hypertree {
                self.hypertree.add(ht.width, ht.nodes, ht.exact);
            }
        }
    }

    /// Merges another dataset analysis into this one (used to build the
    /// corpus-level "all datasets" row).
    pub fn merge(&mut self, other: &DatasetAnalysis) {
        self.counts.merge(&other.counts);
        self.errors.merge(&other.errors);
        self.keywords.merge(&other.keywords);
        self.triples.merge(&other.triples);
        self.opsets.merge(&other.opsets);
        self.projection.merge(&other.projection);
        self.fragments.merge(&other.fragments);
        self.shapes_cq.merge(&other.shapes_cq);
        self.shapes_cqf.merge(&other.shapes_cqf);
        self.shapes_cqof.merge(&other.shapes_cqof);
        self.sizes_cq.merge(&other.sizes_cq);
        self.sizes_cqf.merge(&other.sizes_cqf);
        self.sizes_cqof.merge(&other.sizes_cqof);
        for (len, count) in &other.cycle_lengths {
            *self.cycle_lengths.entry(*len).or_insert(0) += count;
        }
        self.hypertree.merge(&other.hypertree);
        self.paths.merge(&other.paths);
        self.single_edge_with_constants += other.single_edge_with_constants;
    }
}

/// Which population of queries an analysis runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Population {
    /// The deduplicated queries (the paper's main corpus, Tables 1–6).
    Unique,
    /// All valid queries including duplicates (the appendix: Tables 7–9,
    /// Figures 8–10).
    Valid,
}

/// The analysis of a whole corpus: one record per dataset plus the combined
/// totals.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CorpusAnalysis {
    /// Per-dataset analyses, in input order.
    pub datasets: Vec<DatasetAnalysis>,
    /// The merged, corpus-level analysis.
    pub combined: DatasetAnalysis,
}

/// Whether the analysis engine memoizes per-query analyses in a
/// fingerprint-keyed [`AnalysisCache`]. Caching never changes any report
/// (see the [`crate::cache`] docs for the soundness argument); the policy
/// exists so differential runs can pin either path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CachePolicy {
    /// Follow the `SPARQLOG_ANALYSIS_CACHE` environment variable: `0`,
    /// `false`, `off` or `no` (case-insensitive) disable the cache, anything
    /// else — including an unset variable — enables it. The same pattern as
    /// the `SPARQLOG_WORKERS` override honoured by
    /// [`default_workers`](crate::corpus::default_workers).
    #[default]
    Auto,
    /// Memoize regardless of the environment.
    Enabled,
    /// Analyse every occurrence from scratch regardless of the environment.
    Disabled,
}

impl CachePolicy {
    /// Resolves the policy against the environment.
    pub fn enabled(self) -> bool {
        match self {
            CachePolicy::Enabled => true,
            CachePolicy::Disabled => false,
            CachePolicy::Auto => !matches!(
                std::env::var("SPARQLOG_ANALYSIS_CACHE")
                    .ok()
                    .map(|v| v.trim().to_ascii_lowercase())
                    .as_deref(),
                Some("0" | "false" | "off" | "no")
            ),
        }
    }
}

/// Tuning knobs for the parallel analysis engine. The result of the analysis
/// does not depend on them — every fold is commutative and caching is
/// report-transparent — only the schedule and the work profile do, which the
/// determinism and differential tests exploit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineOptions {
    /// Number of worker threads; `0` uses the available parallelism.
    pub workers: usize,
    /// Queries per work chunk; `0` picks a size from the workload.
    pub chunk_size: usize,
    /// Whether to memoize per-query analyses by canonical fingerprint.
    pub cache: CachePolicy,
    /// The recovery policy of the run this analysis belongs to. The
    /// analysis engine itself never parses — recovery happened during
    /// ingestion, whose tallies ride in on [`IngestedLog::errors`] — so
    /// the field only drives [`CorpusAnalysis::enforce_budget`], which
    /// staged drivers call after analysis to fail a run whose merged
    /// defect rate exceeds an [`RecoveryPolicy::ErrorBudget`].
    pub recovery: RecoveryPolicy,
}

impl EngineOptions {
    fn resolve_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        crate::corpus::default_workers()
    }

    fn resolve_chunk_size(&self, work: usize, workers: usize) -> usize {
        if self.chunk_size > 0 {
            return self.chunk_size;
        }
        // Aim for several chunks per worker so stragglers re-balance, while
        // keeping chunks large enough to amortize the queue pop.
        (work / (workers * 8).max(1)).clamp(16, 1024)
    }
}

/// Observability counters of one analysis run: what the fingerprint cache
/// absorbed and what the per-worker term interners saved. Reported by
/// [`CorpusAnalysis::analyze_stats`] / [`CorpusAnalysis::analyze_cached`] and
/// surfaced in the harness banners; never part of the corpus report itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnalysisStats {
    /// Cumulative cache counters, when the run used a cache.
    pub cache: Option<CacheStats>,
    /// Combined counters of every worker's term interner.
    pub interner: InternStats,
}

/// Runs `fold` over `items` on a chunked, self-scheduling worker pool with
/// per-worker dataset accumulators and per-worker `state` (a term interner
/// for the staged engine, nothing for the fused engine's occurrence-weighted
/// fold), returning every worker's `(accumulators, state)`. Every fold in
/// this crate is commutative, so the schedule never changes the merged
/// result.
pub(crate) fn chunked_fold_pool<T: Sync, S: Send>(
    items: &[T],
    dataset_count: usize,
    workers: usize,
    chunk_size: usize,
    new_state: impl Fn() -> S + Sync,
    fold: impl Fn(&mut [DatasetAnalysis], &mut S, &T) + Sync,
) -> Vec<(Vec<DatasetAnalysis>, S)> {
    let fresh_accumulators = || -> Vec<DatasetAnalysis> {
        (0..dataset_count)
            .map(|_| DatasetAnalysis::default())
            .collect()
    };
    let chunks: Vec<&[T]> = items.chunks(chunk_size.max(1)).collect();
    let workers = workers.min(chunks.len()).max(1);
    if workers == 1 {
        let mut acc = fresh_accumulators();
        let mut state = new_state();
        for item in items {
            fold(&mut acc, &mut state, item);
        }
        return vec![(acc, state)];
    }
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut acc = fresh_accumulators();
                    let mut state = new_state();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(chunk) = chunks.get(i) else { break };
                        for item in *chunk {
                            fold(&mut acc, &mut state, item);
                        }
                    }
                    (acc, state)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fold workers must not panic"))
            .collect()
    })
}

/// Merges per-worker accumulators into per-dataset headers (label and
/// counts already set) and builds the corpus-level "Total" row — the
/// deterministic tail shared by the staged and fused engines (all tallies
/// are commutative sums / maxima).
pub(crate) fn merge_into_corpus(
    mut datasets: Vec<DatasetAnalysis>,
    accumulators: &[Vec<DatasetAnalysis>],
) -> CorpusAnalysis {
    for acc in accumulators {
        for (dataset, partial) in datasets.iter_mut().zip(acc) {
            dataset.merge(partial);
        }
    }
    let mut combined = DatasetAnalysis {
        label: "Total".to_string(),
        ..DatasetAnalysis::default()
    };
    for dataset in &datasets {
        combined.merge(dataset);
    }
    CorpusAnalysis { datasets, combined }
}

impl CorpusAnalysis {
    /// Checks the corpus's merged error tally (the "Total" row) against the
    /// policy's error budget: `Ok(())` unless the resolved policy is an
    /// [`RecoveryPolicy::ErrorBudget`] whose defect rate is exceeded, in
    /// which case the error carries a
    /// [`BudgetExceeded`](crate::recover::BudgetExceeded) payload with the
    /// preserved tally. The streaming entry points run this check
    /// themselves; staged drivers that assemble a [`CorpusAnalysis`] from
    /// pre-ingested logs call it explicitly.
    pub fn enforce_budget(&self, policy: RecoveryPolicy) -> std::io::Result<()> {
        crate::recover::enforce_budget(policy, &self.combined.errors, self.combined.counts.total)
    }

    /// Analyses a set of ingested logs over the chosen population, using all
    /// available cores.
    pub fn analyze(logs: &[IngestedLog], population: Population) -> CorpusAnalysis {
        CorpusAnalysis::analyze_with(logs, population, EngineOptions::default())
    }

    /// Analyses a set of ingested logs with explicit engine options,
    /// discarding the run's [`AnalysisStats`].
    pub fn analyze_with(
        logs: &[IngestedLog],
        population: Population,
        options: EngineOptions,
    ) -> CorpusAnalysis {
        CorpusAnalysis::analyze_stats(logs, population, options).0
    }

    /// Analyses a set of ingested logs with explicit engine options,
    /// returning the cache and interner counters alongside the analysis.
    /// When the resolved [`CachePolicy`] enables caching, the run uses a
    /// fresh [`AnalysisCache`] scoped to this call; use
    /// [`CorpusAnalysis::analyze_cached`] to share a cache across calls
    /// (e.g. across the Unique/Valid population switch).
    pub fn analyze_stats(
        logs: &[IngestedLog],
        population: Population,
        options: EngineOptions,
    ) -> (CorpusAnalysis, AnalysisStats) {
        if options.cache.enabled() {
            let cache = AnalysisCache::new();
            CorpusAnalysis::analyze_cached(logs, population, options, &cache)
        } else {
            CorpusAnalysis::run_engine(logs, population, options, None)
        }
    }

    /// Analyses a set of ingested logs against a caller-owned
    /// [`AnalysisCache`], ignoring the options' [`CachePolicy`]: the caller
    /// asked for the cache explicitly. Entries memoized by earlier runs
    /// (other logs, the other population) are reused, so re-analysing the
    /// appendix ("all") population after the main ("unique") one only
    /// analyses canonical forms never seen before. The returned
    /// [`CacheStats`] are the cache's cumulative counters.
    pub fn analyze_cached(
        logs: &[IngestedLog],
        population: Population,
        options: EngineOptions,
        cache: &AnalysisCache,
    ) -> (CorpusAnalysis, AnalysisStats) {
        CorpusAnalysis::run_engine(logs, population, options, Some(cache))
    }

    /// The analysis engine shared by every entry point.
    ///
    /// The queries of *all* datasets are flattened into one work list and
    /// processed in chunks by a self-scheduling worker pool: each worker
    /// repeatedly claims the next unprocessed chunk (an atomic cursor), folds
    /// its queries into a private per-dataset accumulator through its own
    /// term [`Interner`], and the accumulators are merged at the end. With a
    /// cache, each work item first consults the memo table under the query's
    /// canonical fingerprint (computed by ingestion, so the key is free) and
    /// only analyses on a miss; every occurrence still folds into the
    /// tallies, so occurrence counts are preserved exactly. Results are
    /// bit-identical across worker counts, chunk sizes and cache modes.
    fn run_engine(
        logs: &[IngestedLog],
        population: Population,
        options: EngineOptions,
        cache: Option<&AnalysisCache>,
    ) -> (CorpusAnalysis, AnalysisStats) {
        // Flatten the corpus into (dataset index, fingerprint, query) items.
        let mut work: Vec<(usize, u128, &Query)> = Vec::new();
        for (d, log) in logs.iter().enumerate() {
            match population {
                Population::Unique => work.extend(
                    log.unique_indices
                        .iter()
                        .map(|&i| (d, log.fingerprints[i], &log.valid_queries[i])),
                ),
                Population::Valid => work.extend(
                    log.valid_queries
                        .iter()
                        .zip(&log.fingerprints)
                        .map(|(q, &fp)| (d, fp, q)),
                ),
            }
        }
        let workers = options.resolve_workers().max(1);
        let chunk_size = options.resolve_chunk_size(work.len(), workers);
        let results = chunked_fold_pool(
            &work,
            logs.len(),
            workers,
            chunk_size,
            Interner::new,
            |acc, interner, &(d, fp, q)| match cache {
                Some(cache) => {
                    let qa = cache.get_or_insert_with(fp, || QueryAnalysis::of_with(q, interner));
                    acc[d].add(&qa);
                }
                None => acc[d].add(&QueryAnalysis::of_with(q, interner)),
            },
        );

        // Deterministic merge: per-dataset headers first, then every worker's
        // accumulator.
        let datasets: Vec<DatasetAnalysis> = logs
            .iter()
            .map(|log| DatasetAnalysis {
                label: log.label.clone(),
                counts: log.counts,
                errors: log.errors.clone(),
                ..DatasetAnalysis::default()
            })
            .collect();
        let mut interner_stats = InternStats::default();
        let accumulators: Vec<Vec<DatasetAnalysis>> = results
            .into_iter()
            .map(|(acc, interner)| {
                interner_stats.merge(&interner.stats());
                acc
            })
            .collect();
        let stats = AnalysisStats {
            cache: cache.map(AnalysisCache::stats),
            interner: interner_stats,
        };
        (merge_into_corpus(datasets, &accumulators), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{ingest, RawLog};

    fn analysis_of(entries: &[&str]) -> DatasetAnalysis {
        let log = ingest(&RawLog::new(
            "t",
            entries.iter().map(|s| s.to_string()).collect(),
        ));
        let corpus = CorpusAnalysis::analyze(&[log], Population::Unique);
        corpus.datasets.into_iter().next().unwrap()
    }

    #[test]
    fn per_query_measures_flow_into_tallies() {
        let a = analysis_of(&[
            "SELECT ?x WHERE { ?x a <http://C> . ?x <http://p> ?y FILTER(?y > 3) } LIMIT 5",
            "ASK { <http://s> <http://p> <http://o> }",
            "SELECT ?x WHERE { ?x <http://a>/<http://b>* ?y }",
            "ASK { ?a <http://p> ?b . ?b <http://p> ?c . ?c <http://p> ?a }",
            "DESCRIBE <http://r>",
        ]);
        assert_eq!(a.counts.valid, 5);
        assert_eq!(a.keywords.select, 2);
        assert_eq!(a.keywords.ask, 2);
        assert_eq!(a.keywords.filter, 1);
        assert_eq!(a.paths.total, 1);
        assert_eq!(a.opsets.total, 4); // select/ask only
                                       // The triangle ASK query is a cycle with girth 3.
        assert_eq!(a.cycle_lengths.get(&3), Some(&1));
        assert!(a.shapes_cq.cycle >= 1);
        assert!(a.fragments.cq >= 2);
    }

    #[test]
    fn population_valid_keeps_duplicates() {
        let entries = [
            "SELECT ?x WHERE { ?x a <http://C> }",
            "SELECT ?x WHERE { ?x a <http://C> }",
            "SELECT ?y WHERE { ?y a <http://D> }",
        ];
        let log = ingest(&RawLog::new(
            "t",
            entries.iter().map(|s| s.to_string()).collect(),
        ));
        let unique = CorpusAnalysis::analyze(std::slice::from_ref(&log), Population::Unique);
        let valid = CorpusAnalysis::analyze(&[log], Population::Valid);
        assert_eq!(unique.combined.keywords.total_queries, 2);
        assert_eq!(valid.combined.keywords.total_queries, 3);
    }

    #[test]
    fn combined_analysis_merges_datasets() {
        let log1 = ingest(&RawLog::new(
            "a",
            vec!["SELECT ?x WHERE { ?x a <http://C> }".to_string()],
        ));
        let log2 = ingest(&RawLog::new(
            "b",
            vec!["ASK { ?x <http://p> ?y }".to_string()],
        ));
        let corpus = CorpusAnalysis::analyze(&[log1, log2], Population::Unique);
        assert_eq!(corpus.datasets.len(), 2);
        assert_eq!(corpus.combined.keywords.total_queries, 2);
        assert_eq!(corpus.combined.counts.total, 2);
    }

    #[test]
    fn variable_predicate_queries_feed_the_hypertree_tally() {
        let a = analysis_of(&["ASK { ?x1 ?p ?x2 . ?x2 <http://a> ?x3 . ?x3 ?p ?x4 }"]);
        assert_eq!(a.hypertree.total, 1);
        assert!(a.hypertree.width1 + a.hypertree.width2 + a.hypertree.width3 == 1);
    }

    #[test]
    fn fragment_size_histogram_buckets() {
        let mut h = FragmentSizeHistogram::default();
        h.add(1);
        h.add(2);
        h.add(10);
        h.add(25);
        assert_eq!(h.one_triple, 1);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[8], 1);
        assert_eq!(h.eleven_plus, 1);
        assert_eq!(h.max_triples, 25);
        assert!((h.one_triple_share() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn single_edge_constant_rerun_counter() {
        // A single-edge CQ with a constant object: with constants it is a
        // single edge, with variables only it is not.
        let a = analysis_of(&["SELECT ?x WHERE { ?x <http://p> <http://const> }"]);
        assert_eq!(a.single_edge_with_constants, 1);
    }
}
