//! Corpus ingestion: parsing log entries, counting valid queries and
//! removing duplicates (Table 1 of the paper).
//!
//! The hot path is the *streaming* engine ([`ingest_streams`]): workers pull
//! batches of raw entries from [`LogReader`]s (in-memory slices or buffered
//! line-oriented files), parse them, and fingerprint each query's canonical
//! form by streaming the canonical walk straight into a 128-bit FNV-1a state
//! ([`sparqlog_parser::canonical_fingerprint_of`]) — the canonical string is
//! never materialized and raw entries are dropped batch by batch instead of
//! being held fully resident. Duplicate elimination runs on
//! fingerprint-range–partitioned [`FingerprintShards`] whose commutative
//! merge keeps peak set growth at shard granularity, so ingestion no longer
//! funnels through one `HashSet`.
//!
//! [`ingest_all`] keeps the historical `&[RawLog]` API on the same
//! streaming semantics, parsing borrowed entries in place. The seed's
//! materializing path survives as [`ingest`] / [`ingest_all_materializing`]:
//! it is the reference the differential tests and the `ablation_streaming`
//! harness compare against, byte for byte.
//!
//! Production corpus analysis should prefer the **fused** engine
//! ([`analyze_streams`], defined in [`crate::fused`] and re-exported here):
//! it runs the same readers and fingerprints but analyses each batch as it
//! parses, so no AST outlives its batch and the `IngestedLog` materialized
//! by this module's two-phase path is never built. The staged path remains
//! the differential baseline and the API for callers who need the parsed
//! queries themselves.

use crate::recover::{reader_defect, ErrorTally, ReaderDefect, RecoveryContext, RecoveryPolicy};
use serde::{Deserialize, Serialize};
use sparqlog_parser::bytescan::find_newline;
use sparqlog_parser::{
    canonical_fingerprint_of, to_canonical_string, Arena, ErrorKind, ParseError, Query,
};
use std::collections::HashSet;
use std::hash::{BuildHasherDefault, Hasher};
use std::io::{self, BufRead, BufReader};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub use sparqlog_parser::{canonical_fingerprint, CanonicalHasher};

// The fused ingest→analyze engine lives in [`crate::fused`] but is re-exported
// here: it is the streaming successor of `ingest_streams` + `analyze_cached`
// and shares this module's readers, batch source and fingerprints.
pub use crate::fused::{
    analyze_streams, analyze_streams_cached, analyze_streams_with, FusedAnalysis, FusedOptions,
    FusedStats, LogSummary,
};

/// One raw log: a label (dataset name) and its entries in log order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawLog {
    /// The dataset label (e.g. `"DBpedia15"`).
    pub label: String,
    /// The raw log entries.
    pub entries: Vec<String>,
}

impl RawLog {
    /// Creates a raw log.
    pub fn new(label: impl Into<String>, entries: Vec<String>) -> RawLog {
        RawLog {
            label: label.into(),
            entries,
        }
    }
}

/// The Table-1 accounting for one dataset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorpusCounts {
    /// Total log entries.
    pub total: u64,
    /// Entries that parse as SPARQL queries.
    pub valid: u64,
    /// Distinct valid queries (after canonicalization).
    pub unique: u64,
    /// Valid queries without a body (the paper reports 4.47 % corpus-wide,
    /// almost all of them DESCRIBE queries).
    pub bodyless: u64,
}

impl CorpusCounts {
    /// Merges another count (used for the corpus-level "Total" row).
    pub fn merge(&mut self, other: &CorpusCounts) {
        self.total += other.total;
        self.valid += other.valid;
        self.unique += other.unique;
        self.bodyless += other.bodyless;
    }

    /// Multiplies every counter by `times` (the occurrence-weighted fold of
    /// the fused engine; see
    /// [`DatasetAnalysis::scale`](crate::analysis::DatasetAnalysis::scale)).
    pub fn scale(&mut self, times: u64) {
        self.total *= times;
        self.valid *= times;
        self.unique *= times;
        self.bodyless *= times;
    }
}

/// An ingested log: parsed queries plus the Table-1 counts.
#[derive(Debug, Clone)]
pub struct IngestedLog {
    /// The dataset label.
    pub label: String,
    /// Table-1 counts.
    pub counts: CorpusCounts,
    /// The valid queries in log order (including duplicates).
    pub valid_queries: Vec<Query>,
    /// The 128-bit canonical fingerprint of each valid query, parallel to
    /// `valid_queries`. Ingestion computes these for duplicate elimination
    /// anyway; keeping them makes them the free cache key of the
    /// fingerprint-keyed [`AnalysisCache`](crate::cache::AnalysisCache).
    pub fingerprints: Vec<u128>,
    /// Indices into `valid_queries` of the first occurrence of each distinct
    /// query — the *unique* corpus the paper's main analysis runs on.
    pub unique_indices: Vec<usize>,
    /// The malformed-entry tally of this log: which kinds of failures the
    /// invalid entries were (`counts.total - counts.valid` in sum), with the
    /// earliest offending positions. The materializing entry points recover
    /// per entry unconditionally ([`RecoveryPolicy::Lenient`] semantics —
    /// their signatures predate the policy and cannot fail); the streaming
    /// entry points honour [`StreamOptions::recovery`].
    pub errors: ErrorTally,
}

impl IngestedLog {
    /// Iterates over the unique queries.
    pub fn unique_queries(&self) -> impl Iterator<Item = &Query> {
        self.unique_indices.iter().map(|&i| &self.valid_queries[i])
    }
}

/// The worker count used by the ingestion and analysis pools when no explicit
/// count is given: the `SPARQLOG_WORKERS` environment variable if set to a
/// positive integer, otherwise the available parallelism. The override exists
/// so CI can pin the pools to 1/2/8 workers and assert that reports stay
/// byte-identical on real multi-core runners.
pub fn default_workers() -> usize {
    if let Some(n) = std::env::var("SPARQLOG_WORKERS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        if n > 0 {
            return n;
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

// ---------------------------------------------------------------------------
// The materializing reference path (seed semantics, kept for differentials).
// ---------------------------------------------------------------------------

/// Parses one entry to an owned [`Query`] through the shared recovery
/// helper: hard resource guards, the panic drill and panic isolation all
/// apply, and a failure comes back as a kind-classified [`ParseError`].
/// Every per-entry parse in this module — materializing, zero-copy and
/// streaming alike — routes through this one function, so the engines
/// cannot drift in what they count as invalid.
fn parse_owned(entry: &str, ctx: &RecoveryContext, arena: &mut Arena) -> Result<Query, ParseError> {
    arena.reset();
    let parsed = ctx.parse_entry(entry, arena, |query| query.to_owned());
    if parsed
        .as_ref()
        .is_err_and(|error| error.kind == ErrorKind::WorkerPanic)
    {
        // The unwind may have left a partially filled chunk; release it.
        arena.trim();
    }
    parsed
}

/// Folds a log's parse results (in entry order) into counts, the error
/// tally, the query list and the fingerprint-deduplicated unique indices,
/// materializing each canonical string before hashing it — the reference
/// semantics.
fn assemble(
    label: &str,
    total: u64,
    parsed: impl Iterator<Item = Result<Query, ParseError>>,
) -> IngestedLog {
    let mut counts = CorpusCounts {
        total,
        ..CorpusCounts::default()
    };
    let mut errors = ErrorTally::default();
    let mut valid_queries = Vec::new();
    let mut fingerprints = Vec::new();
    let mut unique_indices = Vec::new();
    let mut seen: HashSet<u128> = HashSet::new();
    for (position, entry) in parsed.enumerate() {
        let query = match entry {
            Ok(query) => query,
            Err(error) => {
                errors.record(error.kind, position as u64);
                continue;
            }
        };
        counts.valid += 1;
        if !query.has_body() {
            counts.bodyless += 1;
        }
        let fingerprint = canonical_fingerprint(&to_canonical_string(&query));
        let index = valid_queries.len();
        valid_queries.push(query);
        fingerprints.push(fingerprint);
        if seen.insert(fingerprint) {
            unique_indices.push(index);
        }
    }
    counts.unique = unique_indices.len() as u64;
    IngestedLog {
        label: label.to_string(),
        counts,
        valid_queries,
        fingerprints,
        unique_indices,
        errors,
    }
}

/// Parses and deduplicates one raw log sequentially through the materializing
/// path (canonical strings are built and then hashed). This is the reference
/// implementation the streaming engine is proven byte-identical to.
///
/// Recovery is per entry, unconditionally (the signature predates
/// [`RecoveryPolicy`] and cannot fail): every malformed entry — lex/syntax
/// invalidity, tripped resource guards, caught panics — is tallied in
/// [`IngestedLog::errors`] and counted as invalid.
pub fn ingest(log: &RawLog) -> IngestedLog {
    let ctx = RecoveryContext::new(RecoveryPolicy::Lenient);
    let mut arena = Arena::new();
    let parsed: Vec<Result<Query, ParseError>> = log
        .entries
        .iter()
        .map(|entry| parse_owned(entry, &ctx, &mut arena))
        .collect();
    assemble(&log.label, log.entries.len() as u64, parsed.into_iter())
}

/// Entries per parse chunk: large enough to amortize scheduling, small
/// enough that a single large log spreads over every core.
pub(crate) const INGEST_CHUNK: usize = 512;

/// Parses several logs in parallel through the *materializing* path: chunked
/// work-stealing parse, then a sequential per-log assembly that builds each
/// canonical string and hashes it into one dedup set per log. Kept as the
/// baseline for `ablation_streaming`; production callers should prefer
/// [`ingest_all`] / [`ingest_streams`].
pub fn ingest_all_materializing(logs: &[RawLog]) -> Vec<IngestedLog> {
    let mut chunks: Vec<(usize, usize, usize)> = Vec::new();
    for (log_index, log) in logs.iter().enumerate() {
        let mut start = 0;
        while start < log.entries.len() {
            let end = (start + INGEST_CHUNK).min(log.entries.len());
            chunks.push((log_index, start, end));
            start = end;
        }
    }
    let workers = default_workers().min(chunks.len());
    if workers <= 1 {
        return logs.iter().map(ingest).collect();
    }

    // (log index, chunk start, parse results for the chunk's entries).
    type ParsedChunk = (usize, usize, Vec<Result<Query, ParseError>>);
    let ctx = RecoveryContext::new(RecoveryPolicy::Lenient);
    let cursor = AtomicUsize::new(0);
    let parsed_chunks: Mutex<Vec<ParsedChunk>> = Mutex::new(Vec::with_capacity(chunks.len()));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut arena = Arena::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&(log_index, start, end)) = chunks.get(i) else {
                        break;
                    };
                    let parsed: Vec<Result<Query, ParseError>> = logs[log_index].entries
                        [start..end]
                        .iter()
                        .map(|entry| parse_owned(entry, &ctx, &mut arena))
                        .collect();
                    parsed_chunks
                        .lock()
                        .expect("ingestion workers must not panic")
                        .push((log_index, start, parsed));
                }
            });
        }
    });

    // Reassemble per log in entry order; counting and dedup are cheap
    // relative to parsing and stay sequential per log.
    type LogPart = (usize, Vec<Result<Query, ParseError>>);
    let mut per_log: Vec<Vec<LogPart>> = vec![Vec::new(); logs.len()];
    for (log_index, start, parsed) in parsed_chunks.into_inner().expect("no poisoned workers") {
        per_log[log_index].push((start, parsed));
    }
    logs.iter()
        .zip(per_log)
        .map(|(log, mut parts)| {
            parts.sort_unstable_by_key(|(start, _)| *start);
            assemble(
                &log.label,
                log.entries.len() as u64,
                parts.into_iter().flat_map(|(_, parsed)| parsed),
            )
        })
        .collect()
}

/// Parses several logs in parallel through the streaming semantics —
/// zero-materialization fingerprints and sharded dedup — while parsing
/// *borrowed* entries in place (no per-entry copy, unlike routing a
/// `&[RawLog]` through [`SliceLogReader`]). The output is identical to
/// mapping [`ingest`] over the logs (proven by the differential tests).
pub fn ingest_all(logs: &[RawLog]) -> Vec<IngestedLog> {
    let mut chunks: Vec<(usize, usize, usize)> = Vec::new();
    for (log_index, log) in logs.iter().enumerate() {
        let mut start = 0;
        while start < log.entries.len() {
            let end = (start + INGEST_CHUNK).min(log.entries.len());
            chunks.push((log_index, start, end));
            start = end;
        }
    }
    let workers = default_workers().min(chunks.len());
    let ctx = RecoveryContext::new(RecoveryPolicy::Lenient);

    let parsed_chunks: Vec<(usize, usize, Vec<ParsedEntry>)> = if workers <= 1 {
        let mut arena = Arena::new();
        chunks
            .iter()
            .map(|&(log_index, start, end)| {
                let parsed = parse_batch(&logs[log_index].entries[start..end], &ctx, &mut arena);
                (log_index, start, parsed)
            })
            .collect()
    } else {
        let cursor = AtomicUsize::new(0);
        let sink: Mutex<Vec<(usize, usize, Vec<ParsedEntry>)>> =
            Mutex::new(Vec::with_capacity(chunks.len()));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut arena = Arena::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&(log_index, start, end)) = chunks.get(i) else {
                            break;
                        };
                        let parsed =
                            parse_batch(&logs[log_index].entries[start..end], &ctx, &mut arena);
                        sink.lock()
                            .expect("ingestion workers must not panic")
                            .push((log_index, start, parsed));
                    }
                });
            }
        });
        sink.into_inner().expect("no poisoned workers")
    };

    let mut per_log: Vec<Vec<(usize, Vec<ParsedEntry>)>> = vec![Vec::new(); logs.len()];
    for (log_index, start, parsed) in parsed_chunks {
        per_log[log_index].push((start, parsed));
    }
    logs.iter()
        .zip(per_log)
        .map(|(log, mut parts)| {
            parts.sort_unstable_by_key(|(start, _)| *start);
            assemble_streamed(
                log.label.clone(),
                log.entries.len() as u64,
                parts
                    .into_iter()
                    .map(|(start, parsed)| (start as u64, parsed)),
                ErrorTally::default(),
                DEDUP_SHARDS,
                workers.max(1),
            )
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Streaming log readers.
// ---------------------------------------------------------------------------

/// A source of raw log entries consumed incrementally, batch by batch, so the
/// ingestion pipeline never needs a full `&[RawLog]` resident in memory.
///
/// Implementations: [`MemoryLogReader`] (owned entries, moved out),
/// [`SliceLogReader`] (borrowed entries), and [`LineLogReader`] /
/// [`FileLogReader`] (buffered line-oriented streams: one line per entry,
/// `\n` or `\r\n` terminated, with or without a trailing newline).
pub trait LogReader: Send {
    /// The dataset label of this log.
    fn label(&self) -> &str;

    /// Appends up to `max` entries to `batch` and returns how many were
    /// appended. Returning `0` signals the end of the log.
    fn read_batch(&mut self, batch: &mut Vec<String>, max: usize) -> io::Result<usize>;

    /// How many entries remain, when cheaply known (in-memory readers). The
    /// pool uses the hint to avoid spawning more workers than there are
    /// batches; `None` (the default, and what stream-backed readers return)
    /// leaves the worker count untouched.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// A [`LogReader`] over an owned entry list; entries are *moved* into the
/// pipeline batch by batch, so the raw log shrinks as ingestion progresses.
#[derive(Debug)]
pub struct MemoryLogReader {
    label: String,
    entries: std::vec::IntoIter<String>,
}

impl MemoryLogReader {
    /// Creates a reader that drains `entries` in order.
    pub fn new(label: impl Into<String>, entries: Vec<String>) -> MemoryLogReader {
        MemoryLogReader {
            label: label.into(),
            entries: entries.into_iter(),
        }
    }
}

impl LogReader for MemoryLogReader {
    fn label(&self) -> &str {
        &self.label
    }

    fn read_batch(&mut self, batch: &mut Vec<String>, max: usize) -> io::Result<usize> {
        let mut appended = 0;
        while appended < max {
            let Some(entry) = self.entries.next() else {
                break;
            };
            batch.push(entry);
            appended += 1;
        }
        Ok(appended)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.entries.len())
    }
}

/// A [`LogReader`] over borrowed entries (e.g. a [`RawLog`] the caller keeps
/// owning); batches are cloned out. For `&[RawLog]` input prefer
/// [`ingest_all`], which parses the borrowed entries in place without the
/// per-entry copy.
#[derive(Debug)]
pub struct SliceLogReader<'a> {
    label: &'a str,
    entries: &'a [String],
    position: usize,
}

impl<'a> SliceLogReader<'a> {
    /// Creates a reader over a label and a borrowed entry slice.
    pub fn new(label: &'a str, entries: &'a [String]) -> SliceLogReader<'a> {
        SliceLogReader {
            label,
            entries,
            position: 0,
        }
    }

    /// Creates a reader over a borrowed [`RawLog`].
    pub fn of(log: &'a RawLog) -> SliceLogReader<'a> {
        SliceLogReader::new(&log.label, &log.entries)
    }
}

impl LogReader for SliceLogReader<'_> {
    fn label(&self) -> &str {
        self.label
    }

    fn read_batch(&mut self, batch: &mut Vec<String>, max: usize) -> io::Result<usize> {
        let end = (self.position + max).min(self.entries.len());
        let appended = end - self.position;
        batch.extend(self.entries[self.position..end].iter().cloned());
        self.position = end;
        Ok(appended)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.entries.len() - self.position)
    }
}

/// The assumed average log-line length (bytes, terminator included) used to
/// turn a file size into an entry-count estimate for worker clamping. Real
/// SPARQL log lines run one to a few hundred bytes; the estimate only has to
/// be in the right order of magnitude — it sizes the worker pool, never the
/// result.
const ESTIMATED_LINE_BYTES: u64 = 128;

// The SWAR `\n` search the line reader scans with (`find_newline`, imported
// above) now lives in the parser's shared byte-classification module, where
// the zero-copy lexer applies the same word-at-a-time technique to
// whitespace and name runs.

/// A [`LogReader`] over any buffered byte stream, one entry per line. Lines
/// are terminated by `\n` or `\r\n` (the terminator is stripped); a final
/// line without a trailing newline still counts as an entry, and an empty
/// stream yields no entries.
///
/// Line boundaries are found by scanning the buffered bytes a machine word
/// at a time (the SWAR `find_newline` search above) rather than per
/// character; a line that straddles buffer refills accumulates in a carry
/// buffer whose allocation is moved — not copied — into the produced entry.
#[derive(Debug)]
pub struct LineLogReader<R> {
    label: String,
    reader: R,
    /// Bytes of a line whose terminator has not been seen yet (the line
    /// straddles a buffer refill, or the stream ended without a newline).
    pending: Vec<u8>,
    /// Lines produced so far; makes the 1-based line number of a malformed
    /// line available to the [`ReaderDefect`] error payload.
    line: u64,
    /// Estimated entries remaining, when the stream's total size is known up
    /// front (file-backed readers); decremented as lines are read.
    estimated_remaining: Option<usize>,
}

impl<R: BufRead + Send> LineLogReader<R> {
    /// Creates a line reader over a buffered stream (no size hint — the
    /// worker clamp in [`ingest_streams_with`] leaves the pool unchanged).
    pub fn new(label: impl Into<String>, reader: R) -> LineLogReader<R> {
        LineLogReader {
            label: label.into(),
            reader,
            pending: Vec::new(),
            line: 0,
            estimated_remaining: None,
        }
    }

    /// Creates a line reader with an up-front estimate of how many entries
    /// the stream holds, so the ingestion pool can clamp its worker count
    /// for stream-backed sources too.
    pub fn with_estimated_entries(
        label: impl Into<String>,
        reader: R,
        entries: usize,
    ) -> LineLogReader<R> {
        LineLogReader {
            label: label.into(),
            reader,
            pending: Vec::new(),
            line: 0,
            estimated_remaining: Some(entries),
        }
    }

    /// Converts raw line bytes (`\n` already excluded) into the entry
    /// string. A trailing `\r` is stripped only when a `\n` terminator was
    /// actually found — `BufRead::read_line` semantics: an unterminated
    /// final line ending in `\r` keeps that byte. Invalid UTF-8 surfaces as
    /// an `InvalidData` error whose [`ReaderDefect`] payload names the log
    /// and the 1-based line number, so a strict-mode failure points at the
    /// offending line and a lenient run can tally it.
    fn finish_entry(&mut self, mut line: Vec<u8>, newline_terminated: bool) -> io::Result<String> {
        self.line += 1;
        if newline_terminated && line.last() == Some(&b'\r') {
            line.pop();
        }
        String::from_utf8(line).map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                ReaderDefect {
                    label: self.label.clone(),
                    line: self.line,
                },
            )
        })
    }

    /// Reads the next line, or `None` at end of stream.
    fn next_line(&mut self) -> io::Result<Option<String>> {
        loop {
            let buffer = self.reader.fill_buf()?;
            if buffer.is_empty() {
                // End of stream: an unterminated final line is still an entry.
                if self.pending.is_empty() {
                    return Ok(None);
                }
                let pending = std::mem::take(&mut self.pending);
                return self.finish_entry(pending, false).map(Some);
            }
            match find_newline(buffer) {
                Some(position) => {
                    let line = if self.pending.is_empty() {
                        buffer[..position].to_vec()
                    } else {
                        let mut line = std::mem::take(&mut self.pending);
                        line.extend_from_slice(&buffer[..position]);
                        line
                    };
                    self.reader.consume(position + 1);
                    return self.finish_entry(line, true).map(Some);
                }
                None => {
                    self.pending.extend_from_slice(buffer);
                    let consumed = buffer.len();
                    self.reader.consume(consumed);
                }
            }
        }
    }
}

impl<R: BufRead + Send> LogReader for LineLogReader<R> {
    fn label(&self) -> &str {
        &self.label
    }

    fn read_batch(&mut self, batch: &mut Vec<String>, max: usize) -> io::Result<usize> {
        let mut appended = 0;
        while appended < max {
            let Some(line) = self.next_line()? else {
                break;
            };
            batch.push(line);
            appended += 1;
        }
        if let Some(remaining) = &mut self.estimated_remaining {
            *remaining = remaining.saturating_sub(appended);
        }
        Ok(appended)
    }

    fn size_hint(&self) -> Option<usize> {
        self.estimated_remaining
    }
}

/// A buffered line reader over a file on disk.
pub type FileLogReader = LineLogReader<BufReader<std::fs::File>>;

impl FileLogReader {
    /// Opens a log file for streaming ingestion. For regular files, the byte
    /// length (from metadata) divided by an average-line estimate seeds
    /// [`LogReader::size_hint`], so worker clamping works for file-backed
    /// ingestion too: a 4-line quickstart log no longer spawns a full pool.
    /// Non-regular files (FIFOs, character devices) report no meaningful
    /// length and get no hint, leaving the pool unclamped. The estimate
    /// never affects results, only the schedule.
    pub fn open(
        label: impl Into<String>,
        path: impl AsRef<std::path::Path>,
    ) -> io::Result<FileLogReader> {
        let file = std::fs::File::open(path)?;
        let metadata = file.metadata()?;
        let reader = BufReader::new(file);
        if !metadata.is_file() {
            return Ok(LineLogReader::new(label, reader));
        }
        let estimated =
            usize::try_from(metadata.len().div_ceil(ESTIMATED_LINE_BYTES)).unwrap_or(usize::MAX);
        Ok(LineLogReader::with_estimated_entries(
            label, reader, estimated,
        ))
    }
}

// ---------------------------------------------------------------------------
// Sharded duplicate elimination.
// ---------------------------------------------------------------------------

/// A pass-through hasher for canonical fingerprints: the keys are already
/// uniform 128-bit FNV-1a outputs, so hashing them again (SipHash, the
/// `HashSet` default) is pure overhead. Folds the two halves instead.
#[derive(Debug, Default, Clone)]
pub struct FingerprintHasher(u64);

impl Hasher for FingerprintHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Only reached if a non-u128 key is hashed; fold bytes in so the
        // hasher stays correct for any key type.
        for &b in bytes {
            self.0 = self.0.rotate_left(8) ^ u64::from(b);
        }
    }

    fn write_u128(&mut self, value: u128) {
        self.0 = value as u64 ^ (value >> 64) as u64;
    }
}

/// The `BuildHasher` for fingerprint-keyed tables ([`FingerprintShards`],
/// the [`AnalysisCache`](crate::cache::AnalysisCache)): fingerprints pass
/// through [`FingerprintHasher`] unhashed.
pub type FingerprintBuildHasher = BuildHasherDefault<FingerprintHasher>;

/// Default shard count for [`FingerprintShards`].
const DEDUP_SHARDS: usize = 16;

/// A duplicate-elimination set partitioned by fingerprint range: shard `i`
/// holds the fingerprints whose top bits equal `i`. Partitioning bounds the
/// peak cost of any single rehash to one shard (O(shard) rather than O(set)),
/// lets shards be filled independently (the streaming engine dedups shards in
/// parallel), and merging two sharded sets is a commutative shard-wise union.
#[derive(Debug, Clone)]
pub struct FingerprintShards {
    shards: Vec<HashSet<u128, FingerprintBuildHasher>>,
    bits: u32,
}

impl Default for FingerprintShards {
    fn default() -> FingerprintShards {
        FingerprintShards::new(DEDUP_SHARDS)
    }
}

impl FingerprintShards {
    /// Creates a sharded set with `shard_count` shards, rounded up to a power
    /// of two (minimum 1).
    pub fn new(shard_count: usize) -> FingerprintShards {
        let count = shard_count.max(1).next_power_of_two();
        FingerprintShards {
            shards: (0..count).map(|_| HashSet::default()).collect(),
            bits: count.trailing_zeros(),
        }
    }

    /// The number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a fingerprint belongs to (its top bits).
    pub fn shard_of(&self, fingerprint: u128) -> usize {
        if self.bits == 0 {
            0
        } else {
            (fingerprint >> (128 - self.bits)) as usize
        }
    }

    /// Inserts a fingerprint; returns `true` if it was not present.
    pub fn insert(&mut self, fingerprint: u128) -> bool {
        let shard = self.shard_of(fingerprint);
        self.shards[shard].insert(fingerprint)
    }

    /// Whether the fingerprint is present.
    pub fn contains(&self, fingerprint: u128) -> bool {
        self.shards[self.shard_of(fingerprint)].contains(&fingerprint)
    }

    /// Total number of distinct fingerprints.
    pub fn len(&self) -> usize {
        self.shards.iter().map(HashSet::len).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(HashSet::is_empty)
    }

    /// The occupancy of the fullest shard — the peak working-set granularity.
    pub fn max_shard_len(&self) -> usize {
        self.shards.iter().map(HashSet::len).max().unwrap_or(0)
    }

    /// Merges another sharded set into this one (set union). The operation is
    /// commutative and associative, so per-worker or per-log sets can be
    /// combined in any order with identical results.
    pub fn merge(&mut self, other: FingerprintShards) {
        if other.bits == self.bits {
            for (mine, theirs) in self.shards.iter_mut().zip(other.shards) {
                if mine.is_empty() {
                    *mine = theirs;
                } else {
                    mine.extend(theirs);
                }
            }
        } else {
            for shard in other.shards {
                for fingerprint in shard {
                    self.insert(fingerprint);
                }
            }
        }
    }

    /// Installs a filled shard (used by the parallel dedup pass, which builds
    /// shard sets independently).
    fn install(&mut self, shard: usize, set: HashSet<u128, FingerprintBuildHasher>) {
        self.shards[shard] = set;
    }
}

/// Computes, for a fingerprint sequence in entry order, which positions are
/// first occurrences, deduplicating shard by shard — in parallel when more
/// than one worker is available. Returns the flags and the filled shard set.
///
/// Correctness of the parallel pass: whether position `i` is a first
/// occurrence depends only on earlier positions with the *same* fingerprint,
/// and equal fingerprints always land in the same shard, so shards are
/// independent and each shard processes its positions in ascending order.
fn first_occurrences(
    fingerprints: &[u128],
    shard_count: usize,
    workers: usize,
) -> (Vec<bool>, FingerprintShards) {
    // Positions are bucketed as u32 to halve the bucket memory; make the
    // limit explicit rather than silently wrapping on absurdly large logs.
    assert!(
        fingerprints.len() <= u32::MAX as usize,
        "sharded dedup supports at most u32::MAX valid queries per log"
    );
    let mut shards = FingerprintShards::new(shard_count);
    let mut first = vec![false; fingerprints.len()];

    // Bucket positions by shard (cheap, sequential, preserves order).
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); shards.shard_count()];
    for (position, &fingerprint) in fingerprints.iter().enumerate() {
        buckets[shards.shard_of(fingerprint)].push(position as u32);
    }

    let occupied = buckets.iter().filter(|b| !b.is_empty()).count();
    let workers = workers.clamp(1, occupied.max(1));
    if workers == 1 {
        for (shard, bucket) in buckets.iter().enumerate() {
            let mut set: HashSet<u128, FingerprintBuildHasher> =
                HashSet::with_capacity_and_hasher(bucket.len(), FingerprintBuildHasher::default());
            for &position in bucket {
                first[position as usize] = set.insert(fingerprints[position as usize]);
            }
            shards.install(shard, set);
        }
        return (first, shards);
    }

    // Parallel pass: workers claim shards off an atomic cursor and return
    // (shard, set, per-position flags); flags are scattered afterwards.
    type ShardResult = (usize, HashSet<u128, FingerprintBuildHasher>, Vec<bool>);
    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<ShardResult>> = Mutex::new(Vec::with_capacity(buckets.len()));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let shard = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(bucket) = buckets.get(shard) else {
                    break;
                };
                let mut set: HashSet<u128, FingerprintBuildHasher> =
                    HashSet::with_capacity_and_hasher(
                        bucket.len(),
                        FingerprintBuildHasher::default(),
                    );
                let flags: Vec<bool> = bucket
                    .iter()
                    .map(|&position| set.insert(fingerprints[position as usize]))
                    .collect();
                results
                    .lock()
                    .expect("dedup workers must not panic")
                    .push((shard, set, flags));
            });
        }
    });
    for (shard, set, flags) in results.into_inner().expect("no poisoned dedup workers") {
        for (&position, flag) in buckets[shard].iter().zip(flags) {
            first[position as usize] = flag;
        }
        shards.install(shard, set);
    }
    (first, shards)
}

// ---------------------------------------------------------------------------
// The streaming ingestion engine.
// ---------------------------------------------------------------------------

/// Tuning knobs for the streaming ingestion engine. Apart from the recovery
/// policy — which decides whether a defective run fails at all — the result
/// never depends on them; only the schedule and the memory profile do.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamOptions {
    /// Worker threads; `0` uses [`default_workers`] (which honours the
    /// `SPARQLOG_WORKERS` environment override).
    pub workers: usize,
    /// Entries per batch pulled from a reader; `0` picks the default (512).
    pub batch: usize,
    /// Dedup shards per log; `0` picks the default (16).
    pub shards: usize,
    /// What to do on defective entries (invalid UTF-8 lines, tripped
    /// resource guards, caught panics); see [`RecoveryPolicy`].
    pub recovery: RecoveryPolicy,
}

impl StreamOptions {
    fn resolve(&self) -> (usize, usize, usize) {
        (
            if self.workers > 0 {
                self.workers
            } else {
                default_workers()
            },
            if self.batch > 0 {
                self.batch
            } else {
                INGEST_CHUNK
            },
            if self.shards > 0 {
                self.shards
            } else {
                DEDUP_SHARDS
            },
        )
    }
}

/// One parsed entry: the query and its streamed canonical fingerprint when
/// the entry was valid SPARQL, or the kind-classified parse failure.
type ParsedEntry = Result<(Query, u128), ParseError>;

/// A parsed batch tagged with (log index, batch sequence number, entry
/// start position).
type ParsedBatch = (usize, usize, u64, Vec<ParsedEntry>);

/// The tag of one claimed batch: which log it belongs to, its sequence
/// number within that log, and the 0-based position of its first entry.
/// Positions are assigned here, under the single batch-source lock, which
/// is what makes error-exemplar positions identical for every worker count
/// and batch schedule.
pub(crate) type BatchTag = (usize, usize, u64);

/// The shared batch dispenser: readers are drained one batch at a time under
/// a short lock; parsing and fingerprinting happen outside it. Shared with
/// the fused streaming engine ([`crate::fused`]).
pub(crate) struct BatchSource<'a> {
    pub(crate) readers: Vec<Box<dyn LogReader + 'a>>,
    pub(crate) current: usize,
    pub(crate) sequence: usize,
    pub(crate) totals: Vec<u64>,
    pub(crate) batch_size: usize,
    /// Whether reader-level defects (malformed lines) recover: tallied
    /// per log here, at the source, instead of failing the run.
    pub(crate) recover: bool,
    /// Per-log reader-defect tallies (only [`ErrorKind::InvalidUtf8`] so
    /// far); merged into the per-log parse tallies at end of run.
    pub(crate) tallies: Vec<ErrorTally>,
}

impl<'a> BatchSource<'a> {
    pub(crate) fn new(
        readers: Vec<Box<dyn LogReader + 'a>>,
        batch_size: usize,
        recover: bool,
    ) -> BatchSource<'a> {
        let log_count = readers.len();
        BatchSource {
            readers,
            current: 0,
            sequence: 0,
            totals: vec![0; log_count],
            batch_size,
            recover,
            tallies: vec![ErrorTally::default(); log_count],
        }
    }

    /// Fills `batch` with the next batch and returns its [`BatchTag`], or
    /// `None` when every reader is exhausted.
    ///
    /// A recoverable reader defect (a malformed line, when `recover` is
    /// set) is tallied here and consumes one entry position; the partially
    /// filled batch — the valid lines read before the defect — is returned
    /// immediately so every batch stays position-contiguous. On a real I/O
    /// error (or any reader error in strict mode) the source marks itself
    /// exhausted so other workers drain out.
    pub(crate) fn next_batch(&mut self, batch: &mut Vec<String>) -> io::Result<Option<BatchTag>> {
        loop {
            if self.current >= self.readers.len() {
                return Ok(None);
            }
            let before = batch.len();
            match self.readers[self.current].read_batch(batch, self.batch_size) {
                Ok(0) => {
                    self.current += 1;
                    self.sequence = 0;
                }
                Ok(appended) => {
                    let start = self.totals[self.current];
                    self.totals[self.current] += appended as u64;
                    let tag = (self.current, self.sequence, start);
                    self.sequence += 1;
                    return Ok(Some(tag));
                }
                Err(error) => {
                    // Lines read before the defect are already in `batch`.
                    let appended = (batch.len() - before) as u64;
                    if self.recover && reader_defect(&error) {
                        let start = self.totals[self.current];
                        self.tallies[self.current].record(ErrorKind::InvalidUtf8, start + appended);
                        // The defective line occupies an entry position of
                        // its own, after the lines that preceded it.
                        self.totals[self.current] += appended + 1;
                        if appended > 0 {
                            let tag = (self.current, self.sequence, start);
                            self.sequence += 1;
                            return Ok(Some(tag));
                        }
                        continue;
                    }
                    self.current = self.readers.len();
                    return Err(error);
                }
            }
        }
    }
}

/// Parses one batch through the shared guarded per-entry helper: each valid
/// entry is fingerprinted by streaming its canonical form into the FNV
/// state — no canonical string — and each failure keeps its kind-classified
/// error for the caller's policy to tally or abort on.
fn parse_batch(batch: &[String], ctx: &RecoveryContext, arena: &mut Arena) -> Vec<ParsedEntry> {
    batch
        .iter()
        .map(|entry| {
            parse_owned(entry, ctx, arena).map(|query| {
                let fingerprint = canonical_fingerprint_of(&query);
                (query, fingerprint)
            })
        })
        .collect()
}

/// Scans a parsed batch for a failure the policy cannot recover from and
/// builds the structured strict-mode error (log label, entry position,
/// underlying parse error). Shared by the staged and fused worker loops.
fn fatal_in_batch(
    parsed: &[ParsedEntry],
    ctx: &RecoveryContext,
    label: &str,
    start: u64,
) -> Option<io::Error> {
    parsed.iter().enumerate().find_map(|(offset, entry)| {
        entry
            .as_ref()
            .err()
            .filter(|error| ctx.fatal(error.kind))
            .map(|error| ctx.fatal_error(label, start + offset as u64, error))
    })
}

/// Folds one log's parsed entries (already restored to entry order, each
/// part tagged with its start position) into an [`IngestedLog`] through the
/// sharded first-occurrence dedup, tallying parse failures at their batch
/// positions on top of the reader-level tally. Shared by the streaming
/// engine and the zero-copy [`ingest_all`] wrapper.
fn assemble_streamed(
    label: String,
    total: u64,
    parts: impl IntoIterator<Item = (u64, Vec<ParsedEntry>)>,
    mut errors: ErrorTally,
    shard_count: usize,
    workers: usize,
) -> IngestedLog {
    let mut counts = CorpusCounts {
        total,
        ..CorpusCounts::default()
    };
    let mut valid_queries = Vec::new();
    let mut fingerprints = Vec::new();
    for (start, parsed) in parts {
        for (offset, entry) in parsed.into_iter().enumerate() {
            match entry {
                Ok((query, fingerprint)) => {
                    counts.valid += 1;
                    if !query.has_body() {
                        counts.bodyless += 1;
                    }
                    valid_queries.push(query);
                    fingerprints.push(fingerprint);
                }
                Err(error) => {
                    errors.record(error.kind, start + offset as u64);
                }
            }
        }
    }
    let (first, _shards) = first_occurrences(&fingerprints, shard_count, workers);
    let unique_indices: Vec<usize> = first
        .iter()
        .enumerate()
        .filter_map(|(index, &is_first)| is_first.then_some(index))
        .collect();
    counts.unique = unique_indices.len() as u64;
    IngestedLog {
        label,
        counts,
        valid_queries,
        fingerprints,
        unique_indices,
        errors,
    }
}

/// When every reader can say how much work remains, don't spawn more workers
/// than there are batches (a 4-entry quickstart log on a 64-core machine
/// needs one worker, not 64 no-op threads). Batches never span readers, so
/// the batch count is the *per-reader* sum of ceilings — eight 100-entry
/// logs are eight claimable batches, not one. Shared with the fused engine.
pub(crate) fn clamp_workers(
    readers: &[Box<dyn LogReader + '_>],
    workers: usize,
    batch_size: usize,
) -> usize {
    match readers
        .iter()
        .map(|r| r.size_hint())
        .try_fold(0usize, |sum, hint| {
            hint.map(|n| sum + n.div_ceil(batch_size))
        }) {
        Some(batches) => workers.min(batches.max(1)),
        None => workers,
    }
}

/// Streams every reader through the ingestion pipeline with default options.
///
/// Equivalent to [`ingest`] on a fully materialized log, but raw entries live
/// only for the duration of their batch, canonical strings are never built,
/// and duplicate elimination runs on fingerprint-range shards.
pub fn ingest_streams(readers: Vec<Box<dyn LogReader + '_>>) -> io::Result<Vec<IngestedLog>> {
    ingest_streams_with(readers, StreamOptions::default())
}

/// Streams every reader through the ingestion pipeline with explicit options.
/// The output is identical for any worker count, batch size or shard count.
pub fn ingest_streams_with(
    readers: Vec<Box<dyn LogReader + '_>>,
    options: StreamOptions,
) -> io::Result<Vec<IngestedLog>> {
    let (workers, batch_size, shard_count) = options.resolve();
    let workers = clamp_workers(&readers, workers, batch_size);
    let ctx = RecoveryContext::new(options.recovery);
    let labels: Vec<String> = readers.iter().map(|r| r.label().to_string()).collect();
    let log_count = readers.len();
    let mut source = BatchSource::new(readers, batch_size, ctx.policy.recovers());

    let parsed_batches: Vec<ParsedBatch> = if workers <= 1 {
        let mut parsed_batches = Vec::new();
        let mut batch = Vec::new();
        let mut arena = Arena::new();
        while let Some((log_index, sequence, start)) = source.next_batch(&mut batch)? {
            let parsed = parse_batch(&batch, &ctx, &mut arena);
            if let Some(error) = fatal_in_batch(&parsed, &ctx, &labels[log_index], start) {
                return Err(error);
            }
            parsed_batches.push((log_index, sequence, start, parsed));
            batch.clear();
        }
        parsed_batches
    } else {
        let source = Mutex::new(&mut source);
        let sink: Mutex<Vec<ParsedBatch>> = Mutex::new(Vec::new());
        let failure: Mutex<Option<io::Error>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut batch = Vec::new();
                    let mut arena = Arena::new();
                    loop {
                        batch.clear();
                        let claimed = source
                            .lock()
                            .expect("ingestion workers must not panic")
                            .next_batch(&mut batch);
                        match claimed {
                            Ok(Some((log_index, sequence, start))) => {
                                let parsed = parse_batch(&batch, &ctx, &mut arena);
                                if let Some(error) =
                                    fatal_in_batch(&parsed, &ctx, &labels[log_index], start)
                                {
                                    failure
                                        .lock()
                                        .expect("ingestion workers must not panic")
                                        .get_or_insert(error);
                                    break;
                                }
                                sink.lock()
                                    .expect("ingestion workers must not panic")
                                    .push((log_index, sequence, start, parsed));
                            }
                            Ok(None) => break,
                            Err(error) => {
                                failure
                                    .lock()
                                    .expect("ingestion workers must not panic")
                                    .get_or_insert(error);
                                break;
                            }
                        }
                    }
                });
            }
        });
        if let Some(error) = failure.into_inner().expect("no poisoned workers") {
            return Err(error);
        }
        sink.into_inner().expect("no poisoned workers")
    };

    // Group the parsed batches per log and restore entry order.
    let mut per_log: Vec<Vec<(usize, u64, Vec<ParsedEntry>)>> = vec![Vec::new(); log_count];
    for (log_index, sequence, start, parsed) in parsed_batches {
        per_log[log_index].push((sequence, start, parsed));
    }

    let mut logs = Vec::with_capacity(log_count);
    for (log_index, (label, mut parts)) in labels.into_iter().zip(per_log).enumerate() {
        parts.sort_unstable_by_key(|&(sequence, _, _)| sequence);
        logs.push(assemble_streamed(
            label,
            source.totals[log_index],
            parts.into_iter().map(|(_, start, parsed)| (start, parsed)),
            std::mem::take(&mut source.tallies[log_index]),
            shard_count,
            workers,
        ));
    }

    // The budget check runs once, over the merged end-of-run tallies, so
    // the staged pipeline reaches the same verdict as every other engine.
    let mut combined = ErrorTally::default();
    let mut total = 0u64;
    for log in &logs {
        combined.merge(&log.errors);
        total += log.counts.total;
    }
    crate::recover::enforce_budget(ctx.policy, &combined, total)?;
    Ok(logs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(entries: &[&str]) -> RawLog {
        RawLog::new("test", entries.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn counts_total_valid_unique() {
        let log = raw(&[
            "SELECT ?x WHERE { ?x a <http://C> }",
            "SELECT   ?x   WHERE { ?x a <http://C> }", // duplicate modulo whitespace
            "not a sparql query at all",
            "ASK { <http://s> <http://p> <http://o> }",
            "DESCRIBE <http://r>",
        ]);
        let ingested = ingest(&log);
        assert_eq!(ingested.counts.total, 5);
        assert_eq!(ingested.counts.valid, 4);
        assert_eq!(ingested.counts.unique, 3);
        assert_eq!(ingested.counts.bodyless, 1);
        assert_eq!(ingested.unique_queries().count(), 3);
    }

    #[test]
    fn duplicates_with_different_prefixes_collapse() {
        let log = raw(&[
            "PREFIX dbo: <http://dbpedia.org/ontology/> SELECT ?x WHERE { ?x a dbo:Film }",
            "PREFIX o: <http://dbpedia.org/ontology/> SELECT ?x WHERE { ?x a o:Film }",
        ]);
        let ingested = ingest(&log);
        assert_eq!(ingested.counts.valid, 2);
        assert_eq!(ingested.counts.unique, 1);
    }

    #[test]
    fn parallel_ingestion_matches_sequential() {
        let logs = vec![
            raw(&["SELECT ?x WHERE { ?x a <http://C> }", "garbage"]),
            raw(&["ASK { ?x <http://p> ?y }", "ASK { ?x <http://p> ?y }"]),
            raw(&["DESCRIBE <http://r>"]),
        ];
        let parallel = ingest_all(&logs);
        let sequential: Vec<IngestedLog> = logs.iter().map(ingest).collect();
        assert_eq!(parallel.len(), sequential.len());
        for (p, s) in parallel.iter().zip(sequential.iter()) {
            assert_eq!(p.counts, s.counts);
            assert_eq!(p.unique_indices, s.unique_indices);
        }
    }

    #[test]
    fn parallel_ingestion_spreads_one_large_log() {
        // A single log much larger than one chunk: the pool must still
        // reassemble it in order with correct dedup accounting.
        let mut entries = Vec::new();
        for i in 0..(INGEST_CHUNK * 3 + 17) {
            entries.push(format!("SELECT ?x WHERE {{ ?x <http://p{}> ?y }}", i % 700));
        }
        let log = RawLog::new("big", entries);
        let parallel = ingest_all(std::slice::from_ref(&log));
        let sequential = ingest(&log);
        assert_eq!(parallel[0].counts, sequential.counts);
        assert_eq!(parallel[0].unique_indices, sequential.unique_indices);
        assert_eq!(parallel[0].counts.unique, 700);
    }

    #[test]
    fn materializing_pool_matches_sequential() {
        let logs = vec![
            raw(&["SELECT ?x WHERE { ?x a <http://C> }", "garbage"]),
            raw(&["ASK { ?x <http://p> ?y }", "ASK { ?x <http://p> ?y }"]),
        ];
        let pooled = ingest_all_materializing(&logs);
        let sequential: Vec<IngestedLog> = logs.iter().map(ingest).collect();
        for (p, s) in pooled.iter().zip(sequential.iter()) {
            assert_eq!(p.counts, s.counts);
            assert_eq!(p.unique_indices, s.unique_indices);
        }
    }

    #[test]
    fn streaming_with_tiny_batches_matches_sequential() {
        let logs = [
            raw(&[
                "SELECT ?x WHERE { ?x a <http://C> }",
                "SELECT ?x WHERE { ?x a <http://C> }",
                "garbage",
                "ASK { ?x <http://p> ?y }",
            ]),
            raw(&["DESCRIBE <http://r>"]),
        ];
        for workers in [1, 2, 8] {
            for batch in [1, 2, 64] {
                let readers: Vec<Box<dyn LogReader + '_>> = logs
                    .iter()
                    .map(|l| Box::new(SliceLogReader::of(l)) as Box<dyn LogReader + '_>)
                    .collect();
                let streamed = ingest_streams_with(
                    readers,
                    StreamOptions {
                        workers,
                        batch,
                        shards: 4,
                        recovery: RecoveryPolicy::default(),
                    },
                )
                .unwrap();
                let sequential: Vec<IngestedLog> = logs.iter().map(ingest).collect();
                for (a, b) in streamed.iter().zip(&sequential) {
                    assert_eq!(a.counts, b.counts, "workers {workers}, batch {batch}");
                    assert_eq!(a.unique_indices, b.unique_indices);
                    assert_eq!(a.valid_queries, b.valid_queries);
                }
            }
        }
    }

    #[test]
    fn fingerprint_reexports_reach_the_parser_implementation() {
        // Behaviour is covered in parser::display; this only pins the
        // compatibility re-exports.
        let canonical = "SELECT ?x WHERE { ?x <http://p> ?y }";
        assert_eq!(
            canonical_fingerprint(canonical),
            sparqlog_parser::canonical_fingerprint(canonical)
        );
        let mut hasher = CanonicalHasher::new();
        let _ = std::fmt::Write::write_str(&mut hasher, canonical);
        assert_eq!(hasher.finish(), canonical_fingerprint(canonical));
    }

    #[test]
    fn fingerprint_shards_partition_and_merge() {
        let mut shards = FingerprintShards::new(4);
        assert_eq!(shards.shard_count(), 4);
        assert!(shards.insert(1));
        assert!(!shards.insert(1));
        assert!(shards.insert(u128::MAX));
        assert_eq!(shards.len(), 2);
        assert!(shards.contains(1));
        assert!(!shards.contains(2));
        // The top bits pick the shard.
        assert_eq!(shards.shard_of(0), 0);
        assert_eq!(shards.shard_of(u128::MAX), 3);

        // Commutative merge: build the same set in two halves, both orders.
        let fps: Vec<u128> = (0..64u128)
            .map(|i| i.wrapping_mul(0x9e37_79b9) << 96)
            .collect();
        let mut left = FingerprintShards::new(4);
        let mut right = FingerprintShards::new(4);
        for (i, &fp) in fps.iter().enumerate() {
            if i % 2 == 0 {
                left.insert(fp);
            } else {
                right.insert(fp);
            }
        }
        let mut ab = left.clone();
        ab.merge(right.clone());
        let mut ba = right;
        ba.merge(left);
        assert_eq!(ab.len(), ba.len());
        for &fp in &fps {
            assert!(ab.contains(fp) && ba.contains(fp));
        }
        assert!(ab.max_shard_len() <= ab.len());
    }

    #[test]
    fn first_occurrences_agree_across_worker_counts() {
        // Fingerprints spread over every shard, with duplicates both adjacent
        // and far apart.
        let mut fps: Vec<u128> = (0..500u128).map(|i| ((i % 97) << 121) | (i % 13)).collect();
        fps.extend_from_slice(&fps.clone());
        let (reference, reference_set) = first_occurrences(&fps, 16, 1);
        for workers in [2, 4, 8] {
            let (flags, set) = first_occurrences(&fps, 16, workers);
            assert_eq!(reference, flags, "workers {workers}");
            assert_eq!(reference_set.len(), set.len());
        }
        assert_eq!(
            reference.iter().filter(|&&f| f).count(),
            reference_set.len()
        );
    }

    #[test]
    fn find_newline_agrees_with_naive_search_at_every_offset() {
        // Newlines at every position of a buffer spanning several machine
        // words, including none at all and bytes ≥ 0x80 (the SWAR trick's
        // borrow propagation must never mis-report the first match).
        for len in 0..40 {
            let mut bytes: Vec<u8> = (0..len).map(|i| 0x41 + (i as u8 % 26)).collect();
            assert_eq!(find_newline(&bytes), None, "len {len}");
            for position in 0..len {
                let saved = bytes[position];
                bytes[position] = b'\n';
                if position > 0 {
                    bytes[position - 1] = 0xC3; // non-ASCII noise before the hit
                }
                assert_eq!(find_newline(&bytes), Some(position), "len {len}");
                bytes[position] = saved;
                if position > 0 {
                    bytes[position - 1] = 0x41 + ((position - 1) as u8 % 26);
                }
            }
        }
        // Two newlines: the first wins.
        assert_eq!(find_newline(b"ab\ncd\nef"), Some(2));
    }

    #[test]
    fn unterminated_final_line_keeps_a_trailing_carriage_return() {
        // `read_line` semantics: `\r` is only part of a `\r\n` terminator;
        // at end of stream with no `\n`, it is a data byte.
        let mut reader = LineLogReader::new("t", io::Cursor::new(b"first\r\nlast\r".to_vec()));
        let mut batch = Vec::new();
        assert_eq!(reader.read_batch(&mut batch, 10).unwrap(), 2);
        assert_eq!(batch, vec!["first".to_string(), "last\r".to_string()]);
    }

    #[test]
    fn corpus_counts_merge() {
        let mut a = CorpusCounts {
            total: 10,
            valid: 8,
            unique: 5,
            bodyless: 1,
        };
        let b = CorpusCounts {
            total: 2,
            valid: 2,
            unique: 2,
            bodyless: 0,
        };
        a.merge(&b);
        assert_eq!(a.total, 12);
        assert_eq!(a.valid, 10);
        assert_eq!(a.unique, 7);
    }
}
