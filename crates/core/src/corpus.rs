//! Corpus ingestion: parsing log entries, counting valid queries and
//! removing duplicates (Table 1 of the paper).
//!
//! Parsing — by far the dominant cost — is distributed over a chunked,
//! self-scheduling worker pool spanning *all* logs at once, so one large log
//! no longer serializes the run. Duplicate elimination hashes each query's
//! canonical form into a 128-bit fingerprint instead of storing the full
//! canonical string, which keeps the dedup set small at corpus scale.

use serde::{Deserialize, Serialize};
use sparqlog_parser::{parse_query, to_canonical_string, Query};
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One raw log: a label (dataset name) and its entries in log order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawLog {
    /// The dataset label (e.g. `"DBpedia15"`).
    pub label: String,
    /// The raw log entries.
    pub entries: Vec<String>,
}

impl RawLog {
    /// Creates a raw log.
    pub fn new(label: impl Into<String>, entries: Vec<String>) -> RawLog {
        RawLog {
            label: label.into(),
            entries,
        }
    }
}

/// The Table-1 accounting for one dataset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorpusCounts {
    /// Total log entries.
    pub total: u64,
    /// Entries that parse as SPARQL queries.
    pub valid: u64,
    /// Distinct valid queries (after canonicalization).
    pub unique: u64,
    /// Valid queries without a body (the paper reports 4.47 % corpus-wide,
    /// almost all of them DESCRIBE queries).
    pub bodyless: u64,
}

impl CorpusCounts {
    /// Merges another count (used for the corpus-level "Total" row).
    pub fn merge(&mut self, other: &CorpusCounts) {
        self.total += other.total;
        self.valid += other.valid;
        self.unique += other.unique;
        self.bodyless += other.bodyless;
    }
}

/// An ingested log: parsed queries plus the Table-1 counts.
#[derive(Debug, Clone)]
pub struct IngestedLog {
    /// The dataset label.
    pub label: String,
    /// Table-1 counts.
    pub counts: CorpusCounts,
    /// The valid queries in log order (including duplicates).
    pub valid_queries: Vec<Query>,
    /// Indices into `valid_queries` of the first occurrence of each distinct
    /// query — the *unique* corpus the paper's main analysis runs on.
    pub unique_indices: Vec<usize>,
}

impl IngestedLog {
    /// Iterates over the unique queries.
    pub fn unique_queries(&self) -> impl Iterator<Item = &Query> {
        self.unique_indices.iter().map(|&i| &self.valid_queries[i])
    }
}

/// A 128-bit FNV-1a fingerprint of a query's canonical form, used for
/// duplicate elimination without retaining the canonical string. At 128 bits
/// a corpus of 10⁹ queries has a collision probability below 10⁻²⁰, far
/// under the parse-ambiguity noise floor of any real log study.
pub fn canonical_fingerprint(canonical: &str) -> u128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut hash = OFFSET;
    for &byte in canonical.as_bytes() {
        hash ^= u128::from(byte);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Folds a log's parse results (in entry order) into counts, the query list
/// and the fingerprint-deduplicated unique indices.
fn assemble(label: &str, total: u64, parsed: impl Iterator<Item = Option<Query>>) -> IngestedLog {
    let mut counts = CorpusCounts {
        total,
        ..CorpusCounts::default()
    };
    let mut valid_queries = Vec::new();
    let mut unique_indices = Vec::new();
    let mut seen: HashSet<u128> = HashSet::new();
    for query in parsed.flatten() {
        counts.valid += 1;
        if !query.has_body() {
            counts.bodyless += 1;
        }
        let fingerprint = canonical_fingerprint(&to_canonical_string(&query));
        let index = valid_queries.len();
        valid_queries.push(query);
        if seen.insert(fingerprint) {
            unique_indices.push(index);
        }
    }
    counts.unique = unique_indices.len() as u64;
    IngestedLog {
        label: label.to_string(),
        counts,
        valid_queries,
        unique_indices,
    }
}

/// Parses and deduplicates one raw log sequentially.
pub fn ingest(log: &RawLog) -> IngestedLog {
    assemble(
        &log.label,
        log.entries.len() as u64,
        log.entries.iter().map(|entry| parse_query(entry).ok()),
    )
}

/// Entries per parse chunk: large enough to amortize scheduling, small
/// enough that a single large log spreads over every core.
const INGEST_CHUNK: usize = 512;

/// Parses several logs in parallel: the entries of *all* logs are split into
/// chunks handed out by a self-scheduling worker pool (bounded by the
/// available cores), and each log's results are then assembled in entry
/// order, so the output is identical to mapping [`ingest`] over the logs.
pub fn ingest_all(logs: &[RawLog]) -> Vec<IngestedLog> {
    let mut chunks: Vec<(usize, usize, usize)> = Vec::new();
    for (log_index, log) in logs.iter().enumerate() {
        let mut start = 0;
        while start < log.entries.len() {
            let end = (start + INGEST_CHUNK).min(log.entries.len());
            chunks.push((log_index, start, end));
            start = end;
        }
    }
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(chunks.len());
    if workers <= 1 {
        return logs.iter().map(ingest).collect();
    }

    // (log index, chunk start, parse results for the chunk's entries).
    type ParsedChunk = (usize, usize, Vec<Option<Query>>);
    let cursor = AtomicUsize::new(0);
    let parsed_chunks: Mutex<Vec<ParsedChunk>> = Mutex::new(Vec::with_capacity(chunks.len()));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&(log_index, start, end)) = chunks.get(i) else {
                    break;
                };
                let parsed: Vec<Option<Query>> = logs[log_index].entries[start..end]
                    .iter()
                    .map(|entry| parse_query(entry).ok())
                    .collect();
                parsed_chunks
                    .lock()
                    .expect("ingestion workers must not panic")
                    .push((log_index, start, parsed));
            });
        }
    });

    // Reassemble per log in entry order; counting and dedup are cheap
    // relative to parsing and stay sequential per log.
    let mut per_log: Vec<Vec<(usize, Vec<Option<Query>>)>> = vec![Vec::new(); logs.len()];
    for (log_index, start, parsed) in parsed_chunks.into_inner().expect("no poisoned workers") {
        per_log[log_index].push((start, parsed));
    }
    logs.iter()
        .zip(per_log)
        .map(|(log, mut parts)| {
            parts.sort_unstable_by_key(|(start, _)| *start);
            assemble(
                &log.label,
                log.entries.len() as u64,
                parts.into_iter().flat_map(|(_, parsed)| parsed),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(entries: &[&str]) -> RawLog {
        RawLog::new("test", entries.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn counts_total_valid_unique() {
        let log = raw(&[
            "SELECT ?x WHERE { ?x a <http://C> }",
            "SELECT   ?x   WHERE { ?x a <http://C> }", // duplicate modulo whitespace
            "not a sparql query at all",
            "ASK { <http://s> <http://p> <http://o> }",
            "DESCRIBE <http://r>",
        ]);
        let ingested = ingest(&log);
        assert_eq!(ingested.counts.total, 5);
        assert_eq!(ingested.counts.valid, 4);
        assert_eq!(ingested.counts.unique, 3);
        assert_eq!(ingested.counts.bodyless, 1);
        assert_eq!(ingested.unique_queries().count(), 3);
    }

    #[test]
    fn duplicates_with_different_prefixes_collapse() {
        let log = raw(&[
            "PREFIX dbo: <http://dbpedia.org/ontology/> SELECT ?x WHERE { ?x a dbo:Film }",
            "PREFIX o: <http://dbpedia.org/ontology/> SELECT ?x WHERE { ?x a o:Film }",
        ]);
        let ingested = ingest(&log);
        assert_eq!(ingested.counts.valid, 2);
        assert_eq!(ingested.counts.unique, 1);
    }

    #[test]
    fn parallel_ingestion_matches_sequential() {
        let logs = vec![
            raw(&["SELECT ?x WHERE { ?x a <http://C> }", "garbage"]),
            raw(&["ASK { ?x <http://p> ?y }", "ASK { ?x <http://p> ?y }"]),
            raw(&["DESCRIBE <http://r>"]),
        ];
        let parallel = ingest_all(&logs);
        let sequential: Vec<IngestedLog> = logs.iter().map(ingest).collect();
        assert_eq!(parallel.len(), sequential.len());
        for (p, s) in parallel.iter().zip(sequential.iter()) {
            assert_eq!(p.counts, s.counts);
            assert_eq!(p.unique_indices, s.unique_indices);
        }
    }

    #[test]
    fn parallel_ingestion_spreads_one_large_log() {
        // A single log much larger than one chunk: the pool must still
        // reassemble it in order with correct dedup accounting.
        let mut entries = Vec::new();
        for i in 0..(INGEST_CHUNK * 3 + 17) {
            entries.push(format!("SELECT ?x WHERE {{ ?x <http://p{}> ?y }}", i % 700));
        }
        let log = RawLog::new("big", entries);
        let parallel = ingest_all(std::slice::from_ref(&log));
        let sequential = ingest(&log);
        assert_eq!(parallel[0].counts, sequential.counts);
        assert_eq!(parallel[0].unique_indices, sequential.unique_indices);
        assert_eq!(parallel[0].counts.unique, 700);
    }

    #[test]
    fn fingerprints_distinguish_nearby_strings() {
        let a = canonical_fingerprint("SELECT ?x WHERE { ?x <http://p> ?y }");
        let b = canonical_fingerprint("SELECT ?x WHERE { ?x <http://q> ?y }");
        assert_ne!(a, b);
        assert_eq!(
            a,
            canonical_fingerprint("SELECT ?x WHERE { ?x <http://p> ?y }")
        );
    }

    #[test]
    fn corpus_counts_merge() {
        let mut a = CorpusCounts {
            total: 10,
            valid: 8,
            unique: 5,
            bodyless: 1,
        };
        let b = CorpusCounts {
            total: 2,
            valid: 2,
            unique: 2,
            bodyless: 0,
        };
        a.merge(&b);
        assert_eq!(a.total, 12);
        assert_eq!(a.valid, 10);
        assert_eq!(a.unique, 7);
    }
}
