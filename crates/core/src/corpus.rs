//! Corpus ingestion: parsing log entries, counting valid queries and
//! removing duplicates (Table 1 of the paper).

use serde::{Deserialize, Serialize};
use sparqlog_parser::{parse_query, to_canonical_string, Query};
use std::collections::HashSet;

/// One raw log: a label (dataset name) and its entries in log order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawLog {
    /// The dataset label (e.g. `"DBpedia15"`).
    pub label: String,
    /// The raw log entries.
    pub entries: Vec<String>,
}

impl RawLog {
    /// Creates a raw log.
    pub fn new(label: impl Into<String>, entries: Vec<String>) -> RawLog {
        RawLog { label: label.into(), entries }
    }
}

/// The Table-1 accounting for one dataset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorpusCounts {
    /// Total log entries.
    pub total: u64,
    /// Entries that parse as SPARQL queries.
    pub valid: u64,
    /// Distinct valid queries (after canonicalization).
    pub unique: u64,
    /// Valid queries without a body (the paper reports 4.47 % corpus-wide,
    /// almost all of them DESCRIBE queries).
    pub bodyless: u64,
}

impl CorpusCounts {
    /// Merges another count (used for the corpus-level "Total" row).
    pub fn merge(&mut self, other: &CorpusCounts) {
        self.total += other.total;
        self.valid += other.valid;
        self.unique += other.unique;
        self.bodyless += other.bodyless;
    }
}

/// An ingested log: parsed queries plus the Table-1 counts.
#[derive(Debug, Clone)]
pub struct IngestedLog {
    /// The dataset label.
    pub label: String,
    /// Table-1 counts.
    pub counts: CorpusCounts,
    /// The valid queries in log order (including duplicates).
    pub valid_queries: Vec<Query>,
    /// Indices into `valid_queries` of the first occurrence of each distinct
    /// query — the *unique* corpus the paper's main analysis runs on.
    pub unique_indices: Vec<usize>,
}

impl IngestedLog {
    /// Iterates over the unique queries.
    pub fn unique_queries(&self) -> impl Iterator<Item = &Query> {
        self.unique_indices.iter().map(|&i| &self.valid_queries[i])
    }
}

/// Parses and deduplicates one raw log.
pub fn ingest(log: &RawLog) -> IngestedLog {
    let mut counts = CorpusCounts { total: log.entries.len() as u64, ..CorpusCounts::default() };
    let mut valid_queries = Vec::new();
    let mut unique_indices = Vec::new();
    let mut seen: HashSet<String> = HashSet::new();
    for entry in &log.entries {
        let Ok(query) = parse_query(entry) else { continue };
        counts.valid += 1;
        if !query.has_body() {
            counts.bodyless += 1;
        }
        let canonical = to_canonical_string(&query);
        let index = valid_queries.len();
        valid_queries.push(query);
        if seen.insert(canonical) {
            unique_indices.push(index);
        }
    }
    counts.unique = unique_indices.len() as u64;
    IngestedLog { label: log.label.clone(), counts, valid_queries, unique_indices }
}

/// Parses several logs in parallel using scoped threads (one per log).
pub fn ingest_all(logs: &[RawLog]) -> Vec<IngestedLog> {
    if logs.len() <= 1 {
        return logs.iter().map(ingest).collect();
    }
    let results = parking_lot::Mutex::new(vec![None; logs.len()]);
    crossbeam::thread::scope(|scope| {
        for (i, log) in logs.iter().enumerate() {
            let results = &results;
            scope.spawn(move |_| {
                let ingested = ingest(log);
                results.lock()[i] = Some(ingested);
            });
        }
    })
    .expect("ingestion threads must not panic");
    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every log is ingested"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(entries: &[&str]) -> RawLog {
        RawLog::new("test", entries.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn counts_total_valid_unique() {
        let log = raw(&[
            "SELECT ?x WHERE { ?x a <http://C> }",
            "SELECT   ?x   WHERE { ?x a <http://C> }", // duplicate modulo whitespace
            "not a sparql query at all",
            "ASK { <http://s> <http://p> <http://o> }",
            "DESCRIBE <http://r>",
        ]);
        let ingested = ingest(&log);
        assert_eq!(ingested.counts.total, 5);
        assert_eq!(ingested.counts.valid, 4);
        assert_eq!(ingested.counts.unique, 3);
        assert_eq!(ingested.counts.bodyless, 1);
        assert_eq!(ingested.unique_queries().count(), 3);
    }

    #[test]
    fn duplicates_with_different_prefixes_collapse() {
        let log = raw(&[
            "PREFIX dbo: <http://dbpedia.org/ontology/> SELECT ?x WHERE { ?x a dbo:Film }",
            "PREFIX o: <http://dbpedia.org/ontology/> SELECT ?x WHERE { ?x a o:Film }",
        ]);
        let ingested = ingest(&log);
        assert_eq!(ingested.counts.valid, 2);
        assert_eq!(ingested.counts.unique, 1);
    }

    #[test]
    fn parallel_ingestion_matches_sequential() {
        let logs = vec![
            raw(&["SELECT ?x WHERE { ?x a <http://C> }", "garbage"]),
            raw(&["ASK { ?x <http://p> ?y }", "ASK { ?x <http://p> ?y }"]),
            raw(&["DESCRIBE <http://r>"]),
        ];
        let parallel = ingest_all(&logs);
        let sequential: Vec<IngestedLog> = logs.iter().map(ingest).collect();
        assert_eq!(parallel.len(), sequential.len());
        for (p, s) in parallel.iter().zip(sequential.iter()) {
            assert_eq!(p.counts, s.counts);
            assert_eq!(p.unique_indices, s.unique_indices);
        }
    }

    #[test]
    fn corpus_counts_merge() {
        let mut a = CorpusCounts { total: 10, valid: 8, unique: 5, bodyless: 1 };
        let b = CorpusCounts { total: 2, valid: 2, unique: 2, bodyless: 0 };
        a.merge(&b);
        assert_eq!(a.total, 12);
        assert_eq!(a.valid, 10);
        assert_eq!(a.unique, 7);
    }
}
