//! # sparqlog-paths
//!
//! Property-path analysis for SPARQL query logs (Section 7 of *"An
//! Analytical Study of Large SPARQL Query Logs"*):
//!
//! * [`classify`] — maps each property-path expression to the expression-type
//!   taxonomy of Table 5 / Figure 10 (treating `^a` and `!a` as literals
//!   inside larger expressions, with symmetric forms folded together).
//! * [`ctract`] — a syntactic tractability test for simple-path semantics in
//!   the spirit of the Bagan–Bonifati–Groz trichotomy, which flags `(a/b)*`
//!   as the lone potentially hard expression, as the paper observed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod ctract;

pub use classify::{classify_path, Normalized, PathClassification, PathExpressionType};
pub use ctract::{classify_and_check, tractability, Tractability};

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Aggregated property-path statistics over a corpus (the inputs to Table 5).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathTally {
    /// Total property paths seen (including trivial / pre-table forms).
    pub total: u64,
    /// `!a` expressions.
    pub negated_literal: u64,
    /// `^a` expressions.
    pub inverse_literal: u64,
    /// Navigational expressions (everything else), keyed by expression type,
    /// with the count and the observed range of `k`.
    pub by_type: BTreeMap<PathExpressionType, TypeEntry>,
    /// Navigational expressions using reverse navigation (`^`).
    pub with_inverse: u64,
    /// Expressions outside the syntactic C_tract fragment.
    pub potentially_hard: u64,
}

/// One Table-5 row: `(label, count, share of navigational expressions,
/// observed k range)`.
pub type PathRow = (String, u64, f64, Option<(usize, usize)>);

/// Count and `k` range for one expression type.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TypeEntry {
    /// Number of expressions of this type.
    pub count: u64,
    /// Minimum observed `k`, when the type is parameterised.
    pub min_k: Option<usize>,
    /// Maximum observed `k`.
    pub max_k: Option<usize>,
}

impl PathTally {
    /// Creates an empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one property path.
    pub fn add(&mut self, p: &sparqlog_parser::ast::PropertyPath) {
        self.total += 1;
        let c = classify_path(p);
        match c.ty {
            PathExpressionType::NegatedLiteral => {
                self.negated_literal += 1;
                return;
            }
            PathExpressionType::InverseLiteral => {
                self.inverse_literal += 1;
                return;
            }
            PathExpressionType::Trivial => return,
            _ => {}
        }
        if c.uses_inverse {
            self.with_inverse += 1;
        }
        if tractability(p) == Tractability::PotentiallyHard {
            self.potentially_hard += 1;
        }
        let entry = self.by_type.entry(c.ty).or_default();
        entry.count += 1;
        if let Some(k) = c.k {
            entry.min_k = Some(entry.min_k.map_or(k, |m| m.min(k)));
            entry.max_k = Some(entry.max_k.map_or(k, |m| m.max(k)));
        }
    }

    /// Merges another tally.
    pub fn merge(&mut self, other: &PathTally) {
        self.total += other.total;
        self.negated_literal += other.negated_literal;
        self.inverse_literal += other.inverse_literal;
        self.with_inverse += other.with_inverse;
        self.potentially_hard += other.potentially_hard;
        for (ty, e) in &other.by_type {
            let entry = self.by_type.entry(*ty).or_default();
            entry.count += e.count;
            entry.min_k = match (entry.min_k, e.min_k) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            entry.max_k = match (entry.max_k, e.max_k) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            };
        }
    }

    /// Multiplies every additive counter by `times` while leaving the
    /// observed `k` ranges untouched: a tally built from one query's paths
    /// and then scaled equals `times` repeated merges of the same per-query
    /// tally (minima and maxima are idempotent under repetition). Used by
    /// the fused engine's occurrence-weighted fold.
    pub fn scale(&mut self, times: u64) {
        self.total *= times;
        self.negated_literal *= times;
        self.inverse_literal *= times;
        self.with_inverse *= times;
        self.potentially_hard *= times;
        for entry in self.by_type.values_mut() {
            entry.count *= times;
        }
    }

    /// Number of navigational expressions (those entering Table 5).
    pub fn navigational(&self) -> u64 {
        self.by_type.values().map(|e| e.count).sum()
    }

    /// Rows for Table 5: `(label, count, share of navigational, k range)`,
    /// sorted by descending count.
    pub fn rows(&self) -> Vec<PathRow> {
        let nav = self.navigational().max(1) as f64;
        let mut rows: Vec<_> = self
            .by_type
            .iter()
            .map(|(ty, e)| {
                let range = match (e.min_k, e.max_k) {
                    (Some(a), Some(b)) => Some((a, b)),
                    _ => None,
                };
                (ty.label().to_string(), e.count, e.count as f64 / nav, range)
            })
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparqlog_parser::ast::{GroupElement, TripleOrPath};
    use sparqlog_parser::parse_query;

    fn path_of(expr: &str) -> sparqlog_parser::ast::PropertyPath {
        let q = parse_query(&format!("ASK {{ ?s {expr} ?o }}")).unwrap();
        let body = q.where_clause.unwrap();
        let GroupElement::Triples(ts) = &body.elements[0] else {
            panic!()
        };
        match &ts[0] {
            TripleOrPath::Path(p) => p.path.clone(),
            TripleOrPath::Triple(t) => {
                let sparqlog_parser::ast::Term::Iri(i) = &t.predicate else {
                    panic!()
                };
                sparqlog_parser::ast::PropertyPath::Iri(i.clone())
            }
        }
    }

    #[test]
    fn tally_separates_pre_table_and_navigational() {
        let mut t = PathTally::new();
        t.add(&path_of("!<a>"));
        t.add(&path_of("^<a>"));
        t.add(&path_of("<a>*"));
        t.add(&path_of("(<a>|<b>)*"));
        t.add(&path_of("(<a>/<b>)*"));
        assert_eq!(t.total, 5);
        assert_eq!(t.negated_literal, 1);
        assert_eq!(t.inverse_literal, 1);
        assert_eq!(t.navigational(), 3);
        assert_eq!(t.potentially_hard, 1);
    }

    #[test]
    fn k_ranges_are_tracked() {
        let mut t = PathTally::new();
        t.add(&path_of("<a>/<b>"));
        t.add(&path_of("<a>/<b>/<c>/<d>/<e>/<f>"));
        let entry = t.by_type[&PathExpressionType::SequenceOfLiterals];
        assert_eq!(entry.count, 2);
        assert_eq!(entry.min_k, Some(2));
        assert_eq!(entry.max_k, Some(6));
    }

    #[test]
    fn rows_sorted_by_count() {
        let mut t = PathTally::new();
        for _ in 0..3 {
            t.add(&path_of("<a>*"));
        }
        t.add(&path_of("<a>/<b>"));
        let rows = t.rows();
        assert_eq!(rows[0].0, "a*");
        assert_eq!(rows[0].1, 3);
        assert!((rows[0].2 - 0.75).abs() < 1e-9);
    }

    #[test]
    fn merge_combines_ranges() {
        let mut a = PathTally::new();
        a.add(&path_of("<a>/<b>"));
        let mut b = PathTally::new();
        b.add(&path_of("<a>/<b>/<c>"));
        b.add(&path_of("^<x>/<y>"));
        a.merge(&b);
        let entry = a.by_type[&PathExpressionType::SequenceOfLiterals];
        assert_eq!(entry.count, 3);
        assert_eq!(entry.max_k, Some(3));
        assert_eq!(a.with_inverse, 1);
    }
}
