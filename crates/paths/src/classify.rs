//! Classification of property-path expressions into the taxonomy of
//! Table 5 / Figure 10 of the paper.
//!
//! Following Section 7, `^a` (a single inverse step) and `!a` (a single
//! negated step) are treated like plain literals when they appear inside a
//! larger expression, and are reported separately when they *are* the whole
//! expression. Every expression type also stands for its symmetric form
//! (e.g. `a*/b` covers `b/a*`).

use serde::{Deserialize, Serialize};
use sparqlog_parser::ast::PropertyPath;

/// A normalized view of a property path where single steps (IRIs, inverse
/// steps, single-negation steps) become opaque "literals" and nested
/// sequences / alternations are flattened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Normalized {
    /// A single step (IRI, `^iri` or `!iri`).
    Lit,
    /// A flattened sequence with at least two parts.
    Seq(Vec<Normalized>),
    /// A flattened alternation with at least two parts.
    Alt(Vec<Normalized>),
    /// Zero-or-more closure.
    Star(Box<Normalized>),
    /// One-or-more closure.
    Plus(Box<Normalized>),
    /// Zero-or-one.
    Opt(Box<Normalized>),
    /// A negated property set with at least two entries, `!(a|^b|…)`.
    NegSet(usize),
}

impl Normalized {
    /// Normalizes a parsed property path.
    pub fn of(p: &PropertyPath) -> Normalized {
        match p {
            PropertyPath::Iri(_) => Normalized::Lit,
            PropertyPath::Inverse(inner) => {
                // `^a` over a single step is a literal; a more complex inverse
                // is normalized structurally (rare).
                match Normalized::of(inner) {
                    Normalized::Lit => Normalized::Lit,
                    other => other,
                }
            }
            PropertyPath::NegatedPropertySet(items) => {
                if items.len() <= 1 {
                    Normalized::Lit
                } else {
                    Normalized::NegSet(items.len())
                }
            }
            PropertyPath::Sequence(a, b) => {
                let mut parts = Vec::new();
                flatten_seq(a, &mut parts);
                flatten_seq(b, &mut parts);
                Normalized::Seq(parts)
            }
            PropertyPath::Alternative(a, b) => {
                let mut parts = Vec::new();
                flatten_alt(a, &mut parts);
                flatten_alt(b, &mut parts);
                Normalized::Alt(parts)
            }
            PropertyPath::ZeroOrMore(inner) => Normalized::Star(Box::new(Normalized::of(inner))),
            PropertyPath::OneOrMore(inner) => Normalized::Plus(Box::new(Normalized::of(inner))),
            PropertyPath::ZeroOrOne(inner) => Normalized::Opt(Box::new(Normalized::of(inner))),
        }
    }
}

fn flatten_seq(p: &PropertyPath, out: &mut Vec<Normalized>) {
    if let PropertyPath::Sequence(a, b) = p {
        flatten_seq(a, out);
        flatten_seq(b, out);
    } else {
        out.push(Normalized::of(p));
    }
}

fn flatten_alt(p: &PropertyPath, out: &mut Vec<Normalized>) {
    if let PropertyPath::Alternative(a, b) = p {
        flatten_alt(a, out);
        flatten_alt(b, out);
    } else {
        out.push(Normalized::of(p));
    }
}

/// The expression types of Table 5 (plus the pre-table `!a` / `^a` classes
/// and a trivial / other bucket). The `k` of parameterised types is carried
/// in [`PathClassification`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PathExpressionType {
    /// A plain forward step (would not normally be parsed as a path).
    Trivial,
    /// `!a` — a single negated step.
    NegatedLiteral,
    /// `^a` — a single inverse step.
    InverseLiteral,
    /// `(a1|…|ak)*`.
    StarOverAlternation,
    /// `a*`.
    StarLiteral,
    /// `a1/…/ak`.
    SequenceOfLiterals,
    /// `a*/b` (or `b/a*`).
    StarThenLiteral,
    /// `a1|…|ak`.
    AlternationOfLiterals,
    /// `a+`.
    PlusLiteral,
    /// `a1?/…/ak?`.
    SequenceOfOptionals,
    /// `a(b1|…|bk)` — a literal followed by an alternation.
    LiteralThenAlternation,
    /// `a1/a2?/…/ak?` — a literal followed by optionals.
    LiteralThenOptionals,
    /// `(a/b*)|c`.
    SeqStarOrLiteral,
    /// `a*/b?`.
    StarThenOptional,
    /// `a/b/c*`.
    TwoLiteralsThenStar,
    /// `!(a|b)`.
    NegatedAlternation,
    /// `(a1|…|ak)+`.
    PlusOverAlternation,
    /// `(a1|…|ak)(a1|…|ak)` — a sequence of two alternations.
    SequenceOfAlternations,
    /// `a?|b`.
    OptionalOrLiteral,
    /// `a*|b`.
    StarOrLiteral,
    /// `(a|b)?`.
    OptionalOverAlternation,
    /// `a|b+`.
    LiteralOrPlus,
    /// `a+|b+`.
    PlusOrPlus,
    /// `(a/b)*` — the only expression in the paper's corpus outside C_tract.
    StarOverSequence,
    /// Anything else.
    Other,
}

impl PathExpressionType {
    /// Every expression type, in wire-code order: `ALL[i].code() == i`.
    /// Snapshot codecs (e.g. `sparqlog-shard`) iterate this to prove the
    /// code mapping total; tally consumers can use it to enumerate rows.
    pub const ALL: [PathExpressionType; 25] = [
        PathExpressionType::Trivial,
        PathExpressionType::NegatedLiteral,
        PathExpressionType::InverseLiteral,
        PathExpressionType::StarOverAlternation,
        PathExpressionType::StarLiteral,
        PathExpressionType::SequenceOfLiterals,
        PathExpressionType::StarThenLiteral,
        PathExpressionType::AlternationOfLiterals,
        PathExpressionType::PlusLiteral,
        PathExpressionType::SequenceOfOptionals,
        PathExpressionType::LiteralThenAlternation,
        PathExpressionType::LiteralThenOptionals,
        PathExpressionType::SeqStarOrLiteral,
        PathExpressionType::StarThenOptional,
        PathExpressionType::TwoLiteralsThenStar,
        PathExpressionType::NegatedAlternation,
        PathExpressionType::PlusOverAlternation,
        PathExpressionType::SequenceOfAlternations,
        PathExpressionType::OptionalOrLiteral,
        PathExpressionType::StarOrLiteral,
        PathExpressionType::OptionalOverAlternation,
        PathExpressionType::LiteralOrPlus,
        PathExpressionType::PlusOrPlus,
        PathExpressionType::StarOverSequence,
        PathExpressionType::Other,
    ];

    /// The stable wire code of this type (its index in
    /// [`PathExpressionType::ALL`]) — the representation snapshot codecs
    /// serialize. New variants must be appended to `ALL`, never reordered,
    /// so codes stay stable across versions.
    pub fn code(self) -> u8 {
        Self::ALL
            .iter()
            .position(|&ty| ty == self)
            .expect("every variant is listed in ALL") as u8
    }

    /// The type with the given wire code, or `None` for an unknown code (a
    /// decoder's invalid-value case).
    pub fn from_code(code: u8) -> Option<PathExpressionType> {
        Self::ALL.get(usize::from(code)).copied()
    }

    /// The human-readable label used in Table 5.
    pub fn label(&self) -> &'static str {
        match self {
            PathExpressionType::Trivial => "a",
            PathExpressionType::NegatedLiteral => "!a",
            PathExpressionType::InverseLiteral => "^a",
            PathExpressionType::StarOverAlternation => "(a1|...|ak)*",
            PathExpressionType::StarLiteral => "a*",
            PathExpressionType::SequenceOfLiterals => "a1/.../ak",
            PathExpressionType::StarThenLiteral => "a*/b",
            PathExpressionType::AlternationOfLiterals => "a1|...|ak",
            PathExpressionType::PlusLiteral => "a+",
            PathExpressionType::SequenceOfOptionals => "a1?/.../ak?",
            PathExpressionType::LiteralThenAlternation => "a(b1|...|bk)",
            PathExpressionType::LiteralThenOptionals => "a1/a2?/.../ak?",
            PathExpressionType::SeqStarOrLiteral => "(a/b*)|c",
            PathExpressionType::StarThenOptional => "a*/b?",
            PathExpressionType::TwoLiteralsThenStar => "a/b/c*",
            PathExpressionType::NegatedAlternation => "!(a|b)",
            PathExpressionType::PlusOverAlternation => "(a1|...|ak)+",
            PathExpressionType::SequenceOfAlternations => "(a1|...|ak)(a1|...|ak)",
            PathExpressionType::OptionalOrLiteral => "a?|b",
            PathExpressionType::StarOrLiteral => "a*|b",
            PathExpressionType::OptionalOverAlternation => "(a|b)?",
            PathExpressionType::LiteralOrPlus => "a|b+",
            PathExpressionType::PlusOrPlus => "a+|b+",
            PathExpressionType::StarOverSequence => "(a/b)*",
            PathExpressionType::Other => "other",
        }
    }

    /// True for the two pre-table classes (`!a`, `^a`) that Section 7 counts
    /// separately and excludes from the navigational analysis.
    pub fn is_pre_table(&self) -> bool {
        matches!(
            self,
            PathExpressionType::NegatedLiteral | PathExpressionType::InverseLiteral
        )
    }
}

/// The classification of a single property-path expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathClassification {
    /// The expression type.
    pub ty: PathExpressionType,
    /// The arity parameter `k` of the type (length of the sequence /
    /// alternation), when meaningful.
    pub k: Option<usize>,
    /// Whether the expression uses reverse navigation (`^`) anywhere.
    pub uses_inverse: bool,
}

/// Classifies a parsed property path.
pub fn classify_path(p: &PropertyPath) -> PathClassification {
    let uses_inverse = uses_inverse(p);
    // The two special single-step classes are decided on the raw AST.
    match p {
        PropertyPath::Iri(_) => {
            return PathClassification {
                ty: PathExpressionType::Trivial,
                k: None,
                uses_inverse,
            }
        }
        PropertyPath::Inverse(inner) if matches!(**inner, PropertyPath::Iri(_)) => {
            return PathClassification {
                ty: PathExpressionType::InverseLiteral,
                k: None,
                uses_inverse,
            }
        }
        PropertyPath::NegatedPropertySet(items) if items.len() == 1 => {
            return PathClassification {
                ty: PathExpressionType::NegatedLiteral,
                k: None,
                uses_inverse,
            }
        }
        _ => {}
    }
    let n = Normalized::of(p);
    let (ty, k) = classify_normalized(&n);
    PathClassification {
        ty,
        k,
        uses_inverse,
    }
}

fn uses_inverse(p: &PropertyPath) -> bool {
    match p {
        PropertyPath::Iri(_) => false,
        PropertyPath::Inverse(_) => true,
        PropertyPath::NegatedPropertySet(items) => items.iter().any(|(_, inv)| *inv),
        PropertyPath::Sequence(a, b) | PropertyPath::Alternative(a, b) => {
            uses_inverse(a) || uses_inverse(b)
        }
        PropertyPath::ZeroOrMore(a) | PropertyPath::OneOrMore(a) | PropertyPath::ZeroOrOne(a) => {
            uses_inverse(a)
        }
    }
}

fn all_lits(parts: &[Normalized]) -> bool {
    parts.iter().all(|p| matches!(p, Normalized::Lit))
}

fn classify_normalized(n: &Normalized) -> (PathExpressionType, Option<usize>) {
    use Normalized as N;
    use PathExpressionType as T;
    match n {
        N::Lit => (T::Trivial, None),
        N::NegSet(k) => (T::NegatedAlternation, Some(*k)),
        N::Star(inner) => match inner.as_ref() {
            N::Lit => (T::StarLiteral, None),
            N::Alt(parts) if all_lits(parts) => (T::StarOverAlternation, Some(parts.len())),
            N::Seq(parts) if all_lits(parts) => (T::StarOverSequence, Some(parts.len())),
            _ => (T::Other, None),
        },
        N::Plus(inner) => match inner.as_ref() {
            N::Lit => (T::PlusLiteral, None),
            N::Alt(parts) if all_lits(parts) => (T::PlusOverAlternation, Some(parts.len())),
            _ => (T::Other, None),
        },
        N::Opt(inner) => match inner.as_ref() {
            N::Lit => (T::Other, None), // a bare `a?` — grouped under other
            N::Alt(parts) if all_lits(parts) => (T::OptionalOverAlternation, Some(parts.len())),
            _ => (T::Other, None),
        },
        N::Alt(parts) => classify_alternation(parts),
        N::Seq(parts) => classify_sequence(parts),
    }
}

fn classify_alternation(parts: &[Normalized]) -> (PathExpressionType, Option<usize>) {
    use Normalized as N;
    use PathExpressionType as T;
    if all_lits(parts) {
        return (T::AlternationOfLiterals, Some(parts.len()));
    }
    if parts.len() == 2 {
        let mut sorted: Vec<&Normalized> = parts.iter().collect();
        // Canonical order: complex part first.
        sorted.sort_by_key(|p| matches!(p, N::Lit));
        match (sorted[0], sorted[1]) {
            (N::Opt(a), N::Lit) if matches!(**a, N::Lit) => return (T::OptionalOrLiteral, None),
            (N::Star(a), N::Lit) if matches!(**a, N::Lit) => return (T::StarOrLiteral, None),
            (N::Plus(a), N::Lit) if matches!(**a, N::Lit) => return (T::LiteralOrPlus, None),
            (N::Seq(seq), N::Lit) if seq.len() == 2 => {
                let star_and_lit = seq
                    .iter()
                    .any(|p| matches!(p, N::Star(inner) if matches!(**inner, N::Lit)))
                    && seq.iter().any(|p| matches!(p, N::Lit));
                if star_and_lit {
                    return (T::SeqStarOrLiteral, None);
                }
            }
            (N::Plus(a), N::Plus(b)) if matches!(**a, N::Lit) && matches!(**b, N::Lit) => {
                return (T::PlusOrPlus, None)
            }
            _ => {}
        }
        // Both parts Plus(Lit)?
        if parts
            .iter()
            .all(|p| matches!(p, N::Plus(inner) if matches!(**inner, N::Lit)))
        {
            return (T::PlusOrPlus, None);
        }
    }
    (T::Other, None)
}

fn classify_sequence(parts: &[Normalized]) -> (PathExpressionType, Option<usize>) {
    use Normalized as N;
    use PathExpressionType as T;
    let k = parts.len();
    if all_lits(parts) {
        return (T::SequenceOfLiterals, Some(k));
    }
    let lit_count = parts.iter().filter(|p| matches!(p, N::Lit)).count();
    let star_lit_count = parts
        .iter()
        .filter(|p| matches!(p, N::Star(inner) if matches!(**inner, N::Lit)))
        .count();
    let opt_lit_count = parts
        .iter()
        .filter(|p| matches!(p, N::Opt(inner) if matches!(**inner, N::Lit)))
        .count();
    let alt_lit_count = parts
        .iter()
        .filter(|p| matches!(p, N::Alt(inner) if all_lits(inner)))
        .count();

    // a*/b and b/a*.
    if k == 2 && star_lit_count == 1 && lit_count == 1 {
        return (T::StarThenLiteral, None);
    }
    // a*/b? and b?/a*.
    if k == 2 && star_lit_count == 1 && opt_lit_count == 1 {
        return (T::StarThenOptional, None);
    }
    // a1?/…/ak?.
    if opt_lit_count == k {
        return (T::SequenceOfOptionals, Some(k));
    }
    // a1/a2?/…/ak? — literals first, then optionals (at least one of each).
    if lit_count + opt_lit_count == k && lit_count >= 1 && opt_lit_count >= 1 && k > 2 {
        return (T::LiteralThenOptionals, Some(k));
    }
    if k == 2 && lit_count == 1 && opt_lit_count == 1 {
        return (T::LiteralThenOptionals, Some(k));
    }
    // a(b1|…|bk).
    if k == 2 && lit_count == 1 && alt_lit_count == 1 {
        if let Some(N::Alt(alt)) = parts.iter().find(|p| matches!(p, N::Alt(_))) {
            return (T::LiteralThenAlternation, Some(alt.len()));
        }
    }
    // (a1|…|ak)(a1|…|ak).
    if k == 2 && alt_lit_count == 2 {
        if let Some(N::Alt(alt)) = parts.iter().find(|p| matches!(p, N::Alt(_))) {
            return (T::SequenceOfAlternations, Some(alt.len()));
        }
    }
    // a/b/c* (two literals and one starred literal, in any position).
    if k == 3 && lit_count == 2 && star_lit_count == 1 {
        return (T::TwoLiteralsThenStar, None);
    }
    (T::Other, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparqlog_parser::ast::GroupElement;
    use sparqlog_parser::parse_query;

    #[test]
    fn wire_codes_round_trip_every_type() {
        for (index, ty) in PathExpressionType::ALL.iter().enumerate() {
            assert_eq!(usize::from(ty.code()), index, "{ty:?}");
            assert_eq!(PathExpressionType::from_code(ty.code()), Some(*ty));
        }
        assert_eq!(
            PathExpressionType::from_code(PathExpressionType::ALL.len() as u8),
            None
        );
        assert_eq!(PathExpressionType::from_code(u8::MAX), None);
    }

    /// Parses the path expression out of `ASK { ?s <path> ?o }`.
    fn path_of(expr: &str) -> PropertyPath {
        let q = parse_query(&format!("ASK {{ ?s {expr} ?o }}")).unwrap();
        let body = q.where_clause.unwrap();
        let GroupElement::Triples(ts) = &body.elements[0] else {
            panic!("triples")
        };
        match &ts[0] {
            sparqlog_parser::ast::TripleOrPath::Path(p) => p.path.clone(),
            sparqlog_parser::ast::TripleOrPath::Triple(t) => {
                let sparqlog_parser::ast::Term::Iri(i) = &t.predicate else {
                    panic!()
                };
                PropertyPath::Iri(i.clone())
            }
        }
    }

    fn classify(expr: &str) -> PathClassification {
        classify_path(&path_of(expr))
    }

    #[test]
    fn classifies_pre_table_forms() {
        assert_eq!(classify("!<a>").ty, PathExpressionType::NegatedLiteral);
        assert_eq!(classify("^<a>").ty, PathExpressionType::InverseLiteral);
        assert_eq!(classify("<a>").ty, PathExpressionType::Trivial);
    }

    #[test]
    fn classifies_table5_rows() {
        use PathExpressionType as T;
        let cases: Vec<(&str, T, Option<usize>)> = vec![
            ("(<a>|<b>|<c>)*", T::StarOverAlternation, Some(3)),
            ("<a>*", T::StarLiteral, None),
            ("<a>/<b>/<c>", T::SequenceOfLiterals, Some(3)),
            ("<a>*/<b>", T::StarThenLiteral, None),
            ("<b>/<a>*", T::StarThenLiteral, None),
            ("<a>|<b>|<c>|<d>", T::AlternationOfLiterals, Some(4)),
            ("<a>+", T::PlusLiteral, None),
            ("<a>?/<b>?/<c>?", T::SequenceOfOptionals, Some(3)),
            ("<a>/(<b>|<c>)", T::LiteralThenAlternation, Some(2)),
            ("<a>/<b>?/<c>?", T::LiteralThenOptionals, Some(3)),
            ("(<a>/<b>*)|<c>", T::SeqStarOrLiteral, None),
            ("<a>*/<b>?", T::StarThenOptional, None),
            ("<a>/<b>/<c>*", T::TwoLiteralsThenStar, None),
            ("!(<a>|<b>)", T::NegatedAlternation, Some(2)),
            ("(<a>|<b>)+", T::PlusOverAlternation, Some(2)),
            ("(<a>|<b>)/(<a>|<b>)", T::SequenceOfAlternations, Some(2)),
            ("<a>?|<b>", T::OptionalOrLiteral, None),
            ("<a>*|<b>", T::StarOrLiteral, None),
            ("(<a>|<b>)?", T::OptionalOverAlternation, Some(2)),
            ("<a>|<b>+", T::LiteralOrPlus, None),
            ("<a>+|<b>+", T::PlusOrPlus, None),
            ("(<a>/<b>)*", T::StarOverSequence, Some(2)),
        ];
        for (expr, ty, k) in cases {
            let c = classify(expr);
            assert_eq!(c.ty, ty, "expression {expr}");
            assert_eq!(c.k, k, "k of {expr}");
        }
    }

    #[test]
    fn wikidata_instance_of_subclass_path() {
        // wdt:P31/wdt:P279* — the pattern from the paper's example query.
        let c = classify(
            "<http://www.wikidata.org/prop/direct/P31>/<http://www.wikidata.org/prop/direct/P279>*",
        );
        assert_eq!(c.ty, PathExpressionType::StarThenLiteral);
        assert!(!c.uses_inverse);
    }

    #[test]
    fn inverse_steps_count_as_literals_in_larger_expressions() {
        let c = classify("^<a>/<b>");
        assert_eq!(c.ty, PathExpressionType::SequenceOfLiterals);
        assert_eq!(c.k, Some(2));
        assert!(c.uses_inverse);
    }

    #[test]
    fn negated_single_step_in_sequence_counts_as_literal() {
        let c = classify("!<a>/<b>");
        assert_eq!(c.ty, PathExpressionType::SequenceOfLiterals);
    }

    #[test]
    fn unusual_expressions_fall_into_other() {
        assert_eq!(classify("(<a>*/<b>*)").ty, PathExpressionType::Other);
        assert_eq!(classify("((<a>/<b>)|<c>)*").ty, PathExpressionType::Other);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(
            PathExpressionType::StarOverAlternation.label(),
            "(a1|...|ak)*"
        );
        assert_eq!(PathExpressionType::StarOverSequence.label(), "(a/b)*");
        assert!(PathExpressionType::InverseLiteral.is_pre_table());
        assert!(!PathExpressionType::StarLiteral.is_pre_table());
    }
}
