//! Tractability of property paths under simple-path semantics (Section 7).
//!
//! Bagan, Bonifati and Groz (PODS 2013) proved a trichotomy for evaluating
//! regular path queries under *simple path* semantics: evaluation is
//! NP-complete in general but polynomial for the class C_tract. The paper
//! reports that every property path in the corpus except a single `(a/b)*`
//! expression falls into C_tract.
//!
//! We implement a *sufficient* syntactic criterion that covers every
//! expression type occurring in the corpus (Table 5): a path is accepted as
//! tractable when every transitive closure (`*` or `+`) is applied to a
//! single step or to an alternation of single steps. Closures over sequences
//! (such as `(a/b)*`) — the canonical hard case of the trichotomy — are
//! rejected. Expressions rejected by this criterion are *potentially*
//! intractable; for the expression shapes found in query logs the criterion
//! coincides with C_tract membership.

use crate::classify::{classify_path, PathExpressionType};
use sparqlog_parser::ast::PropertyPath;

/// Whether a property path is (syntactically recognised as) in C_tract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tractability {
    /// Recognised as tractable under simple-path semantics.
    Tractable,
    /// Not recognised as tractable (e.g. `(a/b)*`); evaluation under
    /// simple-path semantics may be NP-hard.
    PotentiallyHard,
}

/// Tests membership in (the syntactic fragment of) C_tract.
pub fn tractability(p: &PropertyPath) -> Tractability {
    if closures_only_over_letter_sets(p) {
        Tractability::Tractable
    } else {
        Tractability::PotentiallyHard
    }
}

/// Convenience: classify and test in one call, returning `(type, tractable)`.
pub fn classify_and_check(p: &PropertyPath) -> (PathExpressionType, Tractability) {
    (classify_path(p).ty, tractability(p))
}

/// True when every `*` / `+` in the expression is applied to a single step or
/// an alternation of single steps.
fn closures_only_over_letter_sets(p: &PropertyPath) -> bool {
    match p {
        PropertyPath::Iri(_) | PropertyPath::NegatedPropertySet(_) => true,
        PropertyPath::Inverse(inner) => closures_only_over_letter_sets(inner),
        PropertyPath::Sequence(a, b) | PropertyPath::Alternative(a, b) => {
            closures_only_over_letter_sets(a) && closures_only_over_letter_sets(b)
        }
        PropertyPath::ZeroOrOne(inner) => closures_only_over_letter_sets(inner),
        PropertyPath::ZeroOrMore(inner) | PropertyPath::OneOrMore(inner) => is_letter_set(inner),
    }
}

/// A "letter set": a single step, an inverse step, a negated set, or an
/// alternation of letter sets.
fn is_letter_set(p: &PropertyPath) -> bool {
    match p {
        PropertyPath::Iri(_) | PropertyPath::NegatedPropertySet(_) => true,
        PropertyPath::Inverse(inner) => is_letter_set(inner),
        PropertyPath::Alternative(a, b) => is_letter_set(a) && is_letter_set(b),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparqlog_parser::ast::{GroupElement, TripleOrPath};
    use sparqlog_parser::parse_query;

    fn path_of(expr: &str) -> PropertyPath {
        let q = parse_query(&format!("ASK {{ ?s {expr} ?o }}")).unwrap();
        let body = q.where_clause.unwrap();
        let GroupElement::Triples(ts) = &body.elements[0] else {
            panic!()
        };
        match &ts[0] {
            TripleOrPath::Path(p) => p.path.clone(),
            TripleOrPath::Triple(_) => panic!("expected a non-trivial path"),
        }
    }

    #[test]
    fn table5_expressions_are_tractable() {
        for expr in [
            "(<a>|<b>)*",
            "<a>*",
            "<a>/<b>/<c>",
            "<a>*/<b>",
            "<a>|<b>",
            "<a>+",
            "<a>?/<b>?",
            "<a>/(<b>|<c>)",
            "(<a>/<b>*)|<c>",
            "<a>*/<b>?",
            "<a>/<b>/<c>*",
            "!(<a>|<b>)",
            "(<a>|<b>)+",
            "(<a>|<b>)/(<a>|<b>)",
            "<a>?|<b>",
            "<a>*|<b>",
            "(<a>|<b>)?",
            "<a>|<b>+",
            "<a>+|<b>+",
        ] {
            assert_eq!(
                tractability(&path_of(expr)),
                Tractability::Tractable,
                "{expr}"
            );
        }
    }

    #[test]
    fn star_over_sequence_is_hard() {
        assert_eq!(
            tractability(&path_of("(<a>/<b>)*")),
            Tractability::PotentiallyHard
        );
        assert_eq!(
            tractability(&path_of("(<a>/<b>)+")),
            Tractability::PotentiallyHard
        );
    }

    #[test]
    fn nested_hard_closure_is_detected() {
        assert_eq!(
            tractability(&path_of("<c>/((<a>/<b>)*)")),
            Tractability::PotentiallyHard
        );
    }

    #[test]
    fn inverse_inside_closure_is_fine() {
        assert_eq!(
            tractability(&path_of("(^<a>|<b>)*")),
            Tractability::Tractable
        );
    }

    #[test]
    fn classify_and_check_combines_both() {
        let (ty, tr) = classify_and_check(&path_of("(<a>/<b>)*"));
        assert_eq!(ty, PathExpressionType::StarOverSequence);
        assert_eq!(tr, Tractability::PotentiallyHard);
    }
}
