//! Query normalization before similarity measurement.
//!
//! The paper removes namespace prefixes prior to measuring Levenshtein
//! distance "because they introduce superficial similarity", requiring
//! queries to be at least 75 % identical *starting from the first occurrence
//! of the keywords Select, Ask, Construct, or Describe*.

/// Strips everything before the first query-form keyword (SELECT / ASK /
/// CONSTRUCT / DESCRIBE, case-insensitive). If no keyword is found the input
/// is returned unchanged.
pub fn strip_prologue(query: &str) -> &str {
    let lower = query.to_ascii_lowercase();
    let mut best: Option<usize> = None;
    for kw in ["select", "ask", "construct", "describe"] {
        if let Some(pos) = find_keyword(&lower, kw) {
            best = Some(best.map_or(pos, |b: usize| b.min(pos)));
        }
    }
    match best {
        Some(pos) => &query[pos..],
        None => query,
    }
}

/// Finds a keyword at a word boundary (so that e.g. an IRI containing
/// "describe" inside a PREFIX declaration does not match).
fn find_keyword(haystack_lower: &str, keyword: &str) -> Option<usize> {
    let bytes = haystack_lower.as_bytes();
    let mut start = 0;
    while let Some(pos) = haystack_lower[start..].find(keyword) {
        let abs = start + pos;
        let before_ok = abs == 0 || !bytes[abs - 1].is_ascii_alphanumeric();
        let after = abs + keyword.len();
        let after_ok = after >= bytes.len() || !bytes[after].is_ascii_alphanumeric();
        if before_ok && after_ok {
            return Some(abs);
        }
        start = abs + keyword.len();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_prefix_declarations() {
        let q = "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\nSELECT ?x WHERE { ?x foaf:name ?n }";
        assert!(strip_prologue(q).starts_with("SELECT"));
    }

    #[test]
    fn keeps_queries_without_prologue() {
        let q = "ASK { ?x a <C> }";
        assert_eq!(strip_prologue(q), q);
    }

    #[test]
    fn is_case_insensitive() {
        let q = "prefix : <http://e/> select ?x where { ?x :p ?y }";
        assert!(strip_prologue(q).starts_with("select"));
    }

    #[test]
    fn ignores_keywords_inside_iris() {
        let q = "PREFIX d: <http://example.org/describes/> SELECT ?x WHERE { ?x d:p ?y }";
        assert!(strip_prologue(q).starts_with("SELECT"));
    }

    #[test]
    fn picks_the_earliest_form_keyword() {
        let q = "BASE <http://b/> DESCRIBE ?x";
        assert!(strip_prologue(q).starts_with("DESCRIBE"));
    }

    #[test]
    fn no_keyword_returns_input() {
        let q = "this is not a query";
        assert_eq!(strip_prologue(q), q);
    }
}
