//! Windowed streak detection (Section 8, Table 6).

use crate::levenshtein::similar_within;
use crate::normalize::strip_prologue;
use serde::{Deserialize, Serialize};

/// Configuration of the streak detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreakConfig {
    /// Window size `w`: the next member of a streak must appear within this
    /// many positions of the previous member (30 in the paper).
    pub window: usize,
    /// Similarity threshold on the normalized Levenshtein distance
    /// (0.25 in the paper: queries must be at least 75 % identical).
    pub threshold: f64,
}

impl Default for StreakConfig {
    fn default() -> Self {
        StreakConfig {
            window: 30,
            threshold: 0.25,
        }
    }
}

/// A detected streak: the (0-based) log positions of its member queries, in
/// order. A streak has at least two members (a seed and one refinement).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Streak {
    /// Positions of the member queries in the log.
    pub members: Vec<usize>,
}

impl Streak {
    /// The streak length (number of member queries).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the streak has no members (never produced by the detector).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Detects streaks in an ordered query log.
///
/// Queries are first normalized with [`strip_prologue`] (prefix removal).
/// Query `q_j` *matches* `q_i` (i < j) when they are similar and no query
/// strictly between them is similar to `q_i`; a streak chains matches whose
/// gaps are at most `config.window`. A query may belong to multiple streaks,
/// exactly as the paper allows.
pub fn detect_streaks(log: &[String], config: StreakConfig) -> Vec<Streak> {
    let normalized: Vec<&str> = log.iter().map(|q| strip_prologue(q)).collect();
    let n = normalized.len();
    // Active streaks, keyed by the index of their last member.
    let mut streaks: Vec<Streak> = Vec::new();
    // For every position, whether it is already the last member of a streak.
    let mut extended_from: Vec<Vec<usize>> = vec![Vec::new(); n]; // position -> streak ids ending there

    for j in 0..n {
        let window_start = j.saturating_sub(config.window);
        for i in (window_start..j).rev() {
            if !similar_within(normalized[i], normalized[j], config.threshold) {
                continue;
            }
            // Matching requires that no query strictly between i and j is
            // similar to q_i.
            let mut blocked = false;
            for k in i + 1..j {
                if similar_within(normalized[i], normalized[k], config.threshold) {
                    blocked = true;
                    break;
                }
            }
            if blocked {
                continue;
            }
            // q_j matches q_i: extend every streak ending at i, or start a new
            // streak [i, j].
            let ending_here: Vec<usize> = extended_from[i].clone();
            if ending_here.is_empty() {
                let id = streaks.len();
                streaks.push(Streak {
                    members: vec![i, j],
                });
                extended_from[j].push(id);
            } else {
                for id in ending_here {
                    streaks[id].members.push(j);
                    extended_from[j].push(id);
                }
            }
        }
    }
    streaks
}

/// The streak-length histogram of Table 6: counts per length decade
/// (1–10, 11–20, …, 91–100, >100).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreakHistogram {
    /// Bucket counts: index 0 is length 1–10, index 9 is 91–100.
    pub decades: [u64; 10],
    /// Streaks longer than 100.
    pub over_100: u64,
    /// Total number of streaks.
    pub total: u64,
    /// Length of the longest streak.
    pub longest: usize,
}

impl StreakHistogram {
    /// Builds the histogram from detected streaks.
    pub fn from_streaks(streaks: &[Streak]) -> StreakHistogram {
        let mut h = StreakHistogram::default();
        for s in streaks {
            h.total += 1;
            h.longest = h.longest.max(s.len());
            let len = s.len();
            if len > 100 {
                h.over_100 += 1;
            } else {
                let bucket = (len.saturating_sub(1)) / 10;
                h.decades[bucket.min(9)] += 1;
            }
        }
        h
    }

    /// The Table-6 rows as `(label, count)`.
    pub fn rows(&self) -> Vec<(String, u64)> {
        let mut rows: Vec<(String, u64)> = (0..10)
            .map(|i| (format!("{}–{}", i * 10 + 1, (i + 1) * 10), self.decades[i]))
            .collect();
        rows.push((">100".to_string(), self.over_100));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(s: &str) -> String {
        s.to_string()
    }

    #[test]
    fn detects_a_simple_refinement_streak() {
        let log = vec![
            q("SELECT ?x WHERE { ?x a <http://dbpedia.org/ontology/Film> }"),
            q("ASK { <s> <p> <o> }"),
            q("SELECT ?x WHERE { ?x a <http://dbpedia.org/ontology/Film> } LIMIT 10"),
            q("SELECT ?x WHERE { ?x a <http://dbpedia.org/ontology/Film> } LIMIT 20"),
        ];
        let streaks = detect_streaks(&log, StreakConfig::default());
        assert_eq!(streaks.len(), 1);
        assert_eq!(streaks[0].members, vec![0, 2, 3]);
    }

    #[test]
    fn window_limits_streak_continuation() {
        let mut log = vec![q("SELECT ?x WHERE { ?x a <http://example.org/Class> }")];
        // 5 unrelated (and mutually dissimilar) queries, then a query similar
        // to the seed — with window 3 the gap is too large to match the seed.
        log.push(q(
            "ASK { <http://a.example/zzz> <http://p1> \"completely different literal one\" }",
        ));
        log.push(q(
            "CONSTRUCT { ?s ?p ?o } WHERE { ?s ?p ?o . ?o <http://q> ?r }",
        ));
        log.push(q("DESCRIBE <http://resource.example/described-thing-42>"));
        log.push(q("ASK { ?x <http://totally.other/pred> ?y . ?y <http://totally.other/p2> ?z . FILTER(?z > 100) }"));
        log.push(q("SELECT (COUNT(*) AS ?c) WHERE { GRAPH ?g { ?a ?b ?c } } GROUP BY ?g HAVING (COUNT(*) > 5)"));
        let seed_and_late = log.len();
        log.push(q(
            "SELECT ?x WHERE { ?x a <http://example.org/Class> } LIMIT 5",
        ));
        let narrow = detect_streaks(
            &log,
            StreakConfig {
                window: 3,
                threshold: 0.25,
            },
        );
        assert!(narrow.iter().all(|s| !s.members.contains(&seed_and_late)));
        let wide = detect_streaks(
            &log,
            StreakConfig {
                window: 30,
                threshold: 0.25,
            },
        );
        assert!(wide.iter().any(|s| s.members == vec![0, seed_and_late]));
    }

    #[test]
    fn dissimilar_queries_do_not_form_streaks() {
        let log = vec![
            q("SELECT ?x WHERE { ?x a <http://A> }"),
            q("CONSTRUCT { ?s ?p ?o } WHERE { ?s ?p ?o . ?o ?q ?r . FILTER(?r > 10) }"),
            q("DESCRIBE <http://resource/42>"),
        ];
        assert!(detect_streaks(&log, StreakConfig::default()).is_empty());
    }

    #[test]
    fn prefix_differences_do_not_break_similarity() {
        let log = vec![
            q("PREFIX dbo: <http://dbpedia.org/ontology/> SELECT ?x WHERE { ?x a <http://dbpedia.org/ontology/City> }"),
            q("PREFIX dbpedia-owl: <http://dbpedia.org/ontology/> PREFIX foaf: <http://xmlns.com/foaf/0.1/> SELECT ?x WHERE { ?x a <http://dbpedia.org/ontology/City> }"),
        ];
        let streaks = detect_streaks(&log, StreakConfig::default());
        assert_eq!(streaks.len(), 1);
    }

    #[test]
    fn intermediate_similar_query_consumes_the_match() {
        // q2 is similar to q0, so q3 cannot match q0 directly (condition (2)),
        // but it matches q2 — the three queries still chain into one streak.
        let log = vec![
            q("SELECT ?x WHERE { ?x a <http://example.org/Album> }"),
            q("SELECT ?x WHERE { ?x a <http://example.org/Album> } LIMIT 1"),
            q("SELECT ?x WHERE { ?x a <http://example.org/Album> } LIMIT 12"),
        ];
        let streaks = detect_streaks(&log, StreakConfig::default());
        assert_eq!(streaks.len(), 1);
        assert_eq!(streaks[0].members, vec![0, 1, 2]);
    }

    #[test]
    fn a_query_can_seed_multiple_streaks() {
        // q0 and q1 are not similar to each other, but q2 is similar to both:
        // it extends a streak from q0 and one from q1 (the paper's example of
        // a query belonging to multiple streaks).
        let log = vec![
            q("SELECT ?film WHERE { ?film a <http://dbpedia.org/ontology/Film> . ?film <http://dbpedia.org/ontology/director> ?d }"),
            q("SELECT ?film ?star WHERE { ?film a <http://dbpedia.org/ontology/Film> . ?film <http://dbpedia.org/ontology/starring> ?star . ?star <http://dbpedia.org/ontology/birthPlace> ?p }"),
            q("SELECT ?film ?x WHERE { ?film a <http://dbpedia.org/ontology/Film> . ?film <http://dbpedia.org/ontology/starring> ?x . ?film <http://dbpedia.org/ontology/director> ?d }"),
        ];
        let config = StreakConfig {
            window: 30,
            threshold: 0.45,
        };
        let streaks = detect_streaks(&log, config);
        // Depending on exact distances q2 may match one or both seeds; it must
        // match at least one and every streak must contain q2.
        assert!(!streaks.is_empty());
        assert!(streaks.iter().all(|s| s.members.contains(&2)));
    }

    #[test]
    fn histogram_buckets_lengths_by_decade() {
        let streaks = vec![
            Streak {
                members: (0..2).collect(),
            },
            Streak {
                members: (0..10).collect(),
            },
            Streak {
                members: (0..11).collect(),
            },
            Streak {
                members: (0..150).collect(),
            },
        ];
        let h = StreakHistogram::from_streaks(&streaks);
        assert_eq!(h.total, 4);
        assert_eq!(h.decades[0], 2);
        assert_eq!(h.decades[1], 1);
        assert_eq!(h.over_100, 1);
        assert_eq!(h.longest, 150);
        let rows = h.rows();
        assert_eq!(rows.len(), 11);
        assert_eq!(rows[0].1, 2);
    }
}
