//! # sparqlog-streaks
//!
//! Detection of *streaks* — sequences of similar queries that appear as
//! gradual refinements of a seed query — in SPARQL query logs, implementing
//! Section 8 of *"An Analytical Study of Large SPARQL Query Logs"*
//! (Bonifati–Martens–Timm, VLDB 2017).
//!
//! Two queries are *similar* when their normalized Levenshtein distance,
//! after removing namespace prefixes, is at most a threshold (25 % in the
//! paper). Queries `qi` and `qj` (i < j) *match* when they are similar and no
//! intermediate query is similar to `qi`. A *streak* with window size `w` is
//! a maximal sequence of queries in which each next member matches the
//! previous one within `w` positions (Table 6 reports the streak-length
//! histogram for three single-day DBpedia logs, with `w = 30`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod detect;
pub mod levenshtein;
pub mod normalize;

pub use detect::{detect_streaks, Streak, StreakConfig, StreakHistogram};
pub use levenshtein::{levenshtein, normalized_levenshtein, similar_within};
pub use normalize::strip_prologue;
