//! Levenshtein edit distance with the normalization used in the paper.

/// Computes the Levenshtein (edit) distance between two strings, operating on
/// Unicode scalar values. Uses the standard two-row dynamic program.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The normalized Levenshtein distance: the edit distance divided by the
/// length (in characters) of the longer string. Two empty strings have
/// distance 0.
pub fn normalized_levenshtein(a: &str, b: &str) -> f64 {
    let longer = a.chars().count().max(b.chars().count());
    if longer == 0 {
        return 0.0;
    }
    levenshtein(a, b) as f64 / longer as f64
}

/// True if the normalized Levenshtein distance is at most `threshold`.
///
/// A cheap length-difference lower bound short-circuits most non-similar
/// pairs before running the quadratic dynamic program, which matters because
/// streak detection compares each query against a window of predecessors.
pub fn similar_within(a: &str, b: &str, threshold: f64) -> bool {
    let la = a.chars().count();
    let lb = b.chars().count();
    let longer = la.max(lb);
    if longer == 0 {
        return true;
    }
    // |la - lb| is a lower bound on the edit distance.
    if (la.abs_diff(lb)) as f64 / longer as f64 > threshold {
        return false;
    }
    normalized_levenshtein(a, b) <= threshold
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn distance_is_symmetric() {
        assert_eq!(
            levenshtein("abcdef", "azced"),
            levenshtein("azced", "abcdef")
        );
    }

    #[test]
    fn unicode_is_handled_per_character() {
        assert_eq!(levenshtein("über", "uber"), 1);
        assert_eq!(levenshtein("héllo", "hello"), 1);
    }

    #[test]
    fn normalization_divides_by_longer_length() {
        assert!((normalized_levenshtein("kitten", "sitting") - 3.0 / 7.0).abs() < 1e-9);
        assert_eq!(normalized_levenshtein("", ""), 0.0);
        assert_eq!(normalized_levenshtein("abcd", ""), 1.0);
    }

    #[test]
    fn similarity_threshold() {
        // 25% threshold as in the paper.
        assert!(similar_within(
            "SELECT ?x WHERE { ?x a <C> }",
            "SELECT ?y WHERE { ?y a <C> }",
            0.25
        ));
        assert!(!similar_within(
            "SELECT ?x WHERE { ?x a <C> }",
            "ASK { <s> <p> <o> }",
            0.25
        ));
    }

    #[test]
    fn length_prefilter_agrees_with_exact_test() {
        let cases = [
            (
                "SELECT ?x WHERE { ?x a <C> }",
                "SELECT ?x WHERE { ?x a <C> } LIMIT 10",
            ),
            ("abc", "abcdefghijklmnop"),
            ("", "x"),
        ];
        for (a, b) in cases {
            let expected = normalized_levenshtein(a, b) <= 0.25;
            assert_eq!(similar_within(a, b, 0.25), expected, "{a:?} vs {b:?}");
        }
    }
}
