//! The structured event log: one line per supervision event, stamped with
//! milliseconds since server start, kept in memory for the `Events` request
//! and optionally mirrored to a file (the CI fault jobs upload it as an
//! artifact).
//!
//! Lines are `key=value` pairs, e.g.:
//!
//! ```text
//! t=12 event=worker-start job=1 partition=0 attempt=0 pid=4711
//! t=340 event=worker-death job=1 partition=0 attempt=0 error="shard 0: worker exited with status 3"
//! t=395 event=partition-recovered job=1 partition=0 latency_ms=55
//! ```

use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

/// An append-only, timestamp-stamped event log shared across the server's
/// threads.
#[derive(Debug)]
pub struct EventLog {
    start: Instant,
    lines: Mutex<Vec<String>>,
    sink: Option<Mutex<File>>,
}

impl EventLog {
    /// An in-memory event log starting now.
    pub fn new() -> EventLog {
        EventLog {
            start: Instant::now(),
            lines: Mutex::new(Vec::new()),
            sink: None,
        }
    }

    /// An event log that also appends every line to `path` (created or
    /// truncated), flushing per line so a crashed server leaves a usable
    /// artifact.
    pub fn with_file(path: &Path) -> std::io::Result<EventLog> {
        let file = File::create(path)?;
        Ok(EventLog {
            start: Instant::now(),
            lines: Mutex::new(Vec::new()),
            sink: Some(Mutex::new(file)),
        })
    }

    /// Appends one event line (without the timestamp prefix — it is added
    /// here).
    pub fn emit(&self, line: impl AsRef<str>) {
        let stamped = format!(
            "t={} {}",
            self.start.elapsed().as_millis(),
            line.as_ref().trim_end()
        );
        if let Some(sink) = &self.sink {
            if let Ok(mut file) = sink.lock() {
                let _ = writeln!(file, "{stamped}");
                let _ = file.flush();
            }
        }
        self.lines.lock().expect("event log lock").push(stamped);
    }

    /// All lines emitted so far, oldest first.
    pub fn snapshot(&self) -> Vec<String> {
        self.lines.lock().expect("event log lock").clone()
    }

    /// The lines mentioning job `job` (matched on the ` job=<id>` token, so
    /// job 1 does not match job 11).
    pub fn for_job(&self, job: u64) -> Vec<String> {
        let needle = format!(" job={job}");
        self.lines
            .lock()
            .expect("event log lock")
            .iter()
            .filter(|line| {
                line.split_whitespace()
                    .any(|token| token == needle.trim_start())
            })
            .cloned()
            .collect()
    }
}

impl Default for EventLog {
    fn default() -> EventLog {
        EventLog::new()
    }
}

/// Quotes a value for an event line: whitespace and quotes collapse so the
/// line stays one-line, token-splittable `key=value` text.
pub fn quoted(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for ch in value.chars() {
        match ch {
            '"' => out.push('\''),
            '\n' | '\r' | '\t' => out.push(' '),
            ch => out.push(ch),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_stamps_and_filters_by_job() {
        let log = EventLog::new();
        log.emit("event=worker-start job=1 partition=0");
        log.emit("event=worker-start job=11 partition=0");
        log.emit("event=job-complete job=1");
        let all = log.snapshot();
        assert_eq!(all.len(), 3);
        assert!(all.iter().all(|line| line.starts_with("t=")));
        let job1 = log.for_job(1);
        assert_eq!(job1.len(), 2, "{job1:?}");
        assert!(job1.iter().all(|line| line.contains(" job=1")));
        assert_eq!(log.for_job(11).len(), 1);
        assert_eq!(log.for_job(99).len(), 0);
    }

    #[test]
    fn file_sink_mirrors_lines() {
        let dir = std::env::temp_dir().join(format!("sparqlog-events-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.log");
        let log = EventLog::with_file(&path).unwrap();
        log.emit("event=drain");
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(contents.contains("event=drain"), "{contents}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quoted_flattens_disruptive_characters() {
        assert_eq!(quoted("plain"), "\"plain\"");
        assert_eq!(quoted("a \"b\"\nc"), "\"a 'b' c\"");
    }
}
