//! The structured event journal: one line per supervision event, stamped
//! with milliseconds since server start and a monotonic `seq=` correlation
//! id, kept in memory for the `Events` request and optionally mirrored to a
//! file (the CI fault jobs upload it as an artifact).
//!
//! Lines follow the stable [`EventRecord`] `key=value` schema, so consumers
//! parse them back into typed records instead of scraping text:
//!
//! ```text
//! t=12 seq=0 event=worker-start job=1 partition=0 attempt=0 pid=4711
//! t=340 seq=1 event=worker-death job=1 partition=0 attempt=0 error="shard 0: worker exited with status 3"
//! t=395 seq=2 event=partition-recovered job=1 partition=0 latency_ms=55
//! ```

use sparqlog_obs::EventRecord;
use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// An append-only, timestamp- and sequence-stamped event journal shared
/// across the server's threads.
#[derive(Debug)]
pub struct EventLog {
    start: Instant,
    seq: AtomicU64,
    lines: Mutex<Vec<String>>,
    sink: Option<Mutex<File>>,
}

impl EventLog {
    /// An in-memory event log starting now.
    pub fn new() -> EventLog {
        EventLog {
            start: Instant::now(),
            seq: AtomicU64::new(0),
            lines: Mutex::new(Vec::new()),
            sink: None,
        }
    }

    /// An event log that also appends every line to `path` (created or
    /// truncated), flushing per line so a crashed server leaves a usable
    /// artifact.
    pub fn with_file(path: &Path) -> std::io::Result<EventLog> {
        let file = File::create(path)?;
        Ok(EventLog {
            start: Instant::now(),
            seq: AtomicU64::new(0),
            lines: Mutex::new(Vec::new()),
            sink: Some(Mutex::new(file)),
        })
    }

    /// Appends one event line (without the timestamp/sequence prefix —
    /// both are stamped here). The line must already be `key=value`
    /// tokens; [`EventLog::emit_record`] builds that shape safely.
    pub fn emit(&self, line: impl AsRef<str>) {
        let stamped = format!(
            "t={} seq={} {}",
            self.start.elapsed().as_millis(),
            self.seq.fetch_add(1, Ordering::Relaxed),
            line.as_ref().trim_end()
        );
        if let Some(sink) = &self.sink {
            if let Ok(mut file) = sink.lock() {
                let _ = writeln!(file, "{stamped}");
                let _ = file.flush();
            }
        }
        self.lines.lock().expect("event log lock").push(stamped);
    }

    /// Appends one structured event, stamping `t=` and `seq=` ahead of its
    /// fields. The record's own quoting rules keep the line parseable.
    pub fn emit_record(&self, record: EventRecord) {
        self.emit(record.render());
    }

    /// All lines emitted so far, oldest first.
    pub fn snapshot(&self) -> Vec<String> {
        self.lines.lock().expect("event log lock").clone()
    }

    /// Every line parsed back into a typed [`EventRecord`], oldest first.
    /// Lines are emitted through the same schema, so parsing cannot fail
    /// in practice; a hand-emitted malformed line is skipped rather than
    /// poisoning the whole journal.
    pub fn records(&self) -> Vec<EventRecord> {
        self.lines
            .lock()
            .expect("event log lock")
            .iter()
            .filter_map(|line| EventRecord::parse(line).ok())
            .collect()
    }

    /// The typed records whose `job=` field equals `job`.
    pub fn records_for_job(&self, job: u64) -> Vec<EventRecord> {
        self.records()
            .into_iter()
            .filter(|record| record.u64("job") == Some(job))
            .collect()
    }

    /// The lines mentioning job `job` (matched on the ` job=<id>` token, so
    /// job 1 does not match job 11).
    pub fn for_job(&self, job: u64) -> Vec<String> {
        let needle = format!(" job={job}");
        self.lines
            .lock()
            .expect("event log lock")
            .iter()
            .filter(|line| {
                line.split_whitespace()
                    .any(|token| token == needle.trim_start())
            })
            .cloned()
            .collect()
    }
}

impl Default for EventLog {
    fn default() -> EventLog {
        EventLog::new()
    }
}

/// Quotes a value for an event line: whitespace and quotes collapse so the
/// line stays one-line, token-splittable `key=value` text.
pub fn quoted(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for ch in value.chars() {
        match ch {
            '"' => out.push('\''),
            '\n' | '\r' | '\t' => out.push(' '),
            ch => out.push(ch),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_stamps_and_filters_by_job() {
        let log = EventLog::new();
        log.emit("event=worker-start job=1 partition=0");
        log.emit("event=worker-start job=11 partition=0");
        log.emit("event=job-complete job=1");
        let all = log.snapshot();
        assert_eq!(all.len(), 3);
        assert!(all.iter().all(|line| line.starts_with("t=")));
        let job1 = log.for_job(1);
        assert_eq!(job1.len(), 2, "{job1:?}");
        assert!(job1.iter().all(|line| line.contains(" job=1")));
        assert_eq!(log.for_job(11).len(), 1);
        assert_eq!(log.for_job(99).len(), 0);
    }

    #[test]
    fn file_sink_mirrors_lines() {
        let dir = std::env::temp_dir().join(format!("sparqlog-events-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.log");
        let log = EventLog::with_file(&path).unwrap();
        log.emit("event=drain");
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(contents.contains("event=drain"), "{contents}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quoted_flattens_disruptive_characters() {
        assert_eq!(quoted("plain"), "\"plain\"");
        assert_eq!(quoted("a \"b\"\nc"), "\"a 'b' c\"");
    }

    #[test]
    fn records_parse_back_with_correlation_ids() {
        let log = EventLog::new();
        log.emit_record(
            EventRecord::new("worker-start")
                .with("job", 1u64)
                .with("partition", 0u64)
                .with("pid", 4711u64),
        );
        log.emit_record(
            EventRecord::new("worker-death")
                .with("job", 2u64)
                .with("error", "exited with status 3"),
        );
        let records = log.records();
        assert_eq!(records.len(), 2);
        // seq= is monotonic from zero; t= is always stamped.
        assert_eq!(records[0].seq(), Some(0));
        assert_eq!(records[1].seq(), Some(1));
        assert!(records.iter().all(|r| r.timestamp_ms().is_some()));
        assert_eq!(records[0].event(), "worker-start");
        assert_eq!(records[0].u64("pid"), Some(4711));
        assert_eq!(
            records[1].get("error"),
            Some("exited with status 3"),
            "quoted values survive the journal round trip"
        );
        let job2 = log.records_for_job(2);
        assert_eq!(job2.len(), 1);
        assert_eq!(job2[0].event(), "worker-death");
    }
}
