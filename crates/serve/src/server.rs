//! The analysis daemon: a TCP or Unix-socket listener accepting concurrent
//! client sessions, each a length-prefixed request/response stream
//! ([`crate::protocol`]). Submitted jobs fan out through the
//! [`Supervisor`]'s worker pool; every
//! session answers from the same merged [`Jobs`] state, so two clients
//! asking for the same complete job get byte-identical reports.
//!
//! # Threading model
//!
//! No async runtime: one accept loop (nonblocking, polling the drain/stop
//! flags and [`crate::signal`] every ~20 ms), two std threads per session
//! (a reader that decodes requests and a writer fed by a **bounded**
//! outbox channel), and the supervisor's fixed runner pool. A slow
//! consumer fills its own outbox and then — per
//! [`SlowConsumerPolicy`] — either blocks only its own reader thread
//! (other sessions unaffected) or is shed: the connection closes and an
//! `outbox-shed` event is logged.
//!
//! # Shutdown
//!
//! A `Drain` request (or [`ServerHandle::drain`]) only flips the draining
//! flag: new `Submit`s are rejected, everything else keeps serving.
//! [`ServerHandle::stop`] or SIGTERM/SIGINT additionally stops the accept
//! loop, waits for in-flight jobs to settle, closes every session, and
//! returns from [`Server::run`].

use crate::events::{quoted, EventLog};
use crate::job::Jobs;
use crate::protocol::{self, Request, Response};
use crate::signal;
use crate::supervisor::{Supervisor, SupervisorConfig};
use sparqlog_core::cache::CacheStats;
use sparqlog_obs::{self as obs, EventRecord};
use sparqlog_persist::SnapshotStore;
use sparqlog_shard::codec::FrameReader;
use sparqlog_shard::{LogSpec, WorkerCommand};
use std::io::{self, BufWriter, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// What to do with a session whose outbox is full (the client is not
/// reading responses fast enough).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlowConsumerPolicy {
    /// Block that session's reader thread until the writer catches up.
    /// Only the slow session stalls; others keep serving.
    Block,
    /// Shed the session: log an `outbox-shed` event and close the
    /// connection.
    Shed,
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// How to launch `sparqlog-shard-worker` processes.
    pub worker: WorkerCommand,
    /// Concurrent worker processes (0 = available parallelism).
    pub worker_slots: usize,
    /// `--workers` analysis threads per worker process (0 = worker default).
    pub worker_threads: usize,
    /// Worker heartbeat period (liveness frames on the snapshot pipe).
    pub heartbeat: Duration,
    /// Kill a worker whose pipe is silent this long (None = EOF-only
    /// death detection).
    pub stall_timeout: Option<Duration>,
    /// Restarts allowed per partition before its job fails.
    pub max_restarts: u32,
    /// First restart backoff (doubles per attempt).
    pub restart_backoff: Duration,
    /// Restart backoff ceiling.
    pub backoff_cap: Duration,
    /// Bounded per-session outbox capacity, in response frames.
    pub outbox_frames: usize,
    /// What to do when a session's outbox fills.
    pub slow_policy: SlowConsumerPolicy,
    /// Artificial delay before each response write (test knob for
    /// exercising the outbox backpressure path; zero in production).
    pub writer_pause: Duration,
    /// How long a graceful stop waits for in-flight jobs to settle.
    pub drain_timeout: Duration,
    /// Mirror the event log to this file (the CI fault jobs upload it).
    pub event_log_path: Option<PathBuf>,
    /// Persist completed jobs to a crash-safe snapshot store at this path
    /// ([`sparqlog_persist::SnapshotStore`]): settled jobs warm-start
    /// after a restart, and resubmitted logs merge from the store without
    /// spawning workers.
    pub store_path: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            worker: WorkerCommand::new("sparqlog-shard-worker"),
            worker_slots: 0,
            worker_threads: 0,
            heartbeat: Duration::from_millis(200),
            stall_timeout: None,
            max_restarts: 5,
            restart_backoff: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            outbox_frames: 64,
            slow_policy: SlowConsumerPolicy::Block,
            writer_pause: Duration::ZERO,
            drain_timeout: Duration::from_secs(60),
            event_log_path: None,
            store_path: None,
        }
    }
}

/// Where the daemon listens (or a client connects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeAddr {
    /// A TCP address, e.g. `127.0.0.1:7878` (`127.0.0.1:0` binds an
    /// ephemeral port — read it back with [`Server::local_addr`]).
    Tcp(String),
    /// A Unix-domain socket path (unix targets only).
    Unix(PathBuf),
}

/// One duplex client connection, abstracted over TCP and Unix sockets.
trait SessionStream: Read + Write + Send {
    /// A second handle onto the same socket (for the writer thread).
    fn split(&self) -> io::Result<Box<dyn SessionStream>>;
    /// Sets the socket read timeout.
    fn set_stream_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()>;
    /// Shuts the socket down in both directions, unblocking any peer
    /// thread stuck in a read or write.
    fn close(&self) -> io::Result<()>;
}

impl SessionStream for TcpStream {
    fn split(&self) -> io::Result<Box<dyn SessionStream>> {
        Ok(Box::new(self.try_clone()?))
    }

    fn set_stream_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(timeout)
    }

    fn close(&self) -> io::Result<()> {
        self.shutdown(Shutdown::Both)
    }
}

#[cfg(unix)]
impl SessionStream for std::os::unix::net::UnixStream {
    fn split(&self) -> io::Result<Box<dyn SessionStream>> {
        Ok(Box::new(self.try_clone()?))
    }

    fn set_stream_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(timeout)
    }

    fn close(&self) -> io::Result<()> {
        self.shutdown(Shutdown::Both)
    }
}

/// The bound listener, abstracted over address families.
#[derive(Debug)]
enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixListener, PathBuf),
}

impl Listener {
    /// Accepts one pending connection, or `None` if none is waiting
    /// (the listener is nonblocking).
    fn accept(&self) -> io::Result<Option<Box<dyn SessionStream>>> {
        match self {
            Listener::Tcp(listener) => match listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    Ok(Some(Box::new(stream)))
                }
                Err(error) if error.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(error) => Err(error),
            },
            #[cfg(unix)]
            Listener::Unix(listener, _) => match listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    Ok(Some(Box::new(stream)))
                }
                Err(error) if error.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(error) => Err(error),
            },
        }
    }

    fn local_addr(&self) -> io::Result<ServeAddr> {
        match self {
            Listener::Tcp(listener) => Ok(ServeAddr::Tcp(listener.local_addr()?.to_string())),
            #[cfg(unix)]
            Listener::Unix(_, path) => Ok(ServeAddr::Unix(path.clone())),
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// State shared between the accept loop, sessions, and handles.
#[derive(Debug)]
struct Shared {
    config: ServeConfig,
    jobs: Arc<Jobs>,
    events: Arc<EventLog>,
    supervisor: Supervisor,
    store: Option<Arc<Mutex<SnapshotStore>>>,
    draining: AtomicBool,
    stopping: AtomicBool,
    closing: AtomicBool,
    sessions: AtomicU64,
}

impl Shared {
    fn begin_drain(&self, reason: &str) {
        if !self.draining.swap(true, Ordering::AcqRel) {
            self.events
                .emit(format!("event=drain reason={}", quoted(reason)));
        }
    }
}

/// A control handle onto a running server, usable from any thread.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Starts draining: new `Submit`s are rejected; status, report, and
    /// event queries keep serving and the accept loop keeps running.
    pub fn drain(&self) {
        self.shared.begin_drain("handle");
    }

    /// Requests a graceful stop: drain, wait for in-flight jobs to settle,
    /// close sessions, return from [`Server::run`].
    pub fn stop(&self) {
        self.shared.begin_drain("shutdown");
        self.shared.stopping.store(true, Ordering::Release);
    }

    /// Whether the server is draining.
    pub fn draining(&self) -> bool {
        self.shared.draining.load(Ordering::Acquire)
    }

    /// The server's job table (for in-process observers and tests).
    pub fn jobs(&self) -> Arc<Jobs> {
        Arc::clone(&self.shared.jobs)
    }

    /// The server's event log (for in-process observers and tests).
    pub fn events(&self) -> Arc<EventLog> {
        Arc::clone(&self.shared.events)
    }
}

/// A bound (but not yet running) analysis daemon.
#[derive(Debug)]
pub struct Server {
    listener: Listener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and starts the supervisor's worker pool. The
    /// accept loop does not run until [`Server::run`].
    pub fn bind(config: ServeConfig, addr: &ServeAddr) -> io::Result<Server> {
        let listener = match addr {
            ServeAddr::Tcp(spec) => {
                let listener = TcpListener::bind(spec.as_str())?;
                listener.set_nonblocking(true)?;
                Listener::Tcp(listener)
            }
            ServeAddr::Unix(path) => {
                #[cfg(unix)]
                {
                    // A stale socket file from a crashed predecessor would
                    // make bind fail with AddrInUse; replace it.
                    let _ = std::fs::remove_file(path);
                    let listener = std::os::unix::net::UnixListener::bind(path)?;
                    listener.set_nonblocking(true)?;
                    Listener::Unix(listener, path.clone())
                }
                #[cfg(not(unix))]
                {
                    let _ = path;
                    return Err(io::Error::other("unix sockets unsupported on this target"));
                }
            }
        };
        let events = Arc::new(match &config.event_log_path {
            Some(path) => EventLog::with_file(path)?,
            None => EventLog::new(),
        });
        let jobs = Arc::new(Jobs::new());
        let store = match &config.store_path {
            Some(path) => {
                let (store, report) = SnapshotStore::open(path)?;
                // The recovery outcome as typed fields (reason is the
                // stable one-token key) — consumers match on fields, not
                // on the report's prose.
                events.emit_record(
                    EventRecord::new("store-open")
                        .with("path", path.display())
                        .with("reason", report.reason.key())
                        .with("kept_bytes", report.kept_bytes)
                        .with("dropped_bytes", report.dropped_bytes())
                        .with("dropped_records", report.dropped_records)
                        .with("commits", report.commits)
                        .with("snapshots", report.snapshots)
                        .with("jobs", report.jobs)
                        .with("report", report.to_string()),
                );
                Some(Arc::new(Mutex::new(store)))
            }
            None => None,
        };
        if let Some(store) = &store {
            warm_start(store, &jobs, &events);
        }
        let supervisor = Supervisor::start(
            SupervisorConfig {
                worker: config.worker.clone(),
                slots: config.worker_slots,
                worker_threads: config.worker_threads,
                heartbeat: config.heartbeat,
                stall_timeout: config.stall_timeout,
                max_restarts: config.max_restarts,
                backoff: config.restart_backoff,
                backoff_cap: config.backoff_cap,
            },
            Arc::clone(&jobs),
            Arc::clone(&events),
            store.clone(),
        );
        let shared = Arc::new(Shared {
            config,
            jobs,
            events,
            supervisor,
            store,
            draining: AtomicBool::new(false),
            stopping: AtomicBool::new(false),
            closing: AtomicBool::new(false),
            sessions: AtomicU64::new(0),
        });
        Ok(Server { listener, shared })
    }

    /// The bound address (with the ephemeral port resolved for
    /// `127.0.0.1:0`-style binds).
    pub fn local_addr(&self) -> io::Result<ServeAddr> {
        self.listener.local_addr()
    }

    /// A control handle for draining/stopping from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs the accept loop until [`ServerHandle::stop`] or
    /// SIGTERM/SIGINT, then drains gracefully: waits for in-flight jobs to
    /// settle (bounded by `drain_timeout`), closes every session, and
    /// returns.
    pub fn run(self) -> io::Result<()> {
        let shared = self.shared;
        let mut sessions: Vec<JoinHandle<()>> = Vec::new();
        shared.events.emit("event=serve-start");
        loop {
            if signal::termination_requested() {
                shared.begin_drain("signal");
                shared.stopping.store(true, Ordering::Release);
            }
            if shared.stopping.load(Ordering::Acquire) {
                break;
            }
            match self.listener.accept() {
                Ok(Some(stream)) => {
                    let id = shared.sessions.fetch_add(1, Ordering::AcqRel) + 1;
                    shared
                        .events
                        .emit(format!("event=session-open session={id}"));
                    obs::global().counter("serve_sessions_total").incr();
                    obs::global().gauge("serve_sessions_open").add(1);
                    let ctx = Arc::clone(&shared);
                    sessions.push(std::thread::spawn(move || session(stream, id, &ctx)));
                }
                Ok(None) => std::thread::sleep(Duration::from_millis(20)),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        shared.begin_drain("shutdown");
        let settled = shared.jobs.wait_all_settled(shared.config.drain_timeout);
        shared.supervisor.wait_idle(shared.config.drain_timeout);
        // Flush anything still staged in the store (a no-op after normal
        // per-job commits, but it catches work settled mid-drain).
        if let Some(store) = &shared.store {
            let mut guard = store.lock().expect("snapshot store");
            match guard.commit() {
                Ok(seq) => shared.events.emit(format!(
                    "event=store-flush seq={seq} snapshots={}",
                    guard.snapshots()
                )),
                Err(error) => shared.events.emit(format!(
                    "event=store-error error={}",
                    quoted(&error.to_string())
                )),
            }
        }
        shared
            .events
            .emit(format!("event=serve-stop settled={settled}"));
        shared.closing.store(true, Ordering::Release);
        for session in sessions {
            let _ = session.join();
        }
        Ok(())
    }
}

/// Re-registers every job manifest the store recovered as a settled job,
/// merging each partition straight from its persisted snapshot — a
/// restarted daemon serves byte-identical reports for committed jobs
/// without re-analysing a single log.
fn warm_start(store: &Mutex<SnapshotStore>, jobs: &Jobs, events: &EventLog) {
    let guard = store.lock().expect("snapshot store");
    let mut restored = 0u64;
    for manifest in guard.jobs() {
        // A manifest commits in the same fsync as (or after) its
        // snapshots and recovery truncates only suffixes, so the keys
        // must all resolve; guard against a damaged store anyway.
        if !manifest.logs.iter().all(|log| guard.contains(log.key)) {
            events.emit("event=warm-skip reason=missing-snapshot");
            continue;
        }
        let specs: Vec<LogSpec> = manifest
            .logs
            .iter()
            .map(|log| LogSpec::new(log.label.clone(), PathBuf::from(&log.path)))
            .collect();
        let job = jobs.create(manifest.population, manifest.recovery, specs);
        jobs.with(job, |state| {
            state.keys = manifest.logs.iter().map(|log| Some(log.key)).collect();
            for (partition, log) in manifest.logs.iter().enumerate() {
                let hit = guard.get(log.key).expect("checked above");
                state.merge_partition(
                    partition,
                    hit.summary.clone(),
                    hit.analysis.clone(),
                    CacheStats::default(),
                    0,
                );
            }
        });
        events.emit(format!(
            "event=job-warm-start job={job} partitions={}",
            manifest.logs.len()
        ));
        restored += 1;
    }
    if restored > 0 {
        events.emit(format!("event=warm-start jobs={restored}"));
    }
}

/// A socket reader that absorbs read timeouts (the 100 ms poll used so
/// sessions notice server shutdown) and converts the closing flag into a
/// clean end-of-stream.
struct PatientReader {
    inner: Box<dyn SessionStream>,
    ctx: Arc<Shared>,
}

impl Read for PatientReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            if self.ctx.closing.load(Ordering::Acquire) {
                return Ok(0);
            }
            match self.inner.read(buf) {
                Err(error)
                    if matches!(
                        error.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) => {}
                other => return other,
            }
        }
    }
}

fn writer_loop(stream: Box<dyn SessionStream>, outbox: Receiver<Response>, pause: Duration) {
    let mut out = BufWriter::new(stream);
    if protocol::write_header(&mut out).is_err() || out.flush().is_err() {
        return;
    }
    while let Ok(response) = outbox.recv() {
        if !pause.is_zero() {
            std::thread::sleep(pause);
        }
        if protocol::write_response(&mut out, &response).is_err() {
            return;
        }
    }
    let _ = out.flush();
}

/// Enqueues one response per the slow-consumer policy. Returns `false`
/// when the session must close (shed, writer gone, or server closing).
fn enqueue(
    ctx: &Shared,
    session_id: u64,
    outbox: &SyncSender<Response>,
    response: Response,
) -> bool {
    match ctx.config.slow_policy {
        SlowConsumerPolicy::Block => {
            let mut pending = response;
            loop {
                if ctx.closing.load(Ordering::Acquire) {
                    return false;
                }
                match outbox.try_send(pending) {
                    Ok(()) => return true,
                    Err(TrySendError::Full(back)) => {
                        pending = back;
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(TrySendError::Disconnected(_)) => return false,
                }
            }
        }
        SlowConsumerPolicy::Shed => match outbox.try_send(response) {
            Ok(()) => true,
            Err(TrySendError::Full(_)) => {
                ctx.events.emit(format!(
                    "event=outbox-shed session={session_id} capacity={}",
                    ctx.config.outbox_frames
                ));
                obs::global().counter("serve_outbox_shed_total").incr();
                false
            }
            Err(TrySendError::Disconnected(_)) => false,
        },
    }
}

fn session(stream: Box<dyn SessionStream>, id: u64, ctx: &Arc<Shared>) {
    let _ = stream.set_stream_read_timeout(Some(Duration::from_millis(100)));
    let (Ok(write_half), Ok(control)) = (stream.split(), stream.split()) else {
        return;
    };
    let (outbox, inbox) = sync_channel::<Response>(ctx.config.outbox_frames.max(1));
    let pause = ctx.config.writer_pause;
    let writer = std::thread::spawn(move || writer_loop(write_half, inbox, pause));

    let mut forced = false;
    let mut frames = FrameReader::new(PatientReader {
        inner: stream,
        ctx: Arc::clone(ctx),
    });
    if frames.read_header().is_ok() {
        while let Ok(Some(request)) = protocol::read_request(&mut frames) {
            let response = answer(ctx, &request);
            if !enqueue(ctx, id, &outbox, response) {
                forced = true;
                break;
            }
        }
    } else {
        forced = true;
    }

    if forced || ctx.closing.load(Ordering::Acquire) {
        // Unblock a writer stuck mid-write before joining it.
        let _ = control.close();
    }
    drop(outbox);
    let _ = writer.join();
    let _ = control.close();
    obs::global().gauge("serve_sessions_open").add(-1);
    ctx.events.emit(format!("event=session-close session={id}"));
}

/// Computes the one response a request maps to.
fn answer(ctx: &Shared, request: &Request) -> Response {
    obs::global().counter("serve_requests_total").incr();
    match request {
        Request::Ping => Response::Pong {
            draining: ctx.draining.load(Ordering::Acquire),
            jobs: ctx.jobs.accepted(),
        },
        Request::Submit {
            population,
            recovery,
            logs,
        } => {
            if ctx.draining.load(Ordering::Acquire) {
                return Response::Rejected {
                    message: "server is draining; new jobs are refused".to_string(),
                };
            }
            if logs.is_empty() {
                return Response::Error {
                    message: "submit requires at least one log".to_string(),
                };
            }
            let specs = logs
                .iter()
                .map(|(label, path)| LogSpec::new(label.clone(), path.clone()))
                .collect();
            let (job, partitions) = ctx.supervisor.submit(*population, *recovery, specs);
            Response::Accepted { job, partitions }
        }
        Request::Status { job } => match ctx.jobs.with(*job, |state| state.status()) {
            Some(status) => Response::Status(status),
            None => Response::Error {
                message: format!("unknown job {job}"),
            },
        },
        Request::Report { job, full } => match ctx.jobs.with(*job, |state| state.report(*full)) {
            Some(report) => Response::Report(report),
            None => Response::Error {
                message: format!("unknown job {job}"),
            },
        },
        Request::Drain => {
            ctx.begin_drain("client request");
            Response::Pong {
                draining: true,
                jobs: ctx.jobs.accepted(),
            }
        }
        Request::Events { job } => Response::Events {
            lines: if *job == 0 {
                ctx.events.snapshot()
            } else {
                ctx.events.for_job(*job)
            },
        },
        Request::Metrics => {
            // One merged snapshot: this process's live metrics plus
            // everything absorbed from worker epilogue frames.
            let snapshot = obs::global().snapshot();
            let text = snapshot.render_text();
            Response::Metrics { snapshot, text }
        }
    }
}
