//! Minimal SIGTERM/SIGINT handling without a libc dependency: a raw
//! `signal(2)` registration whose handler sets one atomic flag. The accept
//! loop polls [`termination_requested`] and turns it into a graceful drain
//! (finish in-flight partitions, flush, refuse new jobs).
//!
//! This is the crate's only unsafe code, confined here under an explicit
//! allow (the crate denies `unsafe_code` everywhere else). The handler body
//! is async-signal-safe: a single atomic store.

use std::sync::atomic::{AtomicBool, Ordering};

static TERMINATION: AtomicBool = AtomicBool::new(false);

/// Whether a SIGTERM/SIGINT has arrived since [`install`] (or
/// [`request_termination`] was called programmatically).
pub fn termination_requested() -> bool {
    TERMINATION.load(Ordering::Acquire)
}

/// Sets the termination flag as if a signal had arrived (used by tests and
/// by explicit shutdown paths).
pub fn request_termination() {
    TERMINATION.store(true, Ordering::Release);
}

#[cfg(unix)]
mod imp {
    use super::TERMINATION;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        // Async-signal-safe: one atomic store, nothing else.
        TERMINATION.store(true, Ordering::Release);
    }

    #[allow(unsafe_code)]
    pub fn install() {
        // Raw signal(2) instead of sigaction keeps this dependency-free; the
        // handler survives for the process lifetime (SA_RESETHAND is not in
        // play for graceful drain — one delivery is all we need anyway).
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Registers the SIGTERM/SIGINT handler (no-op off unix). Idempotent.
pub fn install() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programmatic_termination_sets_the_flag() {
        install();
        request_termination();
        assert!(termination_requested());
    }
}
