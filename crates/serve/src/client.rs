//! A blocking client for the analysis daemon: connects over TCP or a Unix
//! socket, exchanges [`crate::protocol`] frames strictly
//! request-by-response, and offers typed helpers plus a polling
//! [`Client::wait_settled`] for batch-style callers.

use crate::protocol::{self, JobReport, JobStatus, Request, Response};
use crate::server::ServeAddr;
use sparqlog_core::analysis::Population;
use sparqlog_core::RecoveryPolicy;
use sparqlog_obs::MetricsSnapshot;
use sparqlog_shard::codec::{FrameReader, StreamError};
use std::io::{self, BufWriter, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// A socket-level failure.
    Io(io::Error),
    /// The server's response stream was malformed.
    Stream(StreamError),
    /// The server hung up (drain completed, or the session was shed).
    Closed,
    /// The server answered with an error or a rejection.
    Server(String),
    /// The server answered with a response of the wrong kind.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(error) => write!(f, "socket error: {error}"),
            ClientError::Stream(error) => write!(f, "malformed response stream: {error}"),
            ClientError::Closed => write!(f, "server closed the connection"),
            ClientError::Server(message) => write!(f, "server error: {message}"),
            ClientError::Unexpected(what) => write!(f, "unexpected response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(error: io::Error) -> ClientError {
        ClientError::Io(error)
    }
}

impl From<StreamError> for ClientError {
    fn from(error: StreamError) -> ClientError {
        ClientError::Stream(error)
    }
}

/// One duplex socket, abstracted over address families.
#[derive(Debug)]
enum ClientStream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

impl ClientStream {
    fn connect(addr: &ServeAddr) -> io::Result<ClientStream> {
        match addr {
            ServeAddr::Tcp(spec) => Ok(ClientStream::Tcp(TcpStream::connect(spec.as_str())?)),
            ServeAddr::Unix(path) => {
                #[cfg(unix)]
                {
                    Ok(ClientStream::Unix(std::os::unix::net::UnixStream::connect(
                        path,
                    )?))
                }
                #[cfg(not(unix))]
                {
                    let _ = path;
                    Err(io::Error::other("unix sockets unsupported on this target"))
                }
            }
        }
    }

    fn try_clone(&self) -> io::Result<ClientStream> {
        match self {
            ClientStream::Tcp(stream) => Ok(ClientStream::Tcp(stream.try_clone()?)),
            #[cfg(unix)]
            ClientStream::Unix(stream) => Ok(ClientStream::Unix(stream.try_clone()?)),
        }
    }
}

impl Read for ClientStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            ClientStream::Tcp(stream) => stream.read(buf),
            #[cfg(unix)]
            ClientStream::Unix(stream) => stream.read(buf),
        }
    }
}

impl Write for ClientStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            ClientStream::Tcp(stream) => stream.write(buf),
            #[cfg(unix)]
            ClientStream::Unix(stream) => stream.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            ClientStream::Tcp(stream) => stream.flush(),
            #[cfg(unix)]
            ClientStream::Unix(stream) => stream.flush(),
        }
    }
}

/// Bounded-retry policy for [`Client::connect_with_retry`]: how many
/// times to retry a connection that fails with a transient error
/// (refused, reset, socket file not there yet) and how long to back off
/// between attempts (exponential, capped).
///
/// The intended use is riding out a daemon restart: a client submitted
/// while `sparqlog-serve` is down reconnects once it is back, and because
/// the daemon persists completed jobs to its snapshot store, resubmitting
/// the same logs is idempotent — the work merges from the store instead
/// of re-running.
#[derive(Debug, Clone)]
pub struct ConnectRetry {
    /// Additional attempts after the first failure (0 = fail fast, same
    /// as [`Client::connect`]).
    pub attempts: u32,
    /// Delay before the first retry (doubles per attempt).
    pub backoff: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
}

impl Default for ConnectRetry {
    fn default() -> ConnectRetry {
        ConnectRetry {
            attempts: 5,
            backoff: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(2),
        }
    }
}

impl ConnectRetry {
    /// Whether `error` is worth retrying: the kinds a daemon restart (or a
    /// not-yet-bound listener) produces, plus a server that accepted the
    /// socket but hung up before the header exchange finished.
    fn transient(error: &ClientError) -> bool {
        match error {
            ClientError::Io(error) => matches!(
                error.kind(),
                io::ErrorKind::ConnectionRefused
                    | io::ErrorKind::ConnectionReset
                    | io::ErrorKind::ConnectionAborted
                    | io::ErrorKind::NotFound
                    | io::ErrorKind::AddrNotAvailable
            ),
            ClientError::Closed => true,
            _ => false,
        }
    }

    /// The capped exponential delay before retry `attempt` (1-based).
    fn delay(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.saturating_sub(1).min(16);
        self.backoff.saturating_mul(factor).min(self.backoff_cap)
    }
}

/// A connected daemon client. Requests are answered in order, one
/// response per request.
#[derive(Debug)]
pub struct Client {
    frames: FrameReader<ClientStream>,
    out: BufWriter<ClientStream>,
}

impl Client {
    /// Connects and exchanges stream headers (both directions carry the
    /// shared `SQSN` magic + version).
    pub fn connect(addr: &ServeAddr) -> Result<Client, ClientError> {
        let stream = ClientStream::connect(addr)?;
        let read_half = stream.try_clone()?;
        let mut out = BufWriter::new(stream);
        protocol::write_header(&mut out)?;
        out.flush()?;
        let mut frames = FrameReader::new(read_half);
        frames.read_header()?;
        Ok(Client { frames, out })
    }

    /// Like [`Client::connect`], but retries transient connection failures
    /// per `retry` — the way to submit work across a daemon restart.
    pub fn connect_with_retry(
        addr: &ServeAddr,
        retry: &ConnectRetry,
    ) -> Result<Client, ClientError> {
        let mut attempt = 0u32;
        loop {
            match Client::connect(addr) {
                Ok(client) => return Ok(client),
                Err(error) if ConnectRetry::transient(&error) && attempt < retry.attempts => {
                    attempt += 1;
                    std::thread::sleep(retry.delay(attempt));
                }
                Err(error) => return Err(error),
            }
        }
    }

    /// Sends one request and reads its response.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        protocol::write_request(&mut self.out, request)?;
        match protocol::read_response(&mut self.frames)? {
            Some(response) => Ok(response),
            None => Err(ClientError::Closed),
        }
    }

    /// Liveness check; returns `(draining, jobs_accepted)`.
    pub fn ping(&mut self) -> Result<(bool, u64), ClientError> {
        match self.request(&Request::Ping)? {
            Response::Pong { draining, jobs } => Ok((draining, jobs)),
            other => Err(unexpected(&other)),
        }
    }

    /// Submits an analysis job over `(label, path)` pairs (paths resolved
    /// on the server). `recovery` controls how malformed entries are
    /// handled (`Auto` defers to the *server's* `SPARQLOG_RECOVERY`
    /// environment). Returns `(job_id, partitions)`.
    pub fn submit(
        &mut self,
        population: Population,
        recovery: RecoveryPolicy,
        logs: Vec<(String, String)>,
    ) -> Result<(u64, u64), ClientError> {
        let request = Request::Submit {
            population,
            recovery,
            logs,
        };
        match self.request(&request)? {
            Response::Accepted { job, partitions } => Ok((job, partitions)),
            Response::Rejected { message } | Response::Error { message } => {
                Err(ClientError::Server(message))
            }
            other => Err(unexpected(&other)),
        }
    }

    /// Polls one job's progress.
    pub fn status(&mut self, job: u64) -> Result<JobStatus, ClientError> {
        match self.request(&Request::Status { job })? {
            Response::Status(status) => Ok(status),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches a job's report — incremental while partitions are still
    /// running, final (and byte-identical to the in-process engine's) once
    /// `complete` is set.
    pub fn report(&mut self, job: u64, full: bool) -> Result<JobReport, ClientError> {
        match self.request(&Request::Report { job, full })? {
            Response::Report(report) => Ok(report),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the server to drain (refuse new jobs, finish in-flight ones).
    pub fn drain(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Drain)? {
            Response::Pong { .. } => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the structured event log (`job` 0 = all jobs).
    pub fn events(&mut self, job: u64) -> Result<Vec<String>, ClientError> {
        match self.request(&Request::Events { job })? {
            Response::Events { lines } => Ok(lines),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the server's merged metric snapshot (pipeline, cache,
    /// shard, persist, and serve layers) plus its text exposition. Both
    /// are empty when metrics are disabled on the server.
    pub fn metrics(&mut self) -> Result<(MetricsSnapshot, String), ClientError> {
        match self.request(&Request::Metrics)? {
            Response::Metrics { snapshot, text } => Ok((snapshot, text)),
            other => Err(unexpected(&other)),
        }
    }

    /// Polls `status` until the job settles (completes or fails) or
    /// `timeout` elapses; returns the last status seen either way.
    pub fn wait_settled(&mut self, job: u64, timeout: Duration) -> Result<JobStatus, ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            let status = self.status(job)?;
            if status.phase != crate::protocol::JobPhase::Running || Instant::now() >= deadline {
                return Ok(status);
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }
}

fn unexpected(response: &Response) -> ClientError {
    ClientError::Unexpected(format!("{response:?}"))
}
