//! The worker-pool supervisor: a fixed set of runner threads (std threads +
//! channels, no async runtime) pulling partition tasks from a shared queue.
//! Each task spawns one supervised `sparqlog-shard-worker`
//! ([`sparqlog_shard::supervise`]) over exactly one log, with liveness
//! heartbeats and an optional stall timeout.
//!
//! # Fault model
//!
//! A worker that dies (pipe EOF, bad exit status, undecodable snapshot) or
//! stalls (no frame for longer than the stall timeout — heartbeats count)
//! is restarted with bounded exponential backoff
//! (`backoff × 2^(attempt−1)`, capped) up to `max_restarts` times; the
//! partition is re-run from scratch, which is safe because a partition
//! merges into its job **only** when its snapshot decodes completely, and
//! at most once ([`crate::job`]). A partition that exhausts its budget
//! fails the whole job with the last structured error.
//!
//! Every transition lands in the [`EventLog`]: `worker-start` (with pid),
//! `worker-death`, `partition-recovered` (with the death-to-merge latency),
//! `job-complete`, `job-failed`.
//!
//! # Snapshot store
//!
//! With a [`SnapshotStore`] attached, submit hashes each log's canonical
//! identity first: logs whose analysis the store already holds merge
//! immediately (`store-hit`, no worker process), the rest run as usual and
//! their snapshots are staged into the store as partitions merge. When the
//! last partition completes, the job's manifest is staged and everything
//! is committed durably in one fsync (`store-commit`) — so a restarted
//! daemon warm-starts the job and a resubmission is pure store hits.

use crate::events::{quoted, EventLog};
use crate::job::Jobs;
use sparqlog_core::analysis::Population;
use sparqlog_core::cache::CacheStats;
use sparqlog_core::{file_identity, PersistedLog, RecoveryPolicy};
use sparqlog_obs as obs;
use sparqlog_persist::{JobLog, JobRecord, SnapshotStore};
use sparqlog_shard::supervise::WorkerLaunch;
use sparqlog_shard::worker::AssignedLog;
use sparqlog_shard::{LogSpec, WorkerCommand};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Supervision tuning (a subset of the server config).
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// How to launch workers.
    pub worker: WorkerCommand,
    /// Concurrent worker processes (0 = available parallelism).
    pub slots: usize,
    /// `--workers` per worker process (0 = let the worker default).
    pub worker_threads: usize,
    /// Worker heartbeat period.
    pub heartbeat: Duration,
    /// Kill a worker whose pipe is silent this long (None = EOF-only).
    pub stall_timeout: Option<Duration>,
    /// Restarts allowed per partition before the job fails.
    pub max_restarts: u32,
    /// First restart backoff (doubles per attempt).
    pub backoff: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            worker: WorkerCommand::new("sparqlog-shard-worker"),
            slots: 0,
            worker_threads: 0,
            heartbeat: Duration::from_millis(200),
            stall_timeout: None,
            max_restarts: 5,
            backoff: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
        }
    }
}

/// One unit of work: one log of one job.
#[derive(Debug, Clone)]
struct PartitionTask {
    job: u64,
    partition: usize,
    population: Population,
    recovery: RecoveryPolicy,
    log: LogSpec,
    /// The log's canonical identity, when a store is attached and the log
    /// was hashable at submit time (its completed snapshot persists under
    /// this key).
    key: Option<u128>,
}

#[derive(Debug)]
struct Shared {
    config: SupervisorConfig,
    queue: Mutex<VecDeque<PartitionTask>>,
    available: Condvar,
    active: AtomicUsize,
    shutdown: AtomicBool,
    jobs: Arc<Jobs>,
    events: Arc<EventLog>,
    store: Option<Arc<Mutex<SnapshotStore>>>,
}

/// The supervisor: owns the runner threads and the task queue.
#[derive(Debug)]
pub struct Supervisor {
    shared: Arc<Shared>,
    runners: Vec<JoinHandle<()>>,
}

impl Supervisor {
    /// Starts the runner pool. With a `store`, submitted logs already
    /// persisted merge without spawning a worker, and completed work is
    /// committed back (see the [module docs](self)).
    pub fn start(
        config: SupervisorConfig,
        jobs: Arc<Jobs>,
        events: Arc<EventLog>,
        store: Option<Arc<Mutex<SnapshotStore>>>,
    ) -> Supervisor {
        let slots = if config.slots > 0 {
            config.slots
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        let shared = Arc::new(Shared {
            config,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            active: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            jobs,
            events,
            store,
        });
        let runners = (0..slots)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || runner_loop(&shared))
            })
            .collect();
        Supervisor { shared, runners }
    }

    /// Registers a job for `logs` and enqueues one partition per log —
    /// except, with a store attached, partitions whose log is already
    /// persisted under its canonical identity: those merge immediately
    /// from the store (`store-hit`) and spawn no worker. Returns
    /// `(job_id, partitions)`.
    pub fn submit(
        &self,
        population: Population,
        recovery: RecoveryPolicy,
        logs: Vec<LogSpec>,
    ) -> (u64, u64) {
        let partitions = logs.len() as u64;
        let job = self.shared.jobs.create(population, recovery, logs.clone());
        obs::global().counter("serve_jobs_submitted_total").incr();
        self.shared.events.emit(format!(
            "event=job-accepted job={job} partitions={partitions} recovery={}",
            recovery.resolve().spelling()
        ));

        // Identity pass: hash each log (no parsing) and pull store hits. A
        // hit is usable unless the resolved policy is strict and the
        // persisted tally has defects — strict must re-analyse and
        // reproduce the failure, exactly like the incremental engine.
        let mut keys: Vec<Option<u128>> = vec![None; logs.len()];
        let mut hits: Vec<(usize, PersistedLog)> = Vec::new();
        if let Some(store) = &self.shared.store {
            let policy = recovery.resolve();
            let guard = store.lock().expect("snapshot store");
            for (partition, log) in logs.iter().enumerate() {
                let Ok(key) = file_identity(population, &log.label, &log.path) else {
                    continue; // unreadable now; the worker will report it
                };
                keys[partition] = Some(key);
                if let Some(hit) = guard.get(key) {
                    let usable = !matches!(policy, RecoveryPolicy::Strict)
                        || hit.summary.errors.defects() == 0;
                    if usable {
                        hits.push((partition, hit.clone()));
                    }
                }
            }
        }
        self.shared
            .jobs
            .with(job, |state| state.keys = keys.clone());

        let mut completed_now = false;
        for (partition, hit) in &hits {
            self.shared.jobs.with(job, |state| {
                let merged = state.merge_partition(
                    *partition,
                    hit.summary.clone(),
                    hit.analysis.clone(),
                    CacheStats::default(),
                    0,
                );
                // Inside the job lock for the same ordering guarantee as
                // worker merges: a complete status implies the events.
                self.shared.events.emit(format!(
                    "event=store-hit job={job} partition={partition} merged={merged}"
                ));
                if state.is_complete() {
                    self.shared
                        .events
                        .emit(format!("event=job-complete job={job}"));
                    obs::global().counter("serve_jobs_completed_total").incr();
                    completed_now = true;
                } else if state.failed.is_some() && !completed_now {
                    if let Some(error) = state.failed.as_deref() {
                        self.shared.events.emit(format!(
                            "event=job-failed job={job} partition={partition} error={}",
                            quoted(error)
                        ));
                        obs::global().counter("serve_jobs_failed_total").incr();
                    }
                }
            });
        }
        if completed_now {
            if let Some(store) = &self.shared.store {
                persist_completion(store, &self.shared.jobs, &self.shared.events, job);
            }
        }

        let hit_partitions: Vec<usize> = hits.iter().map(|(partition, _)| *partition).collect();
        let mut queue = self.shared.queue.lock().expect("supervisor queue");
        for (partition, log) in logs.into_iter().enumerate() {
            if hit_partitions.contains(&partition) {
                continue;
            }
            queue.push_back(PartitionTask {
                job,
                partition,
                population,
                recovery,
                log,
                key: keys[partition],
            });
        }
        drop(queue);
        self.shared.available.notify_all();
        (job, partitions)
    }

    /// Whether no partition is queued or running.
    pub fn idle(&self) -> bool {
        self.shared.active.load(Ordering::Acquire) == 0
            && self
                .shared
                .queue
                .lock()
                .expect("supervisor queue")
                .is_empty()
    }

    /// Blocks until idle or `timeout` elapses; returns whether idle.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while !self.idle() {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        true
    }

    /// Drains and stops the pool: runners finish the queue (and their
    /// in-flight partitions), then exit.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        for runner in self.runners.drain(..) {
            let _ = runner.join();
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        for runner in self.runners.drain(..) {
            let _ = runner.join();
        }
    }
}

fn runner_loop(shared: &Shared) {
    loop {
        let task = {
            let mut queue = shared.queue.lock().expect("supervisor queue");
            loop {
                if let Some(task) = queue.pop_front() {
                    // Claim while still holding the lock so idle() can never
                    // observe "queue empty, nothing active" mid-handoff.
                    shared.active.fetch_add(1, Ordering::AcqRel);
                    break Some(task);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                let (guard, _) = shared
                    .available
                    .wait_timeout(queue, Duration::from_millis(100))
                    .expect("supervisor queue");
                queue = guard;
            }
        };
        let Some(task) = task else {
            return;
        };
        run_partition(shared, &task);
        shared.active.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Exponential backoff for restart `attempt` (1-based), capped.
fn backoff_delay(config: &SupervisorConfig, attempt: u32) -> Duration {
    let factor = 1u32 << attempt.saturating_sub(1).min(16);
    config
        .backoff
        .saturating_mul(factor)
        .min(config.backoff_cap)
}

/// Runs one partition to success, fatal job failure, or restart exhaustion.
fn run_partition(shared: &Shared, task: &PartitionTask) {
    let config = &shared.config;
    let events = &shared.events;
    let job = task.job;
    let partition = task.partition;
    let mut attempt = 0u32;
    let mut first_failure: Option<Instant> = None;
    loop {
        // A job failed by another partition is not worth more processes.
        let abandoned = shared
            .jobs
            .with(job, |state| state.failed.is_some())
            .unwrap_or(true);
        if abandoned {
            events.emit(format!(
                "event=partition-abandoned job={job} partition={partition}"
            ));
            return;
        }

        let launch = WorkerLaunch {
            command: config.worker.clone(),
            shard: partition,
            population: task.population,
            // Passed verbatim: the worker itself streams a budget leniently,
            // and the job table meters the budget once at the last merge.
            recovery: task.recovery,
            worker_threads: (config.worker_threads > 0).then_some(config.worker_threads),
            heartbeat: Some(config.heartbeat),
            logs: vec![AssignedLog {
                index: partition as u64,
                label: task.log.label.clone(),
                path: task.log.path.clone(),
            }],
        };
        let outcome = match launch.spawn() {
            Ok(handle) => {
                events.emit(format!(
                    "event=worker-start job={job} partition={partition} attempt={attempt} pid={}",
                    handle.pid()
                ));
                handle.join(config.stall_timeout)
            }
            Err(error) => Err(error),
        };

        match outcome {
            Ok(output) => {
                let mut frames = output.snapshot.logs;
                let valid = frames.len() == 1 && frames[0].index == partition as u64;
                if !valid {
                    fail_job(
                        shared,
                        job,
                        partition,
                        &format!(
                            "partition {partition}: snapshot reported {} frames (expected 1 for log index {partition})",
                            frames.len()
                        ),
                    );
                    return;
                }
                let frame = frames.remove(0);
                // The worker's own pipeline/cache metrics rode home on the
                // epilogue frame; fold them into this process's registry so
                // the service's Metrics answer spans every worker.
                obs::global().absorb(&output.snapshot.epilogue.metrics);
                // Clone the pair for the store *before* the frame moves into
                // the merge; only needed when this partition has a key.
                let persisted =
                    (shared.store.is_some() && task.key.is_some()).then(|| PersistedLog {
                        summary: frame.summary.clone(),
                        analysis: frame.analysis.clone(),
                    });
                // Emit while the job-table lock is still held: a client whose
                // status poll observes the job as complete is then guaranteed
                // to find the recovery/completion events already logged.
                let mut completed_now = false;
                shared.jobs.with(job, |state| {
                    let was_failed = state.failed.is_some();
                    let merged = state.merge_partition(
                        partition,
                        frame.summary,
                        frame.analysis,
                        output.snapshot.epilogue.cache,
                        output.bytes,
                    );
                    if let Some(since) = first_failure {
                        let latency_ms = since.elapsed().as_millis() as u64;
                        events.emit(format!(
                            "event=partition-recovered job={job} partition={partition} attempt={attempt} latency_ms={latency_ms}"
                        ));
                        obs::global()
                            .histogram("serve_recovery_latency_ms")
                            .record(latency_ms);
                    }
                    events.emit(format!(
                        "event=partition-complete job={job} partition={partition} merged={merged}"
                    ));
                    if state.is_complete() {
                        events.emit(format!("event=job-complete job={job}"));
                        obs::global().counter("serve_jobs_completed_total").incr();
                        completed_now = true;
                    } else if !was_failed {
                        // The only way a merge can fail a job: the final
                        // partition pushed the defect rate over the budget.
                        if let Some(error) = state.failed.as_deref() {
                            events.emit(format!(
                                "event=job-failed job={job} partition={partition} error={}",
                                quoted(error)
                            ));
                            obs::global().counter("serve_jobs_failed_total").incr();
                        }
                    }
                });
                // Store work strictly *after* the job lock is released
                // (submit locks store→jobs; taking them in the other order
                // here would deadlock). Staged records only become durable
                // at the completion commit.
                if let Some(store) = &shared.store {
                    if let (Some(key), Some(pair)) = (task.key, persisted) {
                        let mut guard = store.lock().expect("snapshot store");
                        if let Err(error) = guard.record_snapshot(key, &pair) {
                            events.emit(format!(
                                "event=store-error job={job} partition={partition} error={}",
                                quoted(&error.to_string())
                            ));
                        }
                    }
                    if completed_now {
                        persist_completion(store, &shared.jobs, events, job);
                    }
                }
                return;
            }
            Err(error) => {
                first_failure.get_or_insert_with(Instant::now);
                events.emit(format!(
                    "event=worker-death job={job} partition={partition} attempt={attempt} error={}",
                    quoted(&error.to_string())
                ));
                shared.jobs.with(job, |state| state.restarts += 1);
                obs::global().counter("serve_worker_restarts_total").incr();
                attempt += 1;
                if attempt > config.max_restarts {
                    fail_job(
                        shared,
                        job,
                        partition,
                        &format!(
                            "partition {partition} failed after {} restarts: {error}",
                            config.max_restarts
                        ),
                    );
                    return;
                }
                std::thread::sleep(backoff_delay(config, attempt));
            }
        }
    }
}

/// Stages the completed job's manifest and commits everything durably.
/// Only called once the job is complete; skipped (with an event) if any
/// partition's log was unhashable at submit time, since a manifest with a
/// missing key could not warm-start.
fn persist_completion(store: &Arc<Mutex<SnapshotStore>>, jobs: &Jobs, events: &EventLog, job: u64) {
    let manifest = jobs.with(job, |state| {
        if !state.keys.iter().all(Option::is_some) {
            return None;
        }
        Some(JobRecord {
            population: state.population,
            recovery: state.recovery,
            logs: state
                .logs
                .iter()
                .zip(&state.keys)
                .map(|(log, key)| JobLog {
                    key: key.expect("checked above"),
                    label: log.label.clone(),
                    path: log.path.to_string_lossy().into_owned(),
                })
                .collect(),
        })
    });
    let Some(manifest) = manifest else {
        return; // job vanished (cannot happen today, but don't panic)
    };
    let Some(manifest) = manifest else {
        events.emit(format!("event=store-skip job={job} reason=unhashable-log"));
        return;
    };
    let mut guard = store.lock().expect("snapshot store");
    let staged = match guard.record_job(&manifest) {
        Ok(staged) => staged,
        Err(error) => {
            events.emit(format!(
                "event=store-error job={job} error={}",
                quoted(&error.to_string())
            ));
            return;
        }
    };
    match guard.commit() {
        Ok(seq) => events.emit(format!(
            "event=store-commit job={job} seq={seq} staged={staged} snapshots={}",
            guard.snapshots()
        )),
        Err(error) => events.emit(format!(
            "event=store-error job={job} error={}",
            quoted(&error.to_string())
        )),
    }
}

fn fail_job(shared: &Shared, job: u64, partition: usize, message: &str) {
    shared.jobs.with(job, |state| {
        if state.failed.is_none() {
            state.failed = Some(message.to_string());
            obs::global().counter("serve_jobs_failed_total").incr();
        }
        // Inside the lock for the same reason as the completion events: a
        // client that sees the failed phase must also see the failure event.
        shared.events.emit(format!(
            "event=job-failed job={job} partition={partition} error={}",
            quoted(message)
        ));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let config = SupervisorConfig {
            backoff: Duration::from_millis(50),
            backoff_cap: Duration::from_millis(300),
            ..SupervisorConfig::default()
        };
        assert_eq!(backoff_delay(&config, 1), Duration::from_millis(50));
        assert_eq!(backoff_delay(&config, 2), Duration::from_millis(100));
        assert_eq!(backoff_delay(&config, 3), Duration::from_millis(200));
        assert_eq!(backoff_delay(&config, 4), Duration::from_millis(300));
        assert_eq!(backoff_delay(&config, 30), Duration::from_millis(300));
    }

    #[test]
    fn spawn_failures_exhaust_restarts_and_fail_the_job() {
        let jobs = Arc::new(Jobs::new());
        let events = Arc::new(EventLog::new());
        let config = SupervisorConfig {
            worker: WorkerCommand::new("/definitely/not/a/real/worker"),
            slots: 1,
            max_restarts: 1,
            backoff: Duration::from_millis(1),
            ..SupervisorConfig::default()
        };
        let supervisor = Supervisor::start(config, Arc::clone(&jobs), Arc::clone(&events), None);
        let (job, partitions) = supervisor.submit(
            Population::Unique,
            RecoveryPolicy::Auto,
            vec![LogSpec::new("ghost", "/tmp/none.log")],
        );
        assert_eq!(partitions, 1);
        assert!(jobs.wait_all_settled(Duration::from_secs(10)));
        assert!(supervisor.wait_idle(Duration::from_secs(10)));
        let status = jobs.with(job, |state| state.status()).unwrap();
        assert_eq!(status.phase, crate::protocol::JobPhase::Failed);
        assert_eq!(status.restarts, 2); // initial attempt + 1 allowed restart
        assert!(
            status.error.contains("failed after 1 restarts"),
            "{}",
            status.error
        );
        let lines = events.for_job(job);
        assert!(
            lines.iter().any(|l| l.contains("event=worker-death")),
            "{lines:?}"
        );
        assert!(
            lines.iter().any(|l| l.contains("event=job-failed")),
            "{lines:?}"
        );
        supervisor.shutdown();
    }
}
