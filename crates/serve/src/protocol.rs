//! The service wire protocol: length-prefixed request/response frames
//! layered directly on the shard crate's `SQSN` snapshot codec
//! ([`sparqlog_shard::codec`]). Both directions of a connection start with
//! the standard stream header (magic + version), then exchange frames whose
//! payload is a tag byte followed by codec-encoded fields — the same
//! varint/length-prefixed primitives the worker snapshots use, so one codec
//! version covers the whole system.
//!
//! A request frame always produces exactly one response frame, in order.
//! Jobs are identified by the server-assigned id returned in
//! [`Response::Accepted`].

use sparqlog_core::analysis::Population;
use sparqlog_core::RecoveryPolicy;
use sparqlog_obs::MetricsSnapshot;
use sparqlog_shard::codec::{
    write_frame, write_stream_header, DecodeError, Decoder, Encoder, FrameReader, StreamError,
};
use sparqlog_shard::snapshot::Snapshot;
use std::io::{self, Read, Write};

/// Request tag bytes.
mod req {
    pub const PING: u8 = 1;
    pub const SUBMIT: u8 = 2;
    pub const STATUS: u8 = 3;
    pub const REPORT: u8 = 4;
    pub const DRAIN: u8 = 5;
    pub const EVENTS: u8 = 6;
    pub const METRICS: u8 = 7;
}

/// Response tag bytes.
mod resp {
    pub const PONG: u8 = 1;
    pub const ACCEPTED: u8 = 2;
    pub const STATUS: u8 = 3;
    pub const REPORT: u8 = 4;
    pub const ERROR: u8 = 5;
    pub const REJECTED: u8 = 6;
    pub const EVENTS: u8 = 7;
    pub const METRICS: u8 = 8;
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness check; answered with [`Response::Pong`].
    Ping,
    /// Submit an analysis job over on-disk logs (label/path pairs, resolved
    /// on the *server's* filesystem).
    Submit {
        /// The population to fold.
        population: Population,
        /// How malformed input is handled (`Auto` = the *server's*
        /// `SPARQLOG_RECOVERY` environment decides).
        recovery: RecoveryPolicy,
        /// `(label, path)` pairs in report order.
        logs: Vec<(String, String)>,
    },
    /// Poll a job's progress.
    Status {
        /// The job id from [`Response::Accepted`].
        job: u64,
    },
    /// Fetch a job's (possibly incremental) report.
    Report {
        /// The job id.
        job: u64,
        /// `true` for the full Table-1..6 report, `false` for Table 1 only.
        full: bool,
    },
    /// Ask the server to drain: finish in-flight jobs, refuse new ones.
    Drain,
    /// Fetch the structured event log (`job` 0 = all jobs).
    Events {
        /// Filter to one job id, or 0 for everything.
        job: u64,
    },
    /// Fetch the server's metric registry: a merged snapshot covering the
    /// pipeline, cache, shard, persist, and serve layers.
    Metrics,
}

/// A job's lifecycle phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// Partitions still running (or queued).
    Running,
    /// Every partition merged; the report is final.
    Complete,
    /// A partition exhausted its restart budget; see the error text.
    Failed,
}

impl JobPhase {
    fn code(self) -> u8 {
        match self {
            JobPhase::Running => 0,
            JobPhase::Complete => 1,
            JobPhase::Failed => 2,
        }
    }

    fn from_code(code: u8) -> Option<JobPhase> {
        match code {
            0 => Some(JobPhase::Running),
            1 => Some(JobPhase::Complete),
            2 => Some(JobPhase::Failed),
            _ => None,
        }
    }
}

/// A job's progress, as returned by [`Request::Status`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStatus {
    /// The job id.
    pub job: u64,
    /// Lifecycle phase.
    pub phase: JobPhase,
    /// Total partitions (one per submitted log).
    pub total: u64,
    /// Partitions merged so far.
    pub completed: u64,
    /// Worker restarts performed for this job so far.
    pub restarts: u64,
    /// Malformed entries tallied across the partitions merged so far.
    pub errors: u64,
    /// The failure description (empty unless `phase` is `Failed`).
    pub error: String,
}

/// A rendered report, as returned by [`Request::Report`]. `text` covers the
/// partitions merged so far; when `complete` it is byte-identical to the
/// in-process fused engine's report over the same logs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobReport {
    /// The job id.
    pub job: u64,
    /// Whether every partition has been merged.
    pub complete: bool,
    /// Partitions merged into this report.
    pub completed: u64,
    /// Total partitions.
    pub total: u64,
    /// Malformed entries tallied across the partitions merged so far.
    pub errors: u64,
    /// The rendered report text.
    pub text: String,
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong {
        /// Whether the server is draining (refusing new jobs).
        draining: bool,
        /// Jobs accepted so far.
        jobs: u64,
    },
    /// A submitted job was accepted.
    Accepted {
        /// The new job's id.
        job: u64,
        /// How many partitions it was split into.
        partitions: u64,
    },
    /// Answer to [`Request::Status`].
    Status(JobStatus),
    /// Answer to [`Request::Report`].
    Report(JobReport),
    /// The request failed (unknown job, bad request, …).
    Error {
        /// Human-readable reason.
        message: String,
    },
    /// The request was refused because the server is draining.
    Rejected {
        /// Human-readable reason.
        message: String,
    },
    /// Answer to [`Request::Events`].
    Events {
        /// The matching event lines, oldest first.
        lines: Vec<String>,
    },
    /// Answer to [`Request::Metrics`].
    Metrics {
        /// The merged metric snapshot (empty when metrics are disabled on
        /// the server).
        snapshot: MetricsSnapshot,
        /// The same snapshot in Prometheus-style text exposition.
        text: String,
    },
}

fn population_code(population: Population) -> u8 {
    match population {
        Population::Unique => 0,
        Population::Valid => 1,
    }
}

fn population_from(code: u8, decoder: &Decoder<'_>) -> Result<Population, DecodeError> {
    match code {
        0 => Ok(Population::Unique),
        1 => Ok(Population::Valid),
        other => Err(decoder.invalid("population code", u64::from(other))),
    }
}

/// Encodes a recovery policy: one tag byte, plus the budget rate for
/// `ErrorBudget` (the only variant with a parameter).
fn put_recovery(out: &mut Encoder, policy: RecoveryPolicy) {
    match policy {
        RecoveryPolicy::Auto => out.put_u8(0),
        RecoveryPolicy::Strict => out.put_u8(1),
        RecoveryPolicy::Lenient => out.put_u8(2),
        RecoveryPolicy::ErrorBudget { max_per_10k } => {
            out.put_u8(3);
            out.put_varint(u64::from(max_per_10k));
        }
    }
}

fn take_recovery(decoder: &mut Decoder<'_>) -> Result<RecoveryPolicy, DecodeError> {
    match decoder.take_u8()? {
        0 => Ok(RecoveryPolicy::Auto),
        1 => Ok(RecoveryPolicy::Strict),
        2 => Ok(RecoveryPolicy::Lenient),
        3 => {
            let rate = decoder.take_varint()?;
            let max_per_10k =
                u32::try_from(rate).map_err(|_| decoder.invalid("error budget rate", rate))?;
            Ok(RecoveryPolicy::ErrorBudget { max_per_10k })
        }
        other => Err(decoder.invalid("recovery policy code", u64::from(other))),
    }
}

impl Request {
    /// Encodes the request payload (tag byte + body).
    pub fn to_payload(&self) -> Vec<u8> {
        let mut out = Encoder::new();
        match self {
            Request::Ping => out.put_u8(req::PING),
            Request::Submit {
                population,
                recovery,
                logs,
            } => {
                out.put_u8(req::SUBMIT);
                out.put_u8(population_code(*population));
                put_recovery(&mut out, *recovery);
                out.put_usize(logs.len());
                for (label, path) in logs {
                    out.put_str(label);
                    out.put_str(path);
                }
            }
            Request::Status { job } => {
                out.put_u8(req::STATUS);
                out.put_varint(*job);
            }
            Request::Report { job, full } => {
                out.put_u8(req::REPORT);
                out.put_varint(*job);
                out.put_bool(*full);
            }
            Request::Drain => out.put_u8(req::DRAIN),
            Request::Events { job } => {
                out.put_u8(req::EVENTS);
                out.put_varint(*job);
            }
            Request::Metrics => out.put_u8(req::METRICS),
        }
        out.into_bytes()
    }

    /// Decodes a request payload whose first stream byte sits at
    /// `base_offset`.
    pub fn from_payload(payload: &[u8], base_offset: u64) -> Result<Request, DecodeError> {
        let mut decoder = Decoder::with_base_offset(payload, base_offset);
        let tag = decoder.take_u8()?;
        let request = match tag {
            req::PING => Request::Ping,
            req::SUBMIT => {
                let code = decoder.take_u8()?;
                let population = population_from(code, &decoder)?;
                let recovery = take_recovery(&mut decoder)?;
                let count = decoder.take_usize()?;
                let mut logs = Vec::with_capacity(count.min(1 << 12));
                for _ in 0..count {
                    let label = decoder.take_str()?;
                    let path = decoder.take_str()?;
                    logs.push((label, path));
                }
                Request::Submit {
                    population,
                    recovery,
                    logs,
                }
            }
            req::STATUS => Request::Status {
                job: decoder.take_varint()?,
            },
            req::REPORT => Request::Report {
                job: decoder.take_varint()?,
                full: decoder.take_bool()?,
            },
            req::DRAIN => Request::Drain,
            req::EVENTS => Request::Events {
                job: decoder.take_varint()?,
            },
            req::METRICS => Request::Metrics,
            tag => return Err(decoder.invalid("request tag", u64::from(tag))),
        };
        decoder.finish()?;
        Ok(request)
    }
}

impl Response {
    /// Encodes the response payload (tag byte + body).
    pub fn to_payload(&self) -> Vec<u8> {
        let mut out = Encoder::new();
        match self {
            Response::Pong { draining, jobs } => {
                out.put_u8(resp::PONG);
                out.put_bool(*draining);
                out.put_varint(*jobs);
            }
            Response::Accepted { job, partitions } => {
                out.put_u8(resp::ACCEPTED);
                out.put_varint(*job);
                out.put_varint(*partitions);
            }
            Response::Status(status) => {
                out.put_u8(resp::STATUS);
                out.put_varint(status.job);
                out.put_u8(status.phase.code());
                out.put_varint(status.total);
                out.put_varint(status.completed);
                out.put_varint(status.restarts);
                out.put_varint(status.errors);
                out.put_str(&status.error);
            }
            Response::Report(report) => {
                out.put_u8(resp::REPORT);
                out.put_varint(report.job);
                out.put_bool(report.complete);
                out.put_varint(report.completed);
                out.put_varint(report.total);
                out.put_varint(report.errors);
                out.put_str(&report.text);
            }
            Response::Error { message } => {
                out.put_u8(resp::ERROR);
                out.put_str(message);
            }
            Response::Rejected { message } => {
                out.put_u8(resp::REJECTED);
                out.put_str(message);
            }
            Response::Events { lines } => {
                out.put_u8(resp::EVENTS);
                out.put_usize(lines.len());
                for line in lines {
                    out.put_str(line);
                }
            }
            Response::Metrics { snapshot, text } => {
                out.put_u8(resp::METRICS);
                snapshot.encode(&mut out);
                out.put_str(text);
            }
        }
        out.into_bytes()
    }

    /// Decodes a response payload whose first stream byte sits at
    /// `base_offset`.
    pub fn from_payload(payload: &[u8], base_offset: u64) -> Result<Response, DecodeError> {
        let mut decoder = Decoder::with_base_offset(payload, base_offset);
        let tag = decoder.take_u8()?;
        let response = match tag {
            resp::PONG => Response::Pong {
                draining: decoder.take_bool()?,
                jobs: decoder.take_varint()?,
            },
            resp::ACCEPTED => Response::Accepted {
                job: decoder.take_varint()?,
                partitions: decoder.take_varint()?,
            },
            resp::STATUS => {
                let job = decoder.take_varint()?;
                let code = decoder.take_u8()?;
                let Some(phase) = JobPhase::from_code(code) else {
                    return Err(decoder.invalid("job phase code", u64::from(code)));
                };
                Response::Status(JobStatus {
                    job,
                    phase,
                    total: decoder.take_varint()?,
                    completed: decoder.take_varint()?,
                    restarts: decoder.take_varint()?,
                    errors: decoder.take_varint()?,
                    error: decoder.take_str()?,
                })
            }
            resp::REPORT => Response::Report(JobReport {
                job: decoder.take_varint()?,
                complete: decoder.take_bool()?,
                completed: decoder.take_varint()?,
                total: decoder.take_varint()?,
                errors: decoder.take_varint()?,
                text: decoder.take_str()?,
            }),
            resp::ERROR => Response::Error {
                message: decoder.take_str()?,
            },
            resp::REJECTED => Response::Rejected {
                message: decoder.take_str()?,
            },
            resp::EVENTS => {
                let count = decoder.take_usize()?;
                let mut lines = Vec::with_capacity(count.min(1 << 16));
                for _ in 0..count {
                    lines.push(decoder.take_str()?);
                }
                Response::Events { lines }
            }
            resp::METRICS => Response::Metrics {
                snapshot: MetricsSnapshot::decode(&mut decoder)?,
                text: decoder.take_str()?,
            },
            tag => return Err(decoder.invalid("response tag", u64::from(tag))),
        };
        decoder.finish()?;
        Ok(response)
    }
}

/// Writes the protocol stream header (shared with worker snapshots: same
/// magic, same version byte).
pub fn write_header(out: &mut impl Write) -> io::Result<()> {
    write_stream_header(out)
}

/// Writes one request as a length-prefixed frame and flushes.
pub fn write_request(out: &mut impl Write, request: &Request) -> io::Result<()> {
    write_frame(out, &request.to_payload())?;
    out.flush()
}

/// Writes one response as a length-prefixed frame and flushes.
pub fn write_response(out: &mut impl Write, response: &Response) -> io::Result<()> {
    write_frame(out, &response.to_payload())?;
    out.flush()
}

/// Reads the next request frame, or `None` on clean end-of-stream (the
/// client hung up between requests).
pub fn read_request<R: Read>(frames: &mut FrameReader<R>) -> Result<Option<Request>, StreamError> {
    let Some((payload, base)) = frames.next_frame()? else {
        return Ok(None);
    };
    Ok(Some(Request::from_payload(&payload, base)?))
}

/// Reads the next response frame, or `None` on clean end-of-stream (the
/// server hung up — drain completed or the connection was shed).
pub fn read_response<R: Read>(
    frames: &mut FrameReader<R>,
) -> Result<Option<Response>, StreamError> {
    let Some((payload, base)) = frames.next_frame()? else {
        return Ok(None);
    };
    Ok(Some(Response::from_payload(&payload, base)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(request: Request) {
        let payload = request.to_payload();
        assert_eq!(Request::from_payload(&payload, 9).unwrap(), request);
    }

    fn round_trip_response(response: Response) {
        let payload = response.to_payload();
        assert_eq!(Response::from_payload(&payload, 9).unwrap(), response);
    }

    #[test]
    fn every_request_round_trips() {
        round_trip_request(Request::Ping);
        round_trip_request(Request::Submit {
            population: Population::Valid,
            recovery: RecoveryPolicy::Auto,
            logs: vec![
                ("DBpedia15".to_string(), "/logs/a.log".to_string()),
                ("label with spaces".to_string(), "/logs/ü.log".to_string()),
            ],
        });
        for recovery in [
            RecoveryPolicy::Strict,
            RecoveryPolicy::Lenient,
            RecoveryPolicy::ErrorBudget { max_per_10k: 25 },
            RecoveryPolicy::ErrorBudget {
                max_per_10k: u32::MAX,
            },
        ] {
            round_trip_request(Request::Submit {
                population: Population::Unique,
                recovery,
                logs: vec![("log".to_string(), "/logs/log".to_string())],
            });
        }
        round_trip_request(Request::Status { job: u64::MAX });
        round_trip_request(Request::Report { job: 3, full: true });
        round_trip_request(Request::Drain);
        round_trip_request(Request::Events { job: 0 });
        round_trip_request(Request::Metrics);
    }

    #[test]
    fn every_response_round_trips() {
        round_trip_response(Response::Pong {
            draining: true,
            jobs: 7,
        });
        round_trip_response(Response::Accepted {
            job: 1,
            partitions: 12,
        });
        round_trip_response(Response::Status(JobStatus {
            job: 2,
            phase: JobPhase::Failed,
            total: 4,
            completed: 3,
            restarts: 9,
            errors: 17,
            error: "shard 1: worker exited with status 3".to_string(),
        }));
        round_trip_response(Response::Report(JobReport {
            job: 2,
            complete: false,
            completed: 1,
            total: 4,
            errors: 2,
            text: "Table 1\n=======\n".to_string(),
        }));
        round_trip_response(Response::Error {
            message: "unknown job 9".to_string(),
        });
        round_trip_response(Response::Rejected {
            message: "draining".to_string(),
        });
        round_trip_response(Response::Events {
            lines: vec!["t=1 event=drain".to_string()],
        });
        let snapshot = MetricsSnapshot {
            counters: vec![("pipeline_runs_total".to_string(), 3)],
            gauges: vec![("serve_sessions_open".to_string(), -1)],
            histograms: Vec::new(),
        };
        round_trip_response(Response::Metrics {
            text: snapshot.render_text(),
            snapshot,
        });
        round_trip_response(Response::Metrics {
            snapshot: MetricsSnapshot::default(),
            text: String::new(),
        });
    }

    #[test]
    fn bad_tags_are_structured_errors() {
        let error = Request::from_payload(&[99], 0).unwrap_err();
        assert!(format!("{error}").contains("request tag"), "{error}");
        let error = Response::from_payload(&[99], 0).unwrap_err();
        assert!(format!("{error}").contains("response tag"), "{error}");
    }

    #[test]
    fn bad_recovery_codes_are_structured_errors() {
        // Submit tag, population 0, then an unknown recovery code.
        let error = Request::from_payload(&[req::SUBMIT, 0, 9], 0).unwrap_err();
        assert!(
            format!("{error}").contains("recovery policy code"),
            "{error}"
        );
        // Budget rates wider than u32 are refused rather than truncated.
        let mut out = Encoder::new();
        out.put_u8(req::SUBMIT);
        out.put_u8(0);
        out.put_u8(3);
        out.put_varint(u64::from(u32::MAX) + 1);
        out.put_usize(0);
        let error = Request::from_payload(&out.into_bytes(), 0).unwrap_err();
        assert!(format!("{error}").contains("error budget rate"), "{error}");
    }

    #[test]
    fn framed_exchange_round_trips_over_a_buffer() {
        let mut wire = Vec::new();
        write_header(&mut wire).unwrap();
        write_request(&mut wire, &Request::Ping).unwrap();
        write_request(&mut wire, &Request::Drain).unwrap();

        let mut frames = FrameReader::new(wire.as_slice());
        frames.read_header().unwrap();
        assert_eq!(read_request(&mut frames).unwrap(), Some(Request::Ping));
        assert_eq!(read_request(&mut frames).unwrap(), Some(Request::Drain));
        assert_eq!(read_request(&mut frames).unwrap(), None);
    }
}
