//! Job state: each accepted job is split into one partition per log (the
//! reassignment unit — a log never splits, preserving the Unique-population
//! fold), and completed partitions merge commutatively into slots keyed by
//! input position. Reports render from whatever has merged so far; once
//! every slot is filled the report is byte-identical to the in-process
//! fused engine's over the same files (the same argument as the batch
//! coordinator's — see `sparqlog_shard::coordinator`).
//!
//! Double-count safety: a partition's snapshot merges **only** when it
//! decodes completely (log frame + epilogue), and a slot merges **at most
//! once** — a restarted worker whose predecessor died mid-stream can never
//! add to an already-filled slot, so no query occurrence is ever folded
//! twice.

use crate::protocol::{JobPhase, JobReport, JobStatus};
use sparqlog_core::analysis::{CorpusAnalysis, DatasetAnalysis, Population};
use sparqlog_core::cache::CacheStats;
use sparqlog_core::corpus::LogSummary;
use sparqlog_core::report;
use sparqlog_core::{ErrorTally, RecoveryPolicy};
use sparqlog_shard::LogSpec;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// One job's mutable state.
#[derive(Debug)]
pub struct JobState {
    /// The job id.
    pub id: u64,
    /// The population the job folds.
    pub population: Population,
    /// The submitted recovery policy. Workers stream leniently when it
    /// recovers; an `ErrorBudget` is metered **once**, here, when the last
    /// partition merges (a budget is a whole-run rate, not per-worker).
    pub recovery: RecoveryPolicy,
    /// The submitted logs, in report order (partition `i` = log `i`).
    pub logs: Vec<LogSpec>,
    /// Each log's canonical identity (`sparqlog_core::file_identity`),
    /// when a snapshot store is attached and the log was hashable at
    /// submit time. Used to persist completed partitions and to write the
    /// job manifest that warm-starts the job after a daemon restart.
    pub keys: Vec<Option<u128>>,
    /// Completed partitions: `slots[i]` holds log `i`'s summary + analysis.
    slots: Vec<Option<(LogSummary, DatasetAnalysis)>>,
    /// Partitions merged so far.
    completed: usize,
    /// Malformed-entry tallies merged from completed partitions.
    pub errors: ErrorTally,
    /// Entries seen across completed partitions (the budget denominator).
    entries: u64,
    /// Worker restarts performed for this job.
    pub restarts: u64,
    /// The first fatal failure, if any.
    pub failed: Option<String>,
    /// Merged worker cache counters.
    pub cache: CacheStats,
    /// Total decoded snapshot bytes.
    pub snapshot_bytes: u64,
}

impl JobState {
    fn new(
        id: u64,
        population: Population,
        recovery: RecoveryPolicy,
        logs: Vec<LogSpec>,
    ) -> JobState {
        let slots = (0..logs.len()).map(|_| None).collect();
        let keys = vec![None; logs.len()];
        JobState {
            id,
            population,
            recovery,
            logs,
            keys,
            slots,
            completed: 0,
            errors: ErrorTally::default(),
            entries: 0,
            restarts: 0,
            failed: None,
            cache: CacheStats::default(),
            snapshot_bytes: 0,
        }
    }

    /// The job's lifecycle phase.
    pub fn phase(&self) -> JobPhase {
        if self.failed.is_some() {
            JobPhase::Failed
        } else if self.completed == self.slots.len() {
            JobPhase::Complete
        } else {
            JobPhase::Running
        }
    }

    /// Whether every partition has merged.
    pub fn is_complete(&self) -> bool {
        self.completed == self.slots.len() && self.failed.is_none()
    }

    /// Whether the job can make no further progress (complete or failed).
    pub fn is_settled(&self) -> bool {
        self.failed.is_some() || self.completed == self.slots.len()
    }

    /// Merges one completed partition. Returns `false` (and changes
    /// nothing) if the slot was already filled — the no-double-count
    /// guarantee for restarted partitions.
    pub fn merge_partition(
        &mut self,
        partition: usize,
        summary: LogSummary,
        analysis: DatasetAnalysis,
        cache: CacheStats,
        snapshot_bytes: u64,
    ) -> bool {
        let Some(slot) = self.slots.get_mut(partition) else {
            return false;
        };
        if slot.is_some() {
            return false;
        }
        self.errors.merge(&summary.errors);
        self.entries += summary.counts.total;
        *slot = Some((summary, analysis));
        self.completed += 1;
        self.cache.hits += cache.hits;
        self.cache.misses += cache.misses;
        self.cache.distinct += cache.distinct;
        self.snapshot_bytes += snapshot_bytes;
        if self.completed == self.slots.len() && self.failed.is_none() {
            // The single budget-enforcement point: every partition streamed
            // leniently; the whole-run defect rate is judged exactly once,
            // over the merged tallies.
            if let Err(error) =
                sparqlog_core::recover::enforce_budget(self.recovery, &self.errors, self.entries)
            {
                self.failed = Some(error.to_string());
            }
        }
        true
    }

    /// The job's progress snapshot.
    pub fn status(&self) -> JobStatus {
        JobStatus {
            job: self.id,
            phase: self.phase(),
            total: self.slots.len() as u64,
            completed: self.completed as u64,
            restarts: self.restarts,
            errors: self.errors.total(),
            error: self.failed.clone().unwrap_or_default(),
        }
    }

    /// Renders the report over the partitions merged so far (input order,
    /// gaps skipped, "Total" row re-merged). When the job is complete this
    /// is byte-identical to the fused engine's report over the same files.
    pub fn report(&self, full: bool) -> JobReport {
        let datasets: Vec<DatasetAnalysis> = self
            .slots
            .iter()
            .flatten()
            .map(|(_, analysis)| analysis.clone())
            .collect();
        let mut combined = DatasetAnalysis {
            label: "Total".to_string(),
            ..DatasetAnalysis::default()
        };
        for dataset in &datasets {
            combined.merge(dataset);
        }
        let corpus = CorpusAnalysis { datasets, combined };
        JobReport {
            job: self.id,
            complete: self.is_complete(),
            completed: self.completed as u64,
            total: self.slots.len() as u64,
            errors: self.errors.total(),
            text: if full {
                report::full_report(&corpus)
            } else {
                report::table1(&corpus)
            },
        }
    }
}

/// The server's job table: id allocation, per-job state behind one lock,
/// and a condvar so waiters (drain, tests) can block until jobs settle.
#[derive(Debug, Default)]
pub struct Jobs {
    next_id: AtomicU64,
    table: Mutex<BTreeMap<u64, JobState>>,
    settled: Condvar,
}

impl Jobs {
    /// An empty job table; ids start at 1.
    pub fn new() -> Jobs {
        Jobs {
            next_id: AtomicU64::new(1),
            table: Mutex::new(BTreeMap::new()),
            settled: Condvar::new(),
        }
    }

    /// Jobs accepted so far.
    pub fn accepted(&self) -> u64 {
        self.next_id.load(Ordering::Acquire) - 1
    }

    /// Registers a new job and returns its id.
    pub fn create(
        &self,
        population: Population,
        recovery: RecoveryPolicy,
        logs: Vec<LogSpec>,
    ) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::AcqRel);
        let mut table = self.table.lock().expect("jobs lock");
        table.insert(id, JobState::new(id, population, recovery, logs));
        id
    }

    /// Runs `f` over the job's state, or `None` for an unknown id.
    pub fn with<T>(&self, job: u64, f: impl FnOnce(&mut JobState) -> T) -> Option<T> {
        let mut table = self.table.lock().expect("jobs lock");
        let result = table.get_mut(&job).map(f);
        // Any mutation may have settled the job; wake waiters cheaply.
        self.settled.notify_all();
        result
    }

    /// Whether every registered job has settled (complete or failed).
    pub fn all_settled(&self) -> bool {
        let table = self.table.lock().expect("jobs lock");
        table.values().all(|job| job.is_settled())
    }

    /// Blocks until every job settles or `timeout` elapses. Returns whether
    /// everything settled.
    pub fn wait_all_settled(&self, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut table = self.table.lock().expect("jobs lock");
        loop {
            if table.values().all(|job| job.is_settled()) {
                return true;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .settled
                .wait_timeout(
                    table,
                    (deadline - now).min(std::time::Duration::from_millis(100)),
                )
                .expect("jobs lock");
            table = guard;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_logs(n: usize) -> Vec<LogSpec> {
        (0..n)
            .map(|i| LogSpec::new(format!("log{i}"), format!("/tmp/log{i}.log")))
            .collect()
    }

    #[test]
    fn partitions_merge_once_and_phase_progresses() {
        let jobs = Jobs::new();
        let id = jobs.create(Population::Unique, RecoveryPolicy::Lenient, sample_logs(2));
        assert_eq!(id, 1);
        assert_eq!(jobs.accepted(), 1);

        let summary = LogSummary {
            label: "log0".to_string(),
            counts: Default::default(),
            occurrences: Vec::new(),
            errors: Default::default(),
        };
        let merged = jobs
            .with(id, |job| {
                assert_eq!(job.phase(), JobPhase::Running);
                job.merge_partition(
                    0,
                    summary.clone(),
                    DatasetAnalysis::default(),
                    CacheStats::default(),
                    10,
                )
            })
            .unwrap();
        assert!(merged);
        // A restarted duplicate of partition 0 must not double-count.
        let merged_again = jobs
            .with(id, |job| {
                job.merge_partition(
                    0,
                    summary.clone(),
                    DatasetAnalysis::default(),
                    CacheStats::default(),
                    10,
                )
            })
            .unwrap();
        assert!(!merged_again);
        jobs.with(id, |job| {
            assert_eq!(job.status().completed, 1);
            assert_eq!(job.phase(), JobPhase::Running);
            assert!(!job.report(false).complete);
            assert!(job.merge_partition(
                1,
                summary.clone(),
                DatasetAnalysis::default(),
                CacheStats::default(),
                12
            ));
            assert_eq!(job.phase(), JobPhase::Complete);
            assert!(job.report(true).complete);
            assert_eq!(job.snapshot_bytes, 22);
        });
        assert!(jobs.all_settled());
        assert!(jobs.wait_all_settled(std::time::Duration::from_millis(10)));
    }

    #[test]
    fn failures_settle_a_job() {
        let jobs = Jobs::new();
        let id = jobs.create(Population::Valid, RecoveryPolicy::Strict, sample_logs(1));
        assert!(!jobs.all_settled());
        jobs.with(id, |job| {
            job.restarts = 3;
            job.failed = Some("shard 0: worker exited with status 3".to_string());
        });
        assert!(jobs.all_settled());
        let status = jobs.with(id, |job| job.status()).unwrap();
        assert_eq!(status.phase, JobPhase::Failed);
        assert_eq!(status.restarts, 3);
        assert!(status.error.contains("status 3"));
        assert!(jobs.with(99, |_| ()).is_none());
    }

    #[test]
    fn budget_is_metered_once_when_the_last_partition_merges() {
        use sparqlog_core::ErrorKind;

        let dirty = |defects: u64, total: u64| {
            let mut summary = LogSummary {
                label: "log".to_string(),
                counts: Default::default(),
                occurrences: Vec::new(),
                errors: Default::default(),
            };
            summary.counts.total = total;
            for position in 0..defects {
                summary.errors.record(ErrorKind::InvalidUtf8, position);
            }
            summary
        };

        // 2 defects in 10_000 entries: within budget:2, over budget:1.
        for (max_per_10k, expect_failed) in [(2u32, false), (1u32, true)] {
            let jobs = Jobs::new();
            let id = jobs.create(
                Population::Unique,
                RecoveryPolicy::ErrorBudget { max_per_10k },
                sample_logs(2),
            );
            jobs.with(id, |job| {
                assert!(job.merge_partition(
                    0,
                    dirty(2, 5_000),
                    DatasetAnalysis::default(),
                    CacheStats::default(),
                    1,
                ));
                // Not judged until the last partition merges.
                assert_eq!(job.phase(), JobPhase::Running);
                assert!(job.merge_partition(
                    1,
                    dirty(0, 5_000),
                    DatasetAnalysis::default(),
                    CacheStats::default(),
                    1,
                ));
                let status = job.status();
                assert_eq!(status.errors, 2);
                if expect_failed {
                    assert_eq!(status.phase, JobPhase::Failed);
                    assert!(status.error.contains("error budget exceeded"), "{status:?}");
                } else {
                    assert_eq!(status.phase, JobPhase::Complete);
                }
            });
        }
    }
}
