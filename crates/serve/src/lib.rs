//! `sparqlog-serve`: the long-running analysis daemon for the SPARQL
//! query-log study. Clients submit log-analysis jobs over TCP or a Unix
//! socket; the server partitions each job one-log-per-partition, fans the
//! partitions out to a pool of supervised `sparqlog-shard-worker`
//! processes (heartbeats, death detection, bounded-backoff restarts,
//! reassignment), merges the commutative per-log results, and serves
//! incremental Table-1..6 reports to any number of concurrent sessions.
//! A complete job's report is byte-identical to the in-process fused
//! engine's over the same files.
//!
//! With `--store` (a [`sparqlog_persist::SnapshotStore`]), the daemon is
//! also crash-safe across restarts: completed partitions persist under
//! their logs' canonical identities, job manifests commit durably, a
//! restarted daemon warm-starts every committed job, and resubmitting
//! already-analysed logs merges from the store without spawning a worker
//! ([`client::ConnectRetry`] rides the client across the restart).
//!
//! # Quickstart
//!
//! ```no_run
//! use sparqlog_serve::client::Client;
//! use sparqlog_serve::server::{ServeAddr, ServeConfig, Server};
//! use sparqlog_core::analysis::Population;
//! use sparqlog_core::RecoveryPolicy;
//! use std::time::Duration;
//!
//! // Server side (usually the `sparqlog-serve` binary):
//! let server = Server::bind(
//!     ServeConfig::default(),
//!     &ServeAddr::Tcp("127.0.0.1:7878".to_string()),
//! )?;
//! let handle = server.handle();
//! std::thread::spawn(move || server.run());
//!
//! // Client side (usually the `sparqlog-client` binary):
//! let mut client = Client::connect(&ServeAddr::Tcp("127.0.0.1:7878".to_string()))?;
//! let (job, partitions) = client.submit(
//!     Population::Unique,
//!     RecoveryPolicy::Lenient, // tally malformed entries instead of failing
//!     vec![("DBpedia".to_string(), "/logs/dbpedia.log".to_string())],
//! )?;
//! eprintln!("job {job} across {partitions} partitions");
//! let status = client.wait_settled(job, Duration::from_secs(300))?;
//! println!("{}", client.report(job, true)?.text);
//! eprintln!("{} worker restarts along the way", status.restarts);
//! handle.stop();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Modules
//!
//! - [`protocol`] — the length-prefixed request/response wire format,
//!   layered on the shard crate's `SQSN` codec.
//! - [`job`] — per-job partition slots with merge-once (no-double-count)
//!   semantics and incremental report rendering.
//! - [`supervisor`] — the worker pool: queue, restarts with exponential
//!   backoff, reassignment, structured failure.
//! - [`server`] — listener, sessions, bounded outboxes with a
//!   slow-consumer policy, graceful drain.
//! - [`client`] — a blocking typed client.
//! - [`events`] — the structured `key=value` event log.
//! - [`signal`] — SIGTERM/SIGINT → graceful-drain flag.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod events;
pub mod job;
pub mod protocol;
pub mod server;
pub mod signal;
pub mod supervisor;

pub use client::{Client, ClientError, ConnectRetry};
pub use events::EventLog;
pub use job::{JobState, Jobs};
pub use protocol::{JobPhase, JobReport, JobStatus, Request, Response};
pub use server::{ServeAddr, ServeConfig, Server, ServerHandle, SlowConsumerPolicy};
pub use supervisor::{Supervisor, SupervisorConfig};
