//! # sparqlog-gmark
//!
//! A schema-driven synthetic graph and query-workload generator in the style
//! of gMark (Bagan et al., TKDE 2017), providing the substrate for the
//! chain-vs-cycle engine comparison of Section 5.1 / Figure 3 of *"An
//! Analytical Study of Large SPARQL Query Logs"*:
//!
//! * [`schema`] — node/edge-type schemas with degree distributions, shipping
//!   the bibliographical "Bib" use case used in the paper.
//! * [`graph_gen`] — seeded generation of graph instances, loadable into a
//!   [`sparqlog_store::TripleStore`].
//! * [`query_gen`] — seeded generation of chain / star / cycle / chain-star
//!   workloads whose predicates follow the schema, emitted as conjunctive
//!   queries and as SPARQL text.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph_gen;
pub mod query_gen;
pub mod schema;

pub use graph_gen::{generate_graph, GraphConfig, GraphInstance};
pub use query_gen::{generate_workload, QueryShape, Workload, WorkloadConfig};
pub use schema::{DegreeDistribution, EdgeType, NodeType, Schema};
