//! Seeded generation of graph instances from a [`Schema`].

use crate::schema::{DegreeDistribution, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparqlog_store::TripleStore;

/// Parameters for graph generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphConfig {
    /// Total number of nodes.
    pub nodes: usize,
    /// RNG seed (generation is fully deterministic for a given seed).
    pub seed: u64,
}

impl Default for GraphConfig {
    fn default() -> Self {
        GraphConfig {
            nodes: 10_000,
            seed: 42,
        }
    }
}

/// A generated graph instance: the node IRIs per type and the triples.
#[derive(Debug, Clone)]
pub struct GraphInstance {
    /// For each node type (by schema index), the generated node IRIs.
    pub nodes_by_type: Vec<Vec<String>>,
    /// The generated `(subject, predicate, object)` triples.
    pub triples: Vec<(String, String, String)>,
}

impl GraphInstance {
    /// Loads the instance into a freshly built [`TripleStore`].
    pub fn to_store(&self) -> TripleStore {
        let mut store = TripleStore::new();
        for (s, p, o) in &self.triples {
            store.insert(s, p, o);
        }
        store.build();
        store
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.nodes_by_type.iter().map(Vec::len).sum()
    }

    /// Total triple count.
    pub fn triple_count(&self) -> usize {
        self.triples.len()
    }
}

/// Generates a graph instance from a schema.
pub fn generate_graph(schema: &Schema, config: GraphConfig) -> GraphInstance {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let proportions = schema.normalized_proportions();

    // Allocate node IRIs per type.
    let mut nodes_by_type: Vec<Vec<String>> = Vec::with_capacity(schema.node_types.len());
    for (i, ty) in schema.node_types.iter().enumerate() {
        let count = ((config.nodes as f64) * proportions[i]).round().max(1.0) as usize;
        let nodes = (0..count)
            .map(|n| format!("http://gmark.example/{}/{n}", ty.name))
            .collect();
        nodes_by_type.push(nodes);
    }

    // Generate edges per edge type.
    let mut triples = Vec::new();
    for edge in &schema.edge_types {
        let sources = &nodes_by_type[edge.from];
        let targets = &nodes_by_type[edge.to];
        if targets.is_empty() {
            continue;
        }
        for source in sources {
            let degree = sample_degree(&mut rng, edge.degree);
            for _ in 0..degree {
                let target = &targets[rng.gen_range(0..targets.len())];
                if target != source {
                    triples.push((source.clone(), edge.predicate.clone(), target.clone()));
                }
            }
        }
    }
    GraphInstance {
        nodes_by_type,
        triples,
    }
}

fn sample_degree(rng: &mut StdRng, dist: DegreeDistribution) -> u32 {
    match dist {
        DegreeDistribution::Constant { degree } => degree,
        DegreeDistribution::Uniform { min, max } => {
            if min >= max {
                min
            } else {
                rng.gen_range(min..=max)
            }
        }
        DegreeDistribution::Zipf { alpha, max } => {
            // Inverse-transform sampling over 1..=max with probabilities
            // proportional to 1 / k^alpha.
            let max = max.max(1);
            let weights: Vec<f64> = (1..=max).map(|k| 1.0 / (k as f64).powf(alpha)).collect();
            let total: f64 = weights.iter().sum();
            let mut u = rng.gen_range(0.0..total);
            for (i, w) in weights.iter().enumerate() {
                if u < *w {
                    return (i + 1) as u32;
                }
                u -= w;
            }
            max
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let schema = Schema::bib();
        let a = generate_graph(
            &schema,
            GraphConfig {
                nodes: 500,
                seed: 7,
            },
        );
        let b = generate_graph(
            &schema,
            GraphConfig {
                nodes: 500,
                seed: 7,
            },
        );
        assert_eq!(a.triples, b.triples);
        let c = generate_graph(
            &schema,
            GraphConfig {
                nodes: 500,
                seed: 8,
            },
        );
        assert_ne!(a.triples, c.triples);
    }

    #[test]
    fn node_counts_respect_proportions() {
        let schema = Schema::bib();
        let g = generate_graph(
            &schema,
            GraphConfig {
                nodes: 1000,
                seed: 1,
            },
        );
        assert!((g.node_count() as i64 - 1000).abs() <= 4);
        // Researchers are the largest class (50 %).
        assert!(g.nodes_by_type[0].len() > g.nodes_by_type[1].len());
        assert!(g.nodes_by_type[1].len() > g.nodes_by_type[2].len());
    }

    #[test]
    fn triples_use_schema_predicates_and_types() {
        let schema = Schema::bib();
        let g = generate_graph(
            &schema,
            GraphConfig {
                nodes: 300,
                seed: 3,
            },
        );
        assert!(
            g.triple_count() > 300,
            "a Bib graph has more edges than nodes"
        );
        for (s, p, o) in &g.triples {
            assert!(p.starts_with("http://gmark.example/bib/"));
            assert!(s.starts_with("http://gmark.example/"));
            assert!(o.starts_with("http://gmark.example/"));
        }
        // publishedIn edges go from papers to journals.
        let pubs: Vec<_> = g
            .triples
            .iter()
            .filter(|(_, p, _)| p.ends_with("publishedIn"))
            .collect();
        assert!(!pubs.is_empty());
        for (s, _, o) in pubs {
            assert!(s.contains("/paper/"));
            assert!(o.contains("/journal/"));
        }
    }

    #[test]
    fn store_loading_round_trips() {
        let schema = Schema::bib();
        let g = generate_graph(
            &schema,
            GraphConfig {
                nodes: 200,
                seed: 5,
            },
        );
        let store = g.to_store();
        assert!(!store.is_empty());
        assert!(store.len() <= g.triple_count());
    }
}
