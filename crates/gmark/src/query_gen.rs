//! Seeded generation of chain / star / cycle / chain-star query workloads
//! over a [`Schema`], following the shapes gMark generates and the setup of
//! the paper's Section 5.1 experiment (100-query workloads per shape and
//! length).

use crate::schema::Schema;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use sparqlog_store::{ConjunctiveQuery, CqAtom, CqTerm};

/// The query shapes the generator can produce (gMark's four shapes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueryShape {
    /// A chain of length `k` (hypertree width 1).
    Chain,
    /// A star with `k` branches.
    Star,
    /// A cycle of length `k` (hypertree width 2).
    Cycle,
    /// A chain with a star attached at its end ("chain-star").
    ChainStar,
}

impl QueryShape {
    /// A short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            QueryShape::Chain => "chain",
            QueryShape::Star => "star",
            QueryShape::Cycle => "cycle",
            QueryShape::ChainStar => "chain-star",
        }
    }
}

/// Configuration of a query workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// The query shape.
    pub shape: QueryShape,
    /// The size (number of conjuncts) of each query.
    pub length: usize,
    /// How many queries to generate.
    pub count: usize,
    /// RNG seed.
    pub seed: u64,
}

/// A generated workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// The configuration that produced the workload.
    pub config: WorkloadConfig,
    /// The queries.
    pub queries: Vec<ConjunctiveQuery>,
}

impl Workload {
    /// Renders every query as a SPARQL ASK query.
    pub fn to_ask_sparql(&self) -> Vec<String> {
        self.queries
            .iter()
            .map(ConjunctiveQuery::to_ask_sparql)
            .collect()
    }
}

/// Generates a workload of `config.count` queries over the schema.
///
/// Predicates are chosen by a random walk over the schema's edge types so
/// that consecutive atoms are type-compatible (the object type of one atom is
/// the subject type of the next); cycle queries additionally pick walks that
/// return to the starting type, so the generated queries have non-trivial
/// selectivity on instances of the schema.
pub fn generate_workload(schema: &Schema, config: WorkloadConfig) -> Workload {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut queries = Vec::with_capacity(config.count);
    for _ in 0..config.count {
        let query = match config.shape {
            QueryShape::Chain => chain(schema, &mut rng, config.length),
            QueryShape::Cycle => cycle(schema, &mut rng, config.length),
            QueryShape::Star => star(schema, &mut rng, config.length),
            QueryShape::ChainStar => chain_star(schema, &mut rng, config.length),
        };
        queries.push(query);
    }
    Workload { config, queries }
}

/// A random schema-compatible predicate walk of the given length starting
/// from a random type; returns the predicate list. Falls back to repeating an
/// arbitrary predicate if the walk gets stuck (cannot happen with the Bib
/// schema, which has outgoing edges for every type reachable in a walk).
fn predicate_walk(schema: &Schema, rng: &mut StdRng, length: usize, close: bool) -> Vec<String> {
    let start_candidates: Vec<usize> = (0..schema.node_types.len())
        .filter(|&t| !schema.outgoing(t).is_empty())
        .collect();
    if start_candidates.is_empty() || schema.edge_types.is_empty() {
        return vec![String::from("http://gmark.example/bib/knows"); length];
    }
    // Retry a bounded number of times: a walk can get stuck at a sink type,
    // and cycle walks must additionally return to the starting type.
    let attempts = 100;
    let mut best: Option<Vec<String>> = None;
    for _ in 0..attempts {
        let start = start_candidates[rng.gen_range(0..start_candidates.len())];
        let mut current = start;
        let mut walk = Vec::with_capacity(length);
        for step in 0..length {
            let outgoing = schema.outgoing(current);
            if outgoing.is_empty() {
                break;
            }
            let last_step = step + 1 == length;
            // For the last step of a closing walk, prefer edges back to start;
            // for intermediate steps, prefer edges whose target can continue.
            let closing: Vec<_> = outgoing.iter().copied().filter(|e| e.to == start).collect();
            let continuing: Vec<_> = outgoing
                .iter()
                .copied()
                .filter(|e| !schema.outgoing(e.to).is_empty())
                .collect();
            let pool: Vec<_> = if close && last_step && !closing.is_empty() {
                closing
            } else if !last_step && !continuing.is_empty() {
                continuing
            } else {
                outgoing
            };
            let edge = pool[rng.gen_range(0..pool.len())];
            walk.push(edge.predicate.clone());
            current = edge.to;
        }
        if walk.len() == length && (!close || current == start) {
            return walk;
        }
        if walk.len() == length && best.is_none() {
            best = Some(walk);
        }
    }
    best.unwrap_or_else(|| vec![schema.edge_types[0].predicate.clone(); length])
}

fn chain(schema: &Schema, rng: &mut StdRng, length: usize) -> ConjunctiveQuery {
    let preds = predicate_walk(schema, rng, length, false);
    sparqlog_store::chain_query(&preds)
}

fn cycle(schema: &Schema, rng: &mut StdRng, length: usize) -> ConjunctiveQuery {
    let preds = predicate_walk(schema, rng, length, true);
    sparqlog_store::cycle_query(&preds)
}

fn star(schema: &Schema, rng: &mut StdRng, branches: usize) -> ConjunctiveQuery {
    // All branches start from the same node type.
    let start_candidates: Vec<usize> = (0..schema.node_types.len())
        .filter(|&t| !schema.outgoing(t).is_empty())
        .collect();
    let start = start_candidates[rng.gen_range(0..start_candidates.len())];
    let outgoing = schema.outgoing(start);
    let preds: Vec<String> = (0..branches)
        .map(|_| outgoing[rng.gen_range(0..outgoing.len())].predicate.clone())
        .collect();
    sparqlog_store::star_query(&preds)
}

fn chain_star(schema: &Schema, rng: &mut StdRng, length: usize) -> ConjunctiveQuery {
    // A chain of ⌈length/2⌉ atoms followed by a star of the remaining atoms
    // attached to the chain's last variable.
    let chain_len = length.div_ceil(2).max(1);
    let star_len = length.saturating_sub(chain_len);
    let chain_preds = predicate_walk(schema, rng, chain_len, false);
    let mut query = sparqlog_store::chain_query(&chain_preds);
    let centre = format!("x{chain_len}");
    let outgoing_all: Vec<&str> = schema
        .edge_types
        .iter()
        .map(|e| e.predicate.as_str())
        .collect();
    for i in 0..star_len {
        let p = outgoing_all[rng.gen_range(0..outgoing_all.len())];
        query.atoms.push(CqAtom::new(
            CqTerm::var(centre.clone()),
            CqTerm::constant(p),
            CqTerm::var(format!("s{i}")),
        ));
    }
    query
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use std::collections::BTreeSet;

    fn workload(shape: QueryShape, length: usize) -> Workload {
        generate_workload(
            &Schema::bib(),
            WorkloadConfig {
                shape,
                length,
                count: 20,
                seed: 11,
            },
        )
    }

    #[test]
    fn chain_workload_has_chain_structure() {
        let w = workload(QueryShape::Chain, 4);
        assert_eq!(w.queries.len(), 20);
        for q in &w.queries {
            assert_eq!(q.atoms.len(), 4);
            assert_eq!(q.variables().len(), 5);
        }
    }

    #[test]
    fn cycle_workload_closes_cycles() {
        let w = workload(QueryShape::Cycle, 4);
        for q in &w.queries {
            assert_eq!(q.atoms.len(), 4);
            assert_eq!(q.variables().len(), 4);
            // Last atom's object is the first variable.
            assert_eq!(q.atoms[3].object, CqTerm::var("x0"));
        }
    }

    #[test]
    fn star_workload_shares_a_centre() {
        let w = workload(QueryShape::Star, 5);
        for q in &w.queries {
            assert_eq!(q.atoms.len(), 5);
            let centres: BTreeSet<_> = q.atoms.iter().map(|a| a.subject.clone()).collect();
            assert_eq!(centres.len(), 1);
        }
    }

    #[test]
    fn chain_star_combines_both() {
        let w = workload(QueryShape::ChainStar, 6);
        for q in &w.queries {
            assert_eq!(q.atoms.len(), 6);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = workload(QueryShape::Cycle, 5);
        let b = workload(QueryShape::Cycle, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn walks_are_schema_compatible() {
        // In a chain query over the Bib schema, consecutive predicates must be
        // connectable: the target type of one is the source type of the next.
        let schema = Schema::bib();
        let w = generate_workload(
            &schema,
            WorkloadConfig {
                shape: QueryShape::Chain,
                length: 3,
                count: 50,
                seed: 3,
            },
        );
        let type_of_pred = |p: &str| {
            schema
                .edge_types
                .iter()
                .find(|e| e.predicate == p)
                .map(|e| (e.from, e.to))
                .unwrap()
        };
        for q in &w.queries {
            for pair in q.atoms.windows(2) {
                let CqTerm::Const(p1) = &pair[0].predicate else {
                    panic!()
                };
                let CqTerm::Const(p2) = &pair[1].predicate else {
                    panic!()
                };
                let (_, to1) = type_of_pred(p1);
                let (from2, _) = type_of_pred(p2);
                assert_eq!(to1, from2, "incompatible walk: {p1} then {p2}");
            }
        }
    }

    #[test]
    fn sparql_rendering_is_available() {
        let w = workload(QueryShape::Chain, 3);
        let sparql = w.to_ask_sparql();
        assert_eq!(sparql.len(), 20);
        assert!(sparql[0].starts_with("ASK WHERE"));
    }
}
