//! Graph schemas for the gMark-style generator.
//!
//! A schema lists node types with their relative proportions and edge types
//! (predicates) with source/target node types and an out-degree distribution.
//! The paper's chain/cycle experiment (Section 5.1) uses gMark's "Bib"
//! (bibliographical) use case over a 100k-node instance; [`Schema::bib`]
//! provides an equivalent schema.

use serde::{Deserialize, Serialize};

/// A node type with its share of the generated nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeType {
    /// The type name (used to mint IRIs like `http://gmark/researcher/42`).
    pub name: String,
    /// The fraction of all nodes that get this type (the schema normalises
    /// the proportions, so they need not sum to one).
    pub proportion: f64,
}

/// An out-degree distribution for an edge type.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DegreeDistribution {
    /// Uniform between `min` and `max` (inclusive).
    Uniform {
        /// Minimum out-degree.
        min: u32,
        /// Maximum out-degree.
        max: u32,
    },
    /// A zipfian distribution over `1..=max` with exponent `alpha` — a few
    /// sources have many edges, most have few.
    Zipf {
        /// Skew exponent (larger is more skewed).
        alpha: f64,
        /// Maximum out-degree.
        max: u32,
    },
    /// Every source has exactly `degree` outgoing edges.
    Constant {
        /// The fixed out-degree.
        degree: u32,
    },
}

/// An edge type: a predicate connecting two node types.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeType {
    /// The predicate IRI.
    pub predicate: String,
    /// Source node type (index into [`Schema::node_types`]).
    pub from: usize,
    /// Target node type (index into [`Schema::node_types`]).
    pub to: usize,
    /// Out-degree distribution for source nodes.
    pub degree: DegreeDistribution,
}

/// A complete graph schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    /// The node types.
    pub node_types: Vec<NodeType>,
    /// The edge types.
    pub edge_types: Vec<EdgeType>,
}

impl Schema {
    /// The bibliographical ("Bib") use case: researchers, papers, journals
    /// and conferences with authorship, citation, publication and
    /// collaboration predicates — the schema family used by gMark and by the
    /// paper's Section 5.1 experiment.
    pub fn bib() -> Schema {
        let node_types = vec![
            NodeType {
                name: "researcher".into(),
                proportion: 0.5,
            },
            NodeType {
                name: "paper".into(),
                proportion: 0.3,
            },
            NodeType {
                name: "journal".into(),
                proportion: 0.1,
            },
            NodeType {
                name: "conference".into(),
                proportion: 0.1,
            },
        ];
        let p = |s: &str| format!("http://gmark.example/bib/{s}");
        let edge_types = vec![
            EdgeType {
                predicate: p("authorOf"),
                from: 0,
                to: 1,
                degree: DegreeDistribution::Zipf {
                    alpha: 1.7,
                    max: 40,
                },
            },
            EdgeType {
                predicate: p("knows"),
                from: 0,
                to: 0,
                degree: DegreeDistribution::Uniform { min: 1, max: 6 },
            },
            EdgeType {
                predicate: p("cites"),
                from: 1,
                to: 1,
                degree: DegreeDistribution::Zipf {
                    alpha: 1.5,
                    max: 30,
                },
            },
            EdgeType {
                predicate: p("publishedIn"),
                from: 1,
                to: 2,
                degree: DegreeDistribution::Constant { degree: 1 },
            },
            EdgeType {
                predicate: p("presentedAt"),
                from: 1,
                to: 3,
                degree: DegreeDistribution::Uniform { min: 0, max: 1 },
            },
            EdgeType {
                predicate: p("reviewerOf"),
                from: 0,
                to: 1,
                degree: DegreeDistribution::Uniform { min: 0, max: 5 },
            },
        ];
        Schema {
            node_types,
            edge_types,
        }
    }

    /// The normalised node-type proportions (summing to 1).
    pub fn normalized_proportions(&self) -> Vec<f64> {
        let total: f64 = self.node_types.iter().map(|n| n.proportion).sum();
        self.node_types
            .iter()
            .map(|n| n.proportion / total.max(f64::MIN_POSITIVE))
            .collect()
    }

    /// The edge types whose source type is `ty`.
    pub fn outgoing(&self, ty: usize) -> Vec<&EdgeType> {
        self.edge_types.iter().filter(|e| e.from == ty).collect()
    }

    /// The edge types whose target type is `ty`.
    pub fn incoming(&self, ty: usize) -> Vec<&EdgeType> {
        self.edge_types.iter().filter(|e| e.to == ty).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bib_schema_is_well_formed() {
        let s = Schema::bib();
        assert_eq!(s.node_types.len(), 4);
        assert!(s.edge_types.len() >= 5);
        for e in &s.edge_types {
            assert!(e.from < s.node_types.len());
            assert!(e.to < s.node_types.len());
        }
        let props = s.normalized_proportions();
        assert!((props.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn outgoing_and_incoming_lookups() {
        let s = Schema::bib();
        // Researchers (type 0) have outgoing authorOf / knows / reviewerOf.
        assert_eq!(s.outgoing(0).len(), 3);
        // Papers (type 1) receive authorOf, cites and reviewerOf.
        assert!(s.incoming(1).len() >= 3);
    }
}
