//! Offline shim for `criterion`: the API subset the workspace's benches use
//! (`Criterion`, `benchmark_group`, `bench_function`, `Bencher::iter`,
//! `black_box`, `criterion_group!`, `criterion_main!`) backed by a simple
//! median-of-samples wall-clock harness. It produces `name: median ns/iter`
//! lines instead of criterion's statistical reports; swapping in the real
//! criterion later only requires changing the workspace manifest. See
//! `vendor/README.md`.

use std::time::Instant;

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one benchmark directly under `self`.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&name.into(), DEFAULT_SAMPLE_SIZE, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

const DEFAULT_SAMPLE_SIZE: usize = 20;

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(
            &format!("{}/{}", self.name, name.into()),
            self.sample_size,
            f,
        );
        self
    }

    /// Finishes the group (a no-op in the shim; kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; times the routine under test.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<u64>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, recording one sample of `iters_per_sample`
    /// invocations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples
            .push(start.elapsed().as_nanos() as u64 / self.iters_per_sample.max(1));
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    // Calibration pass: find an iteration count that runs long enough to be
    // measurable, capped so slow benchmarks stay fast in CI.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: iters,
        };
        let start = Instant::now();
        f(&mut b);
        if b.samples.is_empty() {
            // The closure never called `iter`; nothing to time.
            println!("{name}: no measurement (closure did not call iter)");
            return;
        }
        if start.elapsed().as_micros() > 200 || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: iters,
    };
    for _ in 0..sample_size {
        f(&mut b);
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    println!(
        "{name}: {median} ns/iter (median of {} samples x {iters} iters)",
        b.samples.len()
    );
}

/// Bundles benchmark functions into a single runner, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the given groups, like criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
