//! Offline shim for `proptest`: the API subset the workspace's property
//! tests use — the `proptest!` macro with `#![proptest_config(..)]`,
//! integer-range strategies, simple regex string strategies (a single `.` or
//! character class with a `{m,n}` repetition), and `prop_assert!` /
//! `prop_assert_eq!`. Cases are generated deterministically from the case
//! index, so failures are reproducible; shrinking is not implemented (a
//! failing case panics with its inputs printed). See `vendor/README.md`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration (only the case count is honoured).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Creates a config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 32 }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated value type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i32, i64);

/// String strategies are written as simple regexes: one atom — `.` (printable
/// ASCII) or a character class `[...]` — followed by an optional `{m,n}`
/// repetition (default exactly one).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let (alphabet, rest) = parse_atom(self);
        let (lo, hi) = parse_repetition(rest);
        let len = rng.gen_range(lo..=hi);
        (0..len)
            .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
            .collect()
    }
}

fn parse_atom(pattern: &str) -> (Vec<char>, &str) {
    if let Some(rest) = pattern.strip_prefix('.') {
        return ((' '..='~').collect(), rest);
    }
    if let Some(rest) = pattern.strip_prefix('[') {
        let end = rest
            .find(']')
            .expect("unterminated character class in shim regex");
        let class: Vec<char> = rest[..end].chars().collect();
        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (a, b) = (class[i], class[i + 2]);
                alphabet.extend(a..=b);
                i += 3;
            } else {
                alphabet.push(class[i]);
                i += 1;
            }
        }
        return (alphabet, &rest[end + 1..]);
    }
    panic!("the proptest shim only supports `.` or `[class]` patterns, got {pattern:?}");
}

fn parse_repetition(suffix: &str) -> (usize, usize) {
    if suffix.is_empty() {
        return (1, 1);
    }
    let inner = suffix
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unsupported shim regex repetition {suffix:?}"));
    match inner.split_once(',') {
        Some((lo, hi)) => (lo.trim().parse().unwrap(), hi.trim().parse().unwrap()),
        None => {
            let n = inner.trim().parse().unwrap();
            (n, n)
        }
    }
}

/// A rejected case (the [`prop_assume!`] macro fired); the runner skips it.
#[derive(Debug, Clone, Copy)]
pub struct Rejected;

/// Strategies for collections, mirroring `proptest::collection`.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A strategy producing `Vec`s of a given element strategy and length
    /// range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Generates vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

/// Deterministic per-case RNG: the stream depends only on the test name and
/// case index, so reported failures are reproducible.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ (u64::from(case) << 32 | u64::from(case)))
}

/// The common import surface, mirroring `proptest::prelude::*` (including
/// the `prop` alias for the crate root, so `prop::collection::vec` works).
pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy};
}

/// Assertion macro; in the shim it panics immediately (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion macro; in the shim it panics immediately.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Rejects the current case when the assumption does not hold; the runner
/// moves on to the next case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::Rejected);
        }
    };
}

/// The `proptest!` test-definition macro: each function becomes a `#[test]`
/// running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg($cfg) $($rest)* }
    };
    (@cfg($cfg:expr) $( $(#[$attr:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut rng = $crate::case_rng(stringify!($name), case);
                    $(
                        let $arg = $crate::Strategy::generate(&($strat), &mut rng);
                    )+
                    let inputs = format!(
                        concat!("case {}: ", $(stringify!($arg), " = {:?} "),+),
                        case $(, &$arg)+
                    );
                    let run = || -> ::core::result::Result<(), $crate::Rejected> {
                        $body
                        ::core::result::Result::Ok(())
                    };
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)) {
                        Ok(::core::result::Result::Ok(())) => {}
                        Ok(::core::result::Result::Err($crate::Rejected)) => continue,
                        Err(panic) => {
                            eprintln!("proptest shim failure at {inputs}");
                            std::panic::resume_unwind(panic);
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg(<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn char_class_with_ranges_expands() {
        let mut rng = case_rng("alphabet", 0);
        for _ in 0..200 {
            let s = "[a-cXY ]{0,5}".generate(&mut rng);
            assert!(s.len() <= 5);
            assert!(s.chars().all(|c| "abcXY ".contains(c)));
        }
    }

    #[test]
    fn dot_pattern_generates_printable_ascii() {
        let mut rng = case_rng("dot", 0);
        let s = ".{0,200}".generate(&mut rng);
        assert!(s.len() <= 200);
        assert!(s.chars().all(|c| (' '..='~').contains(&c)));
    }

    #[test]
    fn integer_ranges_respect_bounds() {
        let mut rng = case_rng("ints", 1);
        for _ in 0..100 {
            let v = (3u64..9).generate(&mut rng);
            assert!((3..9).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_roundtrip(a in 0u64..100, b in 1usize..4) {
            prop_assert!(a < 100);
            prop_assert_eq!(b.min(3), b);
        }
    }
}
