//! Offline shim for `rand` 0.8: the API subset the workspace uses
//! (`rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::{gen, gen_bool,
//! gen_range}`) backed by a deterministic xoshiro256** generator seeded via
//! splitmix64. Streams differ from the real `StdRng` (ChaCha12), which is
//! fine: every consumer in this workspace only needs seeded determinism, not
//! a particular stream. See `vendor/README.md`.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a [`Sample`] type (only `f64` and `bool` are
    /// provided — the types this workspace draws).
    fn gen<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        f64::sample(self) < p
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types with a canonical uniform distribution.
pub trait Sample {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Sample for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled from (the `SampleRange` of rand 0.8).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Integer types with a uniform range sampler. The blanket [`SampleRange`]
/// impls below are generic over this trait (like rand's `SampleUniform`),
/// which is what lets integer-literal ranges infer their type from the use
/// site (`v[rng.gen_range(0..v.len())]`).
pub trait UniformInt: Copy + PartialOrd {
    /// `hi - lo` as an unsigned 128-bit distance (sign-safe).
    fn steps(lo: Self, hi: Self) -> u128;
    /// `lo + offset`, where `offset` is below the computed distance.
    fn forward(lo: Self, offset: u128) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn steps(lo: Self, hi: Self) -> u128 {
                (hi as u128).wrapping_sub(lo as u128)
            }
            fn forward(lo: Self, offset: u128) -> Self {
                lo.wrapping_add(offset as $t)
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i32, i64);

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = T::steps(self.start, self.end);
        T::forward(self.start, u128::from(rng.next_u64()) % span)
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        let span = T::steps(lo, hi) + 1;
        T::forward(lo, u128::from(rng.next_u64()) % span)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The named generators of rand 0.8 (only `StdRng` is provided).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256** generator standing in for rand's
    /// `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // splitmix64 expansion, as the real rand does for small seeds.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..=4u8);
            assert!(w <= 4);
            let f = rng.gen_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
