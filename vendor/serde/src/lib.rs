//! Offline shim for `serde`: marker traits with blanket impls plus the no-op
//! derive macros from the sibling `serde_derive` shim. The workspace uses
//! serde purely as a forward-compatibility marker on its data records; no
//! code path serializes through it yet, so the shim keeps the derive surface
//! compiling without crates.io access. Swapping in the real serde later is a
//! one-line change in the workspace manifest. See `vendor/README.md`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types (the real trait's `'de` lifetime is dropped — nothing in the
/// workspace names it).
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}
