//! Offline shim for `serde_derive`: the derive macros accept the same
//! attribute surface as the real crate but expand to nothing. The sibling
//! `serde` shim provides blanket trait impls, so `#[derive(Serialize,
//! Deserialize)]` keeps compiling unchanged in an environment without
//! crates.io access. See `vendor/README.md`.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
